"""Tests for the burst-factor workload manager."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.resources.workload_manager import (
    WorkloadManager,
    WorkloadManagerConfig,
    utilization_of_allocation,
)
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=60)


class TestConfig:
    def test_defaults(self):
        config = WorkloadManagerConfig()
        assert config.burst_factor == 2.0
        assert config.smoothing_window == 1

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            WorkloadManagerConfig(burst_factor=0)
        with pytest.raises(ConfigurationError):
            WorkloadManagerConfig(smoothing_window=0)
        with pytest.raises(ConfigurationError):
            WorkloadManagerConfig(allocation_ceiling=0)


class TestAllocationTrace:
    def test_paper_example(self, cal):
        """Demand of 2 CPUs with burst factor 2 -> 4-CPU allocation."""
        demand = DemandTrace("w", np.full(cal.n_observations, 2.0), cal)
        manager = WorkloadManager(WorkloadManagerConfig(burst_factor=2.0))
        allocation = manager.allocation_trace(demand)
        assert allocation.values[0] == 4.0

    def test_target_utilization(self):
        manager = WorkloadManager(WorkloadManagerConfig(burst_factor=2.0))
        assert manager.target_utilization() == 0.5

    def test_ceiling_caps_allocation(self, cal):
        demand = DemandTrace("w", np.full(cal.n_observations, 5.0), cal)
        manager = WorkloadManager(
            WorkloadManagerConfig(burst_factor=2.0, allocation_ceiling=7.0)
        )
        assert manager.allocation_trace(demand).peak() == 7.0

    def test_smoothing_window_averages(self, cal):
        values = np.zeros(cal.n_observations)
        values[10] = 8.0
        demand = DemandTrace("w", values, cal)
        manager = WorkloadManager(
            WorkloadManagerConfig(burst_factor=1.0, smoothing_window=4)
        )
        allocation = manager.allocation_trace(demand)
        # At the spike slot the window average is 8/4 = 2 (3 zeros + 8).
        assert allocation.values[10] == pytest.approx(2.0)
        # One slot later the spike still contributes.
        assert allocation.values[11] == pytest.approx(2.0)
        # Far from the spike: zero.
        assert allocation.values[20] == 0.0

    def test_smoothing_window_prefix(self, cal):
        values = np.full(cal.n_observations, 4.0)
        demand = DemandTrace("w", values, cal)
        manager = WorkloadManager(
            WorkloadManagerConfig(burst_factor=1.0, smoothing_window=8)
        )
        allocation = manager.allocation_trace(demand)
        # Constant demand: smoothing changes nothing, even in the prefix.
        assert np.allclose(allocation.values, 4.0)

    def test_default_window_is_memoryless(self, cal):
        rng = np.random.default_rng(0)
        demand = DemandTrace("w", rng.uniform(0, 3, cal.n_observations), cal)
        manager = WorkloadManager(WorkloadManagerConfig(burst_factor=1.5))
        allocation = manager.allocation_trace(demand)
        assert np.allclose(allocation.values, demand.values * 1.5)


class TestUtilizationOfAllocation:
    def test_basic_ratio(self, cal):
        demand = DemandTrace("w", np.full(cal.n_observations, 1.0), cal)
        manager = WorkloadManager(WorkloadManagerConfig(burst_factor=2.0))
        allocation = manager.allocation_trace(demand)
        utilization = utilization_of_allocation(demand, allocation)
        assert np.allclose(utilization, 0.5)

    def test_zero_demand_zero_utilization(self, cal):
        demand = DemandTrace("w", np.zeros(cal.n_observations), cal)
        allocation = WorkloadManager().allocation_trace(demand)
        utilization = utilization_of_allocation(demand, allocation)
        assert np.allclose(utilization, 0.0)

    def test_starvation_is_infinite(self, cal):
        values = np.ones(cal.n_observations)
        demand = DemandTrace("w", values, cal)
        from repro.traces.allocation import AllocationTrace

        zero_allocation = AllocationTrace(
            "w", np.zeros(cal.n_observations), cal
        )
        utilization = utilization_of_allocation(demand, zero_allocation)
        assert np.isinf(utilization).all()
