"""Tests for the closed-loop workload-manager simulation."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.resources.feedback import (
    calibrate_burst_factor,
    simulate_closed_loop,
)
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=60)


def trace(cal, values, name="w"):
    return DemandTrace(name, values, cal)


class TestSimulateClosedLoop:
    def test_constant_demand_settles_at_target_utilization(self, cal):
        demand = trace(cal, np.full(cal.n_observations, 3.0))
        result = simulate_closed_loop(demand, burst_factor=2.0)
        # Steady state: allocation 6, utilization 0.5, never saturated.
        assert result.allocations[-1] == pytest.approx(6.0)
        assert result.utilization[-1] == pytest.approx(0.5)
        assert result.saturated_fraction <= 1 / cal.n_observations
        assert result.mean_utilization == pytest.approx(0.5, abs=0.01)

    def test_step_increase_causes_transient_saturation(self, cal):
        values = np.full(cal.n_observations, 1.0)
        values[50:] = 4.0  # 4x step, above the 2x headroom
        demand = trace(cal, values)
        result = simulate_closed_loop(demand, burst_factor=2.0)
        # The step slot is saturated (allocation was 2, demand 4) ...
        assert values[50] > result.allocations[50]
        # ... but the controller recovers within a couple of intervals.
        assert result.longest_saturated_run <= 2
        assert result.allocations[55] == pytest.approx(8.0)

    def test_step_within_headroom_not_saturated(self, cal):
        values = np.full(cal.n_observations, 2.0)
        values[50:] = 3.5  # 1.75x step, inside the 2x headroom
        demand = trace(cal, values)
        result = simulate_closed_loop(demand, burst_factor=2.0)
        assert result.saturated_fraction == 0.0

    def test_larger_burst_factor_reduces_saturation(self, cal):
        rng = np.random.default_rng(0)
        values = rng.lognormal(0, 0.6, cal.n_observations)
        demand = trace(cal, values)
        tight = simulate_closed_loop(demand, burst_factor=1.2)
        roomy = simulate_closed_loop(demand, burst_factor=2.5)
        assert roomy.saturated_fraction <= tight.saturated_fraction

    def test_served_never_exceeds_allocation(self, cal):
        rng = np.random.default_rng(1)
        demand = trace(cal, rng.lognormal(0, 1.0, cal.n_observations))
        result = simulate_closed_loop(demand, burst_factor=1.5)
        assert (result.served <= result.allocations + 1e-12).all()

    def test_ceiling_respected(self, cal):
        demand = trace(cal, np.full(cal.n_observations, 10.0))
        result = simulate_closed_loop(
            demand, burst_factor=2.0, allocation_ceiling=8.0
        )
        assert result.allocations.max() <= 8.0
        assert result.saturated_fraction > 0.9

    def test_floor_prevents_deadlock_after_idle(self, cal):
        """After a long idle stretch the allocation must not collapse to
        zero, or the workload could never restart."""
        values = np.zeros(cal.n_observations)
        values[100:] = 1.0
        demand = trace(cal, values)
        result = simulate_closed_loop(demand, burst_factor=2.0)
        assert result.allocations[100] > 0
        # Recovery from idle completes.
        assert result.allocations[110] == pytest.approx(2.0)

    def test_rejects_bad_parameters(self, cal):
        demand = trace(cal, np.ones(cal.n_observations))
        with pytest.raises(SimulationError):
            simulate_closed_loop(demand, burst_factor=0)
        with pytest.raises(SimulationError):
            simulate_closed_loop(demand, 2.0, allocation_floor=0)
        with pytest.raises(SimulationError):
            simulate_closed_loop(
                demand, 2.0, allocation_floor=1.0, allocation_ceiling=0.5
            )


class TestCalibrateBurstFactor:
    def test_smooth_demand_needs_little_headroom(self, cal):
        demand = trace(cal, np.full(cal.n_observations, 2.0))
        factor = calibrate_burst_factor(demand)
        assert factor == pytest.approx(1.0)

    def test_bursty_demand_needs_more(self, cal):
        rng = np.random.default_rng(2)
        smooth = trace(cal, 2.0 + 0.05 * rng.random(cal.n_observations))
        bursty = trace(cal, rng.lognormal(0, 0.8, cal.n_observations))
        assert calibrate_burst_factor(bursty) >= calibrate_burst_factor(smooth)

    def test_calibrated_factor_meets_target(self, cal):
        rng = np.random.default_rng(3)
        demand = trace(cal, rng.lognormal(0, 0.5, cal.n_observations))
        factor = calibrate_burst_factor(demand, max_saturated_fraction=0.05)
        result = simulate_closed_loop(demand, factor)
        assert result.saturated_fraction <= 0.05

    def test_returns_largest_candidate_when_impossible(self, cal):
        rng = np.random.default_rng(4)
        demand = trace(cal, rng.lognormal(0, 2.5, cal.n_observations))
        factor = calibrate_burst_factor(
            demand,
            max_saturated_fraction=0.0,
            candidates=np.array([1.0, 1.5]),
        )
        assert factor == 1.5

    def test_rejects_bad_parameters(self, cal):
        demand = trace(cal, np.ones(cal.n_observations))
        with pytest.raises(SimulationError):
            calibrate_burst_factor(demand, max_saturated_fraction=1.0)
        with pytest.raises(SimulationError):
            calibrate_burst_factor(demand, candidates=np.array([]))
