"""Tests for the resource pool."""

import pytest

from repro.exceptions import CapacityError
from repro.resources.pool import ResourcePool
from repro.resources.server import ServerSpec, homogeneous_servers


class TestConstruction:
    def test_basic(self):
        pool = ResourcePool(homogeneous_servers(3))
        assert len(pool) == 3
        assert pool.names() == ["server-00", "server-01", "server-02"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(CapacityError, match="duplicate"):
            ResourcePool([ServerSpec("s", 4), ServerSpec("s", 8)])

    def test_empty_pool_allowed(self):
        assert len(ResourcePool([])) == 0


class TestAccess:
    def test_contains(self):
        pool = ResourcePool(homogeneous_servers(2))
        assert "server-00" in pool
        assert "nope" not in pool

    def test_getitem(self):
        pool = ResourcePool(homogeneous_servers(2))
        assert pool["server-01"].name == "server-01"
        with pytest.raises(KeyError):
            pool["missing"]

    def test_iteration_order(self):
        servers = homogeneous_servers(3)
        pool = ResourcePool(servers)
        assert list(pool) == servers


class TestCapacityTotals:
    def test_total_cpus(self):
        pool = ResourcePool(homogeneous_servers(3, cpus=16))
        assert pool.total_cpus() == 48

    def test_total_capacity(self):
        pool = ResourcePool(
            [ServerSpec("a", 4), ServerSpec("b", 8, attributes={"cpu": 6.0})]
        )
        assert pool.total_capacity("cpu") == 10.0


class TestMutationsReturnNewPools:
    def test_without(self):
        pool = ResourcePool(homogeneous_servers(3))
        smaller = pool.without("server-01")
        assert len(smaller) == 2
        assert "server-01" not in smaller
        assert len(pool) == 3  # original unchanged

    def test_without_unknown_rejected(self):
        pool = ResourcePool(homogeneous_servers(2))
        with pytest.raises(CapacityError):
            pool.without("ghost")

    def test_without_multiple(self):
        pool = ResourcePool(homogeneous_servers(4))
        assert len(pool.without("server-00", "server-03")) == 2

    def test_with_added(self):
        pool = ResourcePool(homogeneous_servers(2))
        bigger = pool.with_added(ServerSpec("spare", 16))
        assert len(bigger) == 3
        assert "spare" in bigger

    def test_with_added_duplicate_rejected(self):
        pool = ResourcePool(homogeneous_servers(2))
        with pytest.raises(CapacityError):
            pool.with_added(ServerSpec("server-00", 4))
