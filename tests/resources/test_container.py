"""Tests for resource containers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.resources.container import ResourceContainer
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=60)


@pytest.fixture
def demand(cal):
    return DemandTrace("w", np.ones(cal.n_observations), cal)


@pytest.fixture
def pair(cal):
    n = cal.n_observations
    return CoSAllocationPair(
        "w",
        AllocationTrace("w.cos1", np.ones(n), cal),
        AllocationTrace("w.cos2", np.ones(n), cal),
    )


class TestResourceContainer:
    def test_untranslated_by_default(self, demand):
        container = ResourceContainer("w", demand)
        assert not container.is_translated

    def test_require_allocation_raises_when_untranslated(self, demand):
        container = ResourceContainer("w", demand)
        with pytest.raises(ConfigurationError):
            container.require_allocation()

    def test_with_allocation(self, demand, pair):
        container = ResourceContainer("w", demand).with_allocation(pair)
        assert container.is_translated
        assert container.require_allocation() is pair

    def test_empty_name_rejected(self, demand):
        with pytest.raises(ConfigurationError):
            ResourceContainer("", demand)

    def test_calendar_mismatch_rejected(self, demand):
        other_cal = TraceCalendar(weeks=2, slot_minutes=60)
        n = other_cal.n_observations
        mismatched = CoSAllocationPair(
            "w",
            AllocationTrace("w.cos1", np.ones(n), other_cal),
            AllocationTrace("w.cos2", np.ones(n), other_cal),
        )
        with pytest.raises(Exception):
            ResourceContainer("w", demand, mismatched)

    def test_repr_mentions_state(self, demand, pair):
        assert "untranslated" in repr(ResourceContainer("w", demand))
        assert "translated" in repr(
            ResourceContainer("w", demand).with_allocation(pair)
        )
