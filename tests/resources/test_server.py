"""Tests for server specifications."""

import pytest

from repro.exceptions import CapacityError
from repro.resources.server import ServerSpec, homogeneous_servers


class TestServerSpec:
    def test_cpu_attribute_defaults_to_cpu_count(self):
        server = ServerSpec("s0", cpus=16)
        assert server.capacity_of("cpu") == 16.0

    def test_explicit_attributes(self):
        server = ServerSpec("s0", cpus=8, attributes={"mem": 64.0})
        assert server.capacity_of("mem") == 64.0
        assert server.capacity_of("cpu") == 8.0

    def test_explicit_cpu_capacity_overrides(self):
        server = ServerSpec("s0", cpus=8, attributes={"cpu": 7.5})
        assert server.capacity_of("cpu") == 7.5

    def test_unknown_attribute_raises(self):
        with pytest.raises(CapacityError):
            ServerSpec("s0", cpus=4).capacity_of("disk")

    def test_has_attribute(self):
        server = ServerSpec("s0", cpus=4, attributes={"mem": 1.0})
        assert server.has_attribute("mem")
        assert not server.has_attribute("disk")

    def test_rejects_empty_name(self):
        with pytest.raises(CapacityError):
            ServerSpec("", cpus=4)

    def test_rejects_zero_cpus(self):
        with pytest.raises(CapacityError):
            ServerSpec("s0", cpus=0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(CapacityError):
            ServerSpec("s0", cpus=4, attributes={"mem": 0.0})

    def test_attributes_immutable(self):
        server = ServerSpec("s0", cpus=4)
        with pytest.raises(TypeError):
            server.attributes["cpu"] = 100.0

    def test_equality_and_hash(self):
        a = ServerSpec("s0", cpus=4)
        b = ServerSpec("s0", cpus=4)
        assert a == b
        assert hash(a) == hash(b)
        assert a != ServerSpec("s0", cpus=8)


class TestHomogeneousServers:
    def test_count_and_names(self):
        servers = homogeneous_servers(3, cpus=16)
        assert [server.name for server in servers] == [
            "server-00",
            "server-01",
            "server-02",
        ]
        assert all(server.cpus == 16 for server in servers)

    def test_custom_prefix(self):
        servers = homogeneous_servers(1, prefix="blade")
        assert servers[0].name == "blade-00"

    def test_zero_count(self):
        assert homogeneous_servers(0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(CapacityError):
            homogeneous_servers(-1)
