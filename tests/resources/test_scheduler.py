"""Tests for the two-priority capacity scheduler."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.resources.scheduler import CapacityScheduler
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.calendar import TraceCalendar


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=360)  # 28 slots, small


def pair_from_arrays(cal, name, cos1, cos2):
    return CoSAllocationPair(
        name,
        AllocationTrace(f"{name}.cos1", cos1, cal),
        AllocationTrace(f"{name}.cos2", cos2, cal),
    )


def constant_pair(cal, name, cos1_level, cos2_level):
    n = cal.n_observations
    return pair_from_arrays(
        cal, name, np.full(n, cos1_level), np.full(n, cos2_level)
    )


class TestBasicScheduling:
    def test_everything_granted_when_capacity_sufficient(self, cal):
        pairs = [constant_pair(cal, "a", 1.0, 1.0), constant_pair(cal, "b", 0.5, 0.5)]
        result = CapacityScheduler(capacity=10.0).run(pairs)
        assert np.allclose(result.cos1_granted, result.cos1_requested)
        assert np.allclose(result.cos2_granted, result.cos2_requested)
        assert result.worst_backlog_age() == 0
        assert result.overbooked_slots.size == 0

    def test_cos1_priority_over_cos2(self, cal):
        # Capacity 2: CoS1 requests 2, CoS2 requests 2 -> CoS2 gets nothing.
        pairs = [constant_pair(cal, "a", 2.0, 2.0)]
        result = CapacityScheduler(capacity=2.0).run(pairs, carry_forward=False)
        assert np.allclose(result.cos1_granted, 2.0)
        assert np.allclose(result.cos2_granted, 0.0)

    def test_proportional_sharing_within_cos2(self, cal):
        # Remaining capacity 3 split 2:1 across CoS2 requests of 4 and 2.
        pairs = [
            constant_pair(cal, "a", 0.0, 4.0),
            constant_pair(cal, "b", 0.0, 2.0),
        ]
        result = CapacityScheduler(capacity=3.0).run(pairs, carry_forward=False)
        assert np.allclose(result.cos2_granted[0], 2.0)
        assert np.allclose(result.cos2_granted[1], 1.0)

    def test_cos1_overbooking_detected(self, cal):
        pairs = [constant_pair(cal, "a", 3.0, 0.0)]
        result = CapacityScheduler(capacity=2.0).run(pairs)
        assert result.overbooked_slots.size == cal.n_observations
        # Granted proportionally down to capacity.
        assert np.allclose(result.cos1_granted, 2.0)

    def test_grants_never_exceed_capacity(self, cal):
        rng = np.random.default_rng(0)
        n = cal.n_observations
        pairs = [
            pair_from_arrays(
                cal, f"w{i}", rng.uniform(0, 1, n), rng.uniform(0, 2, n)
            )
            for i in range(4)
        ]
        result = CapacityScheduler(capacity=3.0).run(pairs)
        totals = result.granted_total().sum(axis=0)
        assert (totals <= 3.0 + 1e-6).all()


class TestBacklog:
    def test_deferred_demand_served_later(self, cal):
        n = cal.n_observations
        cos2 = np.zeros(n)
        cos2[0] = 4.0  # burst needing 2 slots at capacity 2
        pairs = [pair_from_arrays(cal, "a", np.zeros(n), cos2)]
        result = CapacityScheduler(capacity=2.0).run(pairs)
        assert result.cos2_granted[0, 0] == pytest.approx(2.0)
        assert result.cos2_granted[0, 1] == pytest.approx(2.0)
        assert result.worst_backlog_age() == 1
        assert result.meets_deadline(1)
        assert not result.meets_deadline(0)

    def test_no_carry_forward_drops_demand(self, cal):
        n = cal.n_observations
        cos2 = np.zeros(n)
        cos2[0] = 4.0
        pairs = [pair_from_arrays(cal, "a", np.zeros(n), cos2)]
        result = CapacityScheduler(capacity=2.0).run(pairs, carry_forward=False)
        assert result.cos2_granted[0, 1] == 0.0
        assert result.worst_backlog_age() == 0

    def test_backlog_at_trace_end_counts(self, cal):
        n = cal.n_observations
        cos2 = np.zeros(n)
        cos2[-1] = 10.0  # can never be drained
        pairs = [pair_from_arrays(cal, "a", np.zeros(n), cos2)]
        result = CapacityScheduler(capacity=2.0).run(pairs)
        assert result.worst_backlog_age() >= 1

    def test_satisfaction_ratio(self, cal):
        n = cal.n_observations
        cos2 = np.full(n, 4.0)
        pairs = [pair_from_arrays(cal, "a", np.zeros(n), cos2)]
        result = CapacityScheduler(capacity=2.0).run(pairs, carry_forward=False)
        assert result.cos2_satisfaction_ratio() == pytest.approx(0.5)

    def test_satisfaction_ratio_with_no_demand(self, cal):
        pairs = [constant_pair(cal, "a", 1.0, 0.0)]
        result = CapacityScheduler(capacity=2.0).run(pairs)
        assert result.cos2_satisfaction_ratio() == 1.0


class TestValidation:
    def test_rejects_empty_pairs(self):
        with pytest.raises(SimulationError):
            CapacityScheduler(capacity=1.0).run([])

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(SimulationError):
            CapacityScheduler(capacity=0.0)


class TestConservation:
    def test_work_conservation(self, cal):
        """Total grants equal total requests when capacity always suffices."""
        rng = np.random.default_rng(1)
        n = cal.n_observations
        pairs = [
            pair_from_arrays(
                cal, f"w{i}", rng.uniform(0, 0.5, n), rng.uniform(0, 0.5, n)
            )
            for i in range(3)
        ]
        result = CapacityScheduler(capacity=100.0).run(pairs)
        assert result.cos1_granted.sum() == pytest.approx(
            result.cos1_requested.sum()
        )
        assert result.cos2_granted.sum() == pytest.approx(
            result.cos2_requested.sum()
        )

    def test_eventual_service_with_backlog(self, cal):
        """With carry-forward, every deferred unit is eventually granted
        as long as later capacity suffices."""
        n = cal.n_observations
        cos2 = np.zeros(n)
        cos2[2] = 6.0
        pairs = [pair_from_arrays(cal, "a", np.zeros(n), cos2)]
        result = CapacityScheduler(capacity=2.0).run(pairs)
        assert result.cos2_granted.sum() == pytest.approx(6.0)
