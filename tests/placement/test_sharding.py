"""Tests for the hierarchical placement tier (cluster → shard → refine)."""

import pytest

from repro.core.cos import PoolCommitments
from repro.engine.checkpoint import Checkpointer
from repro.exceptions import PlacementError
from repro.placement.genetic import GeneticSearchConfig
from repro.placement.sharding import (
    HierarchicalPlanner,
    ShardingPolicy,
    derive_shard_seed,
    pair_shape_features,
    partition_pool,
)
from repro.core.framework import ROpus
from repro.core.qos import QoSPolicy, case_study_qos
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.calendar import TraceCalendar
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

FAST_SEARCH = GeneticSearchConfig(
    seed=3, max_generations=8, stall_generations=3, population_size=8
)


@pytest.fixture(scope="module")
def demands():
    calendar = TraceCalendar(weeks=1, slot_minutes=30)
    generator = WorkloadGenerator(seed=17)
    specs = [
        WorkloadSpec(
            name=f"w{i:02d}",
            peak_cpus=1.0 + 0.3 * i,
            noise_sigma=0.2 + 0.02 * i,
            spike_rate_per_week=float(i % 3),
            spike_magnitude=2.0,
        )
        for i in range(12)
    ]
    return generator.generate_many(specs, calendar)


@pytest.fixture(scope="module")
def pairs(demands):
    framework = ROpus(
        PoolCommitments.of(theta=0.9),
        ResourcePool(homogeneous_servers(10, cpus=16)),
    )
    policy = QoSPolicy(normal=case_study_qos(m_degr_percent=3))
    translations = framework.translate(demands, policy)
    return [result.pair for result in translations.values()]


def _planner(pool_size=10, policy=None, config=FAST_SEARCH):
    # 32-way servers: the spikiest fixture workload needs ~25 CPUs of
    # peak allocation, so every workload fits on every server.
    return HierarchicalPlanner(
        ResourcePool(homogeneous_servers(pool_size, cpus=32)),
        PoolCommitments.of(theta=0.9).cos2,
        config=config,
        policy=policy or ShardingPolicy(shards=2, cluster_seed=7),
    )


class TestShardingPolicy:
    def test_off_disables_the_tier(self):
        policy = ShardingPolicy(shards="off")
        assert not policy.enabled
        assert policy.resolved_shards(100, 50) == 1

    def test_auto_targets_workloads_per_shard(self):
        policy = ShardingPolicy(
            shards="auto", target_workloads_per_shard=10,
            min_servers_per_shard=2,
        )
        assert policy.resolved_shards(40, 20) == 4
        # Server floor binds before the workload target.
        assert policy.resolved_shards(40, 4) == 2

    def test_explicit_count_clamped_to_pool(self):
        policy = ShardingPolicy(shards=8)
        assert policy.resolved_shards(100, 4) == 4
        assert policy.resolved_shards(2, 100) == 2

    def test_invalid_knobs_rejected(self):
        with pytest.raises(PlacementError):
            ShardingPolicy(shards="sideways")
        with pytest.raises(PlacementError):
            ShardingPolicy(shards=0)
        with pytest.raises(PlacementError):
            ShardingPolicy(refine_rounds=-1)
        with pytest.raises(PlacementError):
            ShardingPolicy(min_servers_per_shard=0)
        with pytest.raises(PlacementError):
            ShardingPolicy(target_workloads_per_shard=0)


class TestPartitionPool:
    def test_apportions_servers_to_mass(self):
        pool = ResourcePool(homogeneous_servers(10))
        # Each shard gets its 1-server floor; the 8 spare servers are
        # apportioned 3:1 to the masses.
        slices = partition_pool(pool, [3.0, 1.0], min_servers_per_shard=1)
        assert [len(s) for s in slices] == [7, 3]

    def test_minimum_servers_per_shard_honoured(self):
        pool = ResourcePool(homogeneous_servers(10))
        slices = partition_pool(pool, [100.0, 1.0], min_servers_per_shard=2)
        assert min(len(s) for s in slices) >= 2

    def test_slices_partition_the_pool_in_order(self):
        pool = ResourcePool(homogeneous_servers(9))
        slices = partition_pool(pool, [1.0, 2.0, 3.0])
        flat = [name for piece in slices for name in piece]
        assert flat == pool.names()

    def test_zero_mass_splits_evenly(self):
        pool = ResourcePool(homogeneous_servers(9))
        slices = partition_pool(pool, [0.0, 0.0, 0.0])
        assert [len(s) for s in slices] == [3, 3, 3]

    def test_deterministic_for_equal_masses(self):
        pool = ResourcePool(homogeneous_servers(7))
        first = partition_pool(pool, [1.0, 1.0, 1.0])
        second = partition_pool(pool, [1.0, 1.0, 1.0])
        assert first == second

    def test_capacity_floors_raise_starved_shards(self):
        pool = ResourcePool(homogeneous_servers(10))
        # Mass says 9:1, but the small shard's floor demands 4 servers.
        slices = partition_pool(
            pool, [9.0, 1.0], min_servers_per_shard=1, floors=[1, 4]
        )
        assert len(slices[1]) >= 4

    def test_unsatisfiable_floors_trimmed_to_fit(self):
        pool = ResourcePool(homogeneous_servers(4))
        # Floors sum past the pool: trimmed largest-first until they
        # fit, so both shards keep an equal share of their floors.
        slices = partition_pool(pool, [3.0, 1.0], floors=[4, 4])
        assert [len(s) for s in slices] == [2, 2]

    def test_floor_length_mismatch_rejected(self):
        pool = ResourcePool(homogeneous_servers(4))
        with pytest.raises(PlacementError):
            partition_pool(pool, [1.0, 1.0], floors=[1])

    def test_infeasible_minimum_rejected(self):
        pool = ResourcePool(homogeneous_servers(3))
        with pytest.raises(PlacementError):
            partition_pool(pool, [1.0, 1.0], min_servers_per_shard=2)

    def test_negative_mass_rejected(self):
        pool = ResourcePool(homogeneous_servers(3))
        with pytest.raises(PlacementError):
            partition_pool(pool, [1.0, -1.0])


class TestDeriveShardSeed:
    def test_deterministic_and_distinct_per_shard(self):
        seeds = [derive_shard_seed(2006, index) for index in range(8)]
        assert seeds == [derive_shard_seed(2006, index) for index in range(8)]
        assert len(set(seeds)) == len(seeds)

    def test_none_passes_through(self):
        assert derive_shard_seed(None, 3) is None


class TestPairShapeFeatures:
    def test_exact_cos1_fraction(self, pairs):
        features = pair_shape_features(pairs)
        from repro.placement.clustering import FEATURE_NAMES

        column = features.raw[:, FEATURE_NAMES.index("cos1_fraction")]
        for row, pair in enumerate(pairs):
            total = float(pair.cos1.values.sum() + pair.cos2.values.sum())
            expected = float(pair.cos1.values.sum()) / total
            assert column[row] == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(PlacementError):
            pair_shape_features([])


class TestHierarchicalPlanner:
    def test_full_pipeline_places_every_workload_once(self, pairs):
        planner = _planner()
        result = planner.plan(pairs)
        placed = sorted(
            name
            for names in result.consolidation.assignment.values()
            for name in names
        )
        assert placed == sorted(pair.name for pair in pairs)
        assert result.consolidation.algorithm == "sharded-genetic"
        assert result.shard_count >= 1

    def test_shards_use_disjoint_servers(self, pairs):
        result = _planner().plan(pairs)
        seen: set[str] = set()
        for servers in result.shard_servers:
            assert not seen.intersection(servers)
            seen.update(servers)

    def test_sum_required_matches_per_server_total(self, pairs):
        result = _planner().plan(pairs)
        consolidation = result.consolidation
        assert consolidation.sum_required == pytest.approx(
            sum(consolidation.required_by_server.values())
        )

    def test_deterministic_across_runs(self, pairs):
        first = _planner().plan(pairs)
        second = _planner().plan(pairs)
        assert dict(first.consolidation.assignment) == dict(
            second.consolidation.assignment
        )
        assert first.migrations == second.migrations
        assert first.refine_rounds_run == second.refine_rounds_run

    def test_refinement_rounds_bounded_by_policy(self, pairs):
        policy = ShardingPolicy(shards=3, cluster_seed=7, refine_rounds=1)
        result = _planner(policy=policy).plan(pairs)
        assert result.refine_rounds_run <= 1

    def test_zero_refine_rounds_skips_refinement(self, pairs):
        policy = ShardingPolicy(shards=2, cluster_seed=7, refine_rounds=0)
        result = _planner(policy=policy).plan(pairs)
        assert result.refine_rounds_run == 0
        assert result.migrations == 0

    def test_stage_order_enforced(self, pairs):
        planner = _planner()
        with pytest.raises(PlacementError):
            planner.partition()
        planner.cluster(pairs)
        with pytest.raises(PlacementError):
            planner.refine()

    def test_summary_reports_the_tier(self, pairs):
        result = _planner().plan(pairs)
        summary = result.summary()
        assert summary["shards"] == result.shard_count
        assert sum(summary["shard_sizes"]) == len(pairs)
        assert len(summary["shard_seconds"]) == result.shard_count

    def test_empty_pool_rejected(self):
        with pytest.raises(PlacementError):
            HierarchicalPlanner(
                ResourcePool([]), PoolCommitments.of(theta=0.9).cos2
            )

    def test_no_workloads_rejected(self):
        with pytest.raises(PlacementError):
            _planner().cluster([])


class TestShardCheckpoints:
    def test_completed_shards_resume_from_checkpoint(self, pairs, tmp_path):
        store = Checkpointer(tmp_path / "ckpt")
        baseline = _planner().plan(pairs, checkpointer=store)
        assert baseline.resumed_shards == 0
        assert any(key.startswith("shard/") for key in store.keys())

        resumed = _planner().plan(pairs, checkpointer=Checkpointer(tmp_path / "ckpt"))
        assert resumed.resumed_shards == baseline.shard_count
        assert dict(resumed.consolidation.assignment) == dict(
            baseline.consolidation.assignment
        )

    def test_membership_mismatch_invalidates_a_shard(self, pairs, tmp_path):
        store = Checkpointer(tmp_path / "ckpt")
        baseline = _planner().plan(pairs, checkpointer=store)
        assert baseline.shard_count >= 2

        # Tamper with shard 0's membership record: a resume whose
        # clustering assigned different workloads to the shard must
        # recompute it rather than trust the stale plan.
        doctored = store.load("shard/0")
        assert doctored is not None
        doctored["workloads"] = ["not-a-real-workload"]
        store.save("shard/0", doctored)

        resumed = _planner().plan(pairs, checkpointer=store)
        assert resumed.resumed_shards == baseline.shard_count - 1
        assert dict(resumed.consolidation.assignment) == dict(
            baseline.consolidation.assignment
        )
