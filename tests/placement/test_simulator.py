"""Tests for the single-server replay simulator."""

import numpy as np
import pytest

from repro.core.cos import CoSCommitment
from repro.exceptions import SimulationError
from repro.placement.simulator import SingleServerSimulator
from repro.resources.scheduler import CapacityScheduler
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.calendar import TraceCalendar


@pytest.fixture
def cal():
    return TraceCalendar(weeks=2, slot_minutes=60)


def make_pair(cal, name, cos1, cos2):
    return CoSAllocationPair(
        name,
        AllocationTrace(f"{name}.cos1", cos1, cal),
        AllocationTrace(f"{name}.cos2", cos2, cal),
    )


def constant_pair(cal, name, cos1_level, cos2_level):
    n = cal.n_observations
    return make_pair(cal, name, np.full(n, cos1_level), np.full(n, cos2_level))


class TestEvaluate:
    def test_ample_capacity_full_satisfaction(self, cal):
        simulator = SingleServerSimulator.from_pairs(
            [constant_pair(cal, "a", 1.0, 2.0)]
        )
        report = simulator.evaluate(10.0)
        assert report.cos1_fits
        assert report.theta_measured == 1.0
        assert report.max_deferred_slots == 0
        assert report.deadline_ok(
            CoSCommitment(theta=0.9, deadline_minutes=60), cal
        )

    def test_cos1_does_not_fit(self, cal):
        simulator = SingleServerSimulator.from_pairs(
            [constant_pair(cal, "a", 5.0, 0.0)]
        )
        report = simulator.evaluate(4.0)
        assert not report.cos1_fits
        assert report.cos1_peak == 5.0

    def test_theta_ratio_constant_overload(self, cal):
        # CoS2 requests 4 every slot, capacity 2 after no CoS1 -> 50%.
        simulator = SingleServerSimulator.from_pairs(
            [constant_pair(cal, "a", 0.0, 4.0)]
        )
        report = simulator.evaluate(2.0)
        assert report.theta_measured == pytest.approx(0.5)
        # Permanently oversubscribed: deferred demand never drains in time.
        assert not report.deadline_ok(
            CoSCommitment(theta=0.5, deadline_minutes=60), cal
        )

    def test_cos1_reduces_cos2_capacity(self, cal):
        simulator = SingleServerSimulator.from_pairs(
            [constant_pair(cal, "a", 1.0, 2.0)]
        )
        report = simulator.evaluate(2.0)
        # CoS2 sees 1 unit of the 2 requested -> theta 0.5.
        assert report.theta_measured == pytest.approx(0.5)

    def test_theta_is_min_over_week_slots(self, cal):
        # Demand only in week 0, slot 0 of each day; satisfied elsewhere.
        n = cal.n_observations
        cos2 = np.zeros(n)
        for day in range(7):
            cos2[day * 24] = 4.0  # week 0 only
        simulator = SingleServerSimulator.from_pairs(
            [make_pair(cal, "a", np.zeros(n), cos2)]
        )
        report = simulator.evaluate(2.0)
        # That one (week, slot) pair has ratio 0.5; everything else is 1.
        assert report.theta_measured == pytest.approx(0.5)

    def test_zero_cos2_theta_is_one(self, cal):
        simulator = SingleServerSimulator.from_pairs(
            [constant_pair(cal, "a", 1.0, 0.0)]
        )
        assert simulator.evaluate(2.0).theta_measured == 1.0

    def test_monotone_in_capacity(self, cal):
        rng = np.random.default_rng(0)
        n = cal.n_observations
        pair = make_pair(cal, "a", rng.uniform(0, 1, n), rng.uniform(0, 3, n))
        simulator = SingleServerSimulator.from_pairs([pair])
        capacities = [1.0, 2.0, 3.0, 4.0, 6.0]
        thetas = [simulator.evaluate(c).theta_measured for c in capacities]
        deferrals = [simulator.evaluate(c).max_deferred_slots for c in capacities]
        assert all(a <= b + 1e-12 for a, b in zip(thetas, thetas[1:]))
        assert all(a >= b for a, b in zip(deferrals, deferrals[1:]))

    def test_rejects_nonpositive_capacity(self, cal):
        simulator = SingleServerSimulator.from_pairs(
            [constant_pair(cal, "a", 1.0, 1.0)]
        )
        with pytest.raises(SimulationError):
            simulator.evaluate(0.0)

    def test_rejects_empty_pairs(self):
        with pytest.raises(SimulationError):
            SingleServerSimulator.from_pairs([])


class TestDeferredSlots:
    def test_burst_deferral_measured(self, cal):
        n = cal.n_observations
        cos2 = np.zeros(n)
        cos2[10] = 6.0  # needs 3 slots at capacity 2
        simulator = SingleServerSimulator.from_pairs(
            [make_pair(cal, "a", np.zeros(n), cos2)]
        )
        report = simulator.evaluate(2.0)
        assert report.max_deferred_slots == 2
        # 2 deferred slots violate a 1-slot (60 min) deadline but honour
        # a 2-slot (120 min) one.
        assert not report.deadline_ok(
            CoSCommitment(theta=0.1, deadline_minutes=60), cal
        )
        assert report.deadline_ok(
            CoSCommitment(theta=0.1, deadline_minutes=120), cal
        )

    def test_deferral_within_deadline_satisfies(self, cal):
        """Regression: deferral inside the commitment deadline is allowed.

        The old ``deadline_ok`` field was True only for zero deferral,
        contradicting ``satisfies()``; a trace that defers but drains
        within ``s`` must pass both checks.
        """
        n = cal.n_observations
        cos2 = np.zeros(n)
        cos2[10] = 6.0  # needs 3 slots at capacity 2 -> 2 deferred slots
        simulator = SingleServerSimulator.from_pairs(
            [make_pair(cal, "a", np.zeros(n), cos2)]
        )
        report = simulator.evaluate(2.0)
        commitment = CoSCommitment(theta=0.1, deadline_minutes=180)
        assert report.max_deferred_slots == 2
        assert report.deadline_ok(commitment, cal)
        assert report.satisfies(commitment, cal)

    def test_never_served_counts_to_trace_end(self, cal):
        n = cal.n_observations
        cos2 = np.full(n, 4.0)  # permanently oversubscribed at capacity 2
        simulator = SingleServerSimulator.from_pairs(
            [make_pair(cal, "a", np.zeros(n), cos2)]
        )
        report = simulator.evaluate(2.0)
        assert report.max_deferred_slots > n // 4

    def test_agreement_with_scheduler_backlog(self, cal):
        """The vectorised deferral matches the step-wise scheduler."""
        rng = np.random.default_rng(5)
        n = cal.n_observations
        pairs = [
            make_pair(cal, "a", np.zeros(n), rng.uniform(0, 3, n)),
        ]
        capacity = 2.0
        simulator_report = SingleServerSimulator.from_pairs(pairs).evaluate(
            capacity
        )
        scheduler_result = CapacityScheduler(capacity).run(pairs)
        assert (
            simulator_report.max_deferred_slots
            == scheduler_result.worst_backlog_age()
        )


class TestSatisfies:
    def test_satisfies_commitment(self, cal):
        simulator = SingleServerSimulator.from_pairs(
            [constant_pair(cal, "a", 0.5, 1.0)]
        )
        commitment = CoSCommitment(theta=0.9, deadline_minutes=60)
        assert simulator.evaluate(3.0).satisfies(commitment, cal)

    def test_fails_on_low_theta(self, cal):
        simulator = SingleServerSimulator.from_pairs(
            [constant_pair(cal, "a", 0.0, 4.0)]
        )
        commitment = CoSCommitment(theta=0.9, deadline_minutes=10_000)
        assert not simulator.evaluate(2.0).satisfies(commitment, cal)

    def test_fails_on_deadline(self, cal):
        n = cal.n_observations
        cos2 = np.zeros(n)
        cos2[0] = 20.0  # large burst, theta per-slot min still high overall?
        simulator = SingleServerSimulator.from_pairs(
            [make_pair(cal, "a", np.zeros(n), cos2)]
        )
        commitment = CoSCommitment(theta=0.01, deadline_minutes=60)
        report = simulator.evaluate(2.0)
        # Needs 10 slots to drain at capacity 2; deadline is 1 slot.
        assert not report.satisfies(commitment, cal)

    def test_fails_on_cos1_overbooking(self, cal):
        simulator = SingleServerSimulator.from_pairs(
            [constant_pair(cal, "a", 5.0, 0.0)]
        )
        commitment = CoSCommitment(theta=0.5, deadline_minutes=10_000)
        assert not simulator.evaluate(4.0).satisfies(commitment, cal)
