"""Tests for the consolidation exercise."""

import numpy as np
import pytest

from repro.core.cos import CoSCommitment
from repro.exceptions import PlacementError
from repro.placement.consolidation import Consolidator
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.calendar import TraceCalendar


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=60)


@pytest.fixture
def pairs(cal):
    rng = np.random.default_rng(3)
    n = cal.n_observations
    return [
        CoSAllocationPair(
            f"w{i}",
            AllocationTrace(f"w{i}.c1", rng.uniform(0, 1, n), cal),
            AllocationTrace(f"w{i}.c2", rng.uniform(0, 3, n), cal),
        )
        for i in range(8)
    ]


@pytest.fixture
def consolidator():
    pool = ResourcePool(homogeneous_servers(8, cpus=16))
    return Consolidator(
        pool,
        CoSCommitment(theta=0.9),
        config=GeneticSearchConfig(seed=0, max_generations=15, stall_generations=4),
    )


class TestConsolidate:
    @pytest.mark.parametrize("algorithm", ["genetic", "first_fit", "best_fit"])
    def test_produces_valid_result(self, pairs, consolidator, algorithm):
        result = consolidator.consolidate(pairs, algorithm=algorithm)
        placed = sorted(
            name for names in result.assignment.values() for name in names
        )
        assert placed == sorted(pair.name for pair in pairs)
        assert result.servers_used == len(result.assignment)
        assert result.algorithm == algorithm
        assert set(result.required_by_server) == set(result.assignment)

    def test_capacity_metrics(self, pairs, consolidator):
        result = consolidator.consolidate(pairs)
        assert result.sum_required == pytest.approx(
            sum(result.required_by_server.values())
        )
        expected_peak = sum(pair.peak_allocation() for pair in pairs)
        assert result.sum_peak_allocations == pytest.approx(expected_peak)
        assert 0.0 <= result.sharing_savings() < 1.0

    def test_sharing_beats_peak_provisioning(self, pairs, consolidator):
        """C_requ should undercut C_peak for uncorrelated workloads."""
        result = consolidator.consolidate(pairs)
        assert result.sum_required < result.sum_peak_allocations

    def test_genetic_never_worse_than_first_fit(self, pairs, consolidator):
        genetic = consolidator.consolidate(pairs, algorithm="genetic")
        greedy = consolidator.consolidate(pairs, algorithm="first_fit")
        assert genetic.servers_used <= greedy.servers_used

    def test_server_of(self, pairs, consolidator):
        result = consolidator.consolidate(pairs, algorithm="first_fit")
        server = result.server_of("w0")
        assert "w0" in result.assignment[server]
        with pytest.raises(PlacementError):
            result.server_of("ghost")

    def test_unknown_algorithm_rejected(self, pairs, consolidator):
        with pytest.raises(PlacementError):
            consolidator.consolidate(pairs, algorithm="quantum")

    def test_empty_pool_rejected(self):
        with pytest.raises(PlacementError):
            Consolidator(ResourcePool([]), CoSCommitment(theta=0.9))

    def test_required_capacities_within_limits(self, pairs, consolidator):
        result = consolidator.consolidate(pairs)
        for server_name, required in result.required_by_server.items():
            assert required <= 16.0 + 1e-9


class TestPreviousPlanSeeding:
    def test_previous_plan_improves_or_matches(self, pairs, consolidator):
        first = consolidator.consolidate(pairs)
        second = consolidator.consolidate(pairs, previous=first)
        assert second.score >= first.score - 1e-9

    def test_previous_with_unknown_server_skipped(self, pairs, consolidator):
        from repro.placement.consolidation import ConsolidationResult

        bogus = ConsolidationResult(
            assignment={"ghost-server": tuple(pair.name for pair in pairs)},
            required_by_server={"ghost-server": 1.0},
            sum_required=1.0,
            sum_peak_allocations=1.0,
            score=0.0,
            algorithm="first_fit",
        )
        # Must not crash: the unusable previous plan is ignored.
        result = consolidator.consolidate(pairs, previous=bogus)
        assert result.servers_used >= 1

    def test_previous_with_missing_workloads_skipped(self, pairs, consolidator):
        partial = consolidator.consolidate(pairs[:3])
        result = consolidator.consolidate(pairs, previous=partial)
        assert result.servers_used >= 1

    def test_previous_with_stale_workload_names_skipped(
        self, pairs, consolidator
    ):
        from repro.placement.consolidation import ConsolidationResult

        stale = ConsolidationResult(
            assignment={"server-00": ("nonexistent",) + tuple(
                pair.name for pair in pairs
            )},
            required_by_server={"server-00": 1.0},
            sum_required=1.0,
            sum_peak_allocations=1.0,
            score=0.0,
            algorithm="first_fit",
        )
        result = consolidator.consolidate(pairs, previous=stale)
        assert result.servers_used >= 1
