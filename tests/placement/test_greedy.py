"""Tests for greedy placement baselines."""

import numpy as np
import pytest

from repro.core.cos import CoSCommitment
from repro.exceptions import InfeasiblePlacementError
from repro.placement.evaluation import PlacementEvaluator
from repro.placement.greedy import best_fit_decreasing, first_fit_decreasing
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.calendar import TraceCalendar


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=60)


def constant_pair(cal, name, cos1_level, cos2_level):
    n = cal.n_observations
    return CoSAllocationPair(
        name,
        AllocationTrace(f"{name}.cos1", np.full(n, cos1_level), cal),
        AllocationTrace(f"{name}.cos2", np.full(n, cos2_level), cal),
    )


def check_assignment_feasible(evaluator, pool, assignment):
    servers = list(pool.servers)
    groups = {}
    for workload_index, server_index in enumerate(assignment):
        groups.setdefault(server_index, []).append(workload_index)
    for server_index, indices in groups.items():
        evaluation = evaluator.evaluate_group(indices, servers[server_index])
        assert evaluation.fits


@pytest.mark.parametrize("algorithm", [first_fit_decreasing, best_fit_decreasing])
class TestGreedyAlgorithms:
    def test_feasible_assignment(self, cal, algorithm):
        pairs = [constant_pair(cal, f"w{i}", 1.0, 2.0) for i in range(6)]
        evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.9))
        pool = ResourcePool(homogeneous_servers(6, cpus=16))
        assignment = algorithm(evaluator, pool)
        assert len(assignment) == 6
        check_assignment_feasible(evaluator, pool, assignment)

    def test_consolidates_small_workloads(self, cal, algorithm):
        """Six tiny workloads should share far fewer than six servers."""
        pairs = [constant_pair(cal, f"w{i}", 0.5, 1.0) for i in range(6)]
        evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.9))
        pool = ResourcePool(homogeneous_servers(6, cpus=16))
        assignment = algorithm(evaluator, pool)
        assert len(set(assignment)) == 1

    def test_opens_new_server_when_needed(self, cal, algorithm):
        # Each workload needs ~12 of a 16-CPU server: one per server.
        pairs = [constant_pair(cal, f"w{i}", 12.0, 0.0) for i in range(3)]
        evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.9))
        pool = ResourcePool(homogeneous_servers(3, cpus=16))
        assignment = algorithm(evaluator, pool)
        assert len(set(assignment)) == 3

    def test_infeasible_raises(self, cal, algorithm):
        pairs = [constant_pair(cal, f"w{i}", 12.0, 0.0) for i in range(3)]
        evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.9))
        pool = ResourcePool(homogeneous_servers(2, cpus=16))
        with pytest.raises(InfeasiblePlacementError):
            algorithm(evaluator, pool)

    def test_oversized_workload_raises(self, cal, algorithm):
        pairs = [constant_pair(cal, "big", 20.0, 0.0)]
        evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.9))
        pool = ResourcePool(homogeneous_servers(2, cpus=16))
        with pytest.raises(InfeasiblePlacementError):
            algorithm(evaluator, pool)


class TestDifferences:
    def test_best_fit_packs_at_least_as_tight(self, cal):
        rng = np.random.default_rng(4)
        n = cal.n_observations
        pairs = [
            CoSAllocationPair(
                f"w{i}",
                AllocationTrace(f"w{i}.c1", rng.uniform(0, 2, n), cal),
                AllocationTrace(f"w{i}.c2", rng.uniform(0, 4, n), cal),
            )
            for i in range(8)
        ]
        evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.9))
        pool = ResourcePool(homogeneous_servers(8, cpus=16))
        ff = len(set(first_fit_decreasing(evaluator, pool)))
        bf = len(set(best_fit_decreasing(evaluator, pool)))
        # Both must produce feasible counts; best-fit usually <= first-fit
        # but both are bounded by the pool size.
        assert 1 <= bf <= 8
        assert 1 <= ff <= 8
