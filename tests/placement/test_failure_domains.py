"""Tests for domain-scoped failure sweeps, degraded servers and spares.

Covers the correlated-failure model: whole-rack/zone loss, k-concurrent
faults drawn per domain, degraded servers surviving at scaled capacity,
the seeded sampling guard on combinatorial sweeps, the spare-sizing
curve, and checkpoint resume of domain sweeps.
"""

import pytest

from repro.core.cos import PoolCommitments
from repro.core.framework import ROpus
from repro.core.qos import QoSPolicy, case_study_qos
from repro.core.translation import QoSTranslator
from repro.engine import ExecutionEngine
from repro.engine.checkpoint import Checkpointer
from repro.exceptions import PlacementError
from repro.placement.consolidation import Consolidator
from repro.placement.failure import (
    FailurePlanner,
    FailureSweepPolicy,
    FaultScenario,
    parse_scope,
)
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.calendar import TraceCalendar
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

SEARCH = GeneticSearchConfig(
    seed=0, max_generations=8, stall_generations=3, population_size=8
)


@pytest.fixture(scope="module")
def setup():
    calendar = TraceCalendar(weeks=1, slot_minutes=60)
    generator = WorkloadGenerator(seed=21)
    specs = [
        WorkloadSpec(name=f"w{i}", peak_cpus=1.0 + 0.3 * i, noise_sigma=0.2)
        for i in range(6)
    ]
    demands = generator.generate_many(specs, calendar)
    translator = QoSTranslator(PoolCommitments.of(theta=0.9))
    policy = QoSPolicy(
        normal=case_study_qos(m_degr_percent=0),
        failure=case_study_qos(m_degr_percent=3, t_degr_minutes=None),
    )
    pool = ResourcePool(homogeneous_servers(6, cpus=6, racks=3, zones=2))
    pairs = [translator.translate(d, policy.normal).pair for d in demands]
    normal = Consolidator(
        pool, translator.commitments.cos2, config=SEARCH
    ).consolidate(pairs, "first_fit")
    planner = FailurePlanner(translator, config=SEARCH)
    return demands, policy, pool, normal, planner


class TestParseScope:
    def test_grammar(self):
        assert parse_scope("server") == ("server", 1)
        assert parse_scope("rack") == ("rack", None)
        assert parse_scope("zone") == ("zone", None)
        assert parse_scope("rack:2") == ("rack", 2)
        assert parse_scope("server:3") == ("server", 3)

    @pytest.mark.parametrize("bad", ["pod", "rack:0", "rack:x", "", "rack:-1"])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(PlacementError):
            parse_scope(bad)


class TestFaultScenario:
    def test_requires_some_fault(self):
        with pytest.raises(PlacementError):
            FaultScenario()

    def test_rejects_bad_kind(self):
        with pytest.raises(PlacementError):
            FaultScenario(failed_servers=("a",), kind="pod")

    def test_rejects_bad_degraded_factor(self):
        with pytest.raises(PlacementError):
            FaultScenario(degraded=(("a", 0.0),))
        with pytest.raises(PlacementError):
            FaultScenario(degraded=(("a", 1.0),))

    def test_labels(self):
        assert FaultScenario(failed_servers=("a", "b")).label == "a+b"
        assert (
            FaultScenario(
                failed_servers=("a", "b"), kind="rack", domain="rack-00"
            ).label
            == "rack:rack-00:a+b"
        )
        assert (
            FaultScenario(degraded=(("a", 0.5),)).label == "degraded:a@0.5"
        )


class TestDeprecatedFailedServer:
    def test_joined_string_still_available(self, setup):
        demands, policy, pool, normal, planner = setup
        report = planner.plan(
            demands, policy, pool, normal, algorithm="first_fit"
        )
        case = report.cases[0]
        with pytest.deprecated_call():
            joined = case.failed_server
        assert joined == "+".join(case.failed_servers) == case.label


class TestDomainSweeps:
    def test_rack_loss_cases(self, setup):
        demands, policy, pool, normal, planner = setup
        report = planner.plan_domains(
            demands, policy, pool, normal, scope="rack", algorithm="first_fit"
        )
        used_racks = {
            pool[server].rack for server in normal.assignment
        }
        assert len(report.cases) == len(used_racks)
        for case in report.cases:
            assert case.kind == "rack"
            assert case.domain in used_racks
            racks = {pool[s].rack for s in case.failed_servers}
            assert racks == {case.domain}
            assert case.label.startswith(f"rack:{case.domain}:")
            if case.result is not None:
                for failed in case.failed_servers:
                    assert failed not in case.result.assignment

    def test_zone_loss_cases(self, setup):
        demands, policy, pool, normal, planner = setup
        report = planner.plan_domains(
            demands, policy, pool, normal, scope="zone", algorithm="first_fit"
        )
        assert all(case.kind == "zone" for case in report.cases)
        assert 1 <= len(report.cases) <= 2

    def test_rejects_unknown_scope(self, setup):
        demands, policy, pool, normal, planner = setup
        with pytest.raises(PlacementError):
            planner.plan_domains(demands, policy, pool, normal, scope="pod")

    def test_plan_scope_dispatch(self, setup):
        demands, policy, pool, normal, planner = setup
        single = planner.plan(
            demands, policy, pool, normal, algorithm="first_fit"
        )
        via_scope = planner.plan_scope(
            demands, policy, pool, normal, scope="server",
            algorithm="first_fit",
        )
        assert {c.label for c in via_scope.cases} == {
            c.label for c in single.cases
        }
        racks = planner.plan_domains(
            demands, policy, pool, normal, scope="rack", algorithm="first_fit"
        )
        via_scope = planner.plan_scope(
            demands, policy, pool, normal, scope="rack", algorithm="first_fit"
        )
        assert {c.label for c in via_scope.cases} == {
            c.label for c in racks.cases
        }

    def test_correlated_within_domain(self, setup):
        demands, policy, pool, normal, planner = setup
        report = planner.plan_multi(
            demands, policy, pool, normal,
            concurrent_failures=2, within_domain="rack",
            algorithm="first_fit",
        )
        for case in report.cases:
            racks = {pool[s].rack for s in case.failed_servers}
            assert len(racks) == 1

    def test_within_domain_without_wide_domains_is_trivial(self, setup):
        demands, policy, pool, normal, planner = setup
        # No rack holds three used servers (two per rack), so the
        # correlated 3-failure sweep has no cases — trivially absorbed.
        report = planner.plan_multi(
            demands, policy, pool, normal,
            concurrent_failures=3, within_domain="rack",
            algorithm="first_fit",
        )
        assert report.cases == ()
        assert report.all_supported


class TestDegradedServers:
    def test_degraded_servers_stay_in_pool(self, setup):
        demands, policy, pool, normal, planner = setup
        report = planner.plan_degraded(
            demands, policy, pool, normal, factor=0.5, algorithm="first_fit"
        )
        assert len(report.cases) == normal.servers_used
        for case in report.cases:
            assert case.failed_servers == ()
            assert len(case.degraded) == 1
            (name, factor), = case.degraded
            assert factor == 0.5
            assert case.label == f"degraded:{name}@0.5"
            if case.result is not None:
                # Unlike a dead server, a degraded one may still host.
                assert name in pool.names()

    def test_degraded_rack_scope(self, setup):
        demands, policy, pool, normal, planner = setup
        report = planner.plan_degraded(
            demands, policy, pool, normal,
            factor=0.5, scope="rack", algorithm="first_fit",
        )
        for case in report.cases:
            assert case.kind == "rack"
            racks = {
                pool[name].rack for name, _ in case.degraded
            }
            assert racks == {case.domain}

    def test_rejects_bad_factor(self, setup):
        demands, policy, pool, normal, planner = setup
        for factor in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(PlacementError):
                planner.plan_degraded(
                    demands, policy, pool, normal, factor=factor
                )

    def test_gentler_degradation_no_worse(self, setup):
        """Keeping more surviving capacity never loses feasibility."""
        demands, policy, pool, normal, planner = setup
        harsh = planner.plan_degraded(
            demands, policy, pool, normal, factor=0.3, algorithm="first_fit"
        )
        gentle = planner.plan_degraded(
            demands, policy, pool, normal, factor=0.9, algorithm="first_fit"
        )
        assert len(gentle.infeasible_cases) <= len(harsh.infeasible_cases)


class TestSamplingGuard:
    def test_sampled_sweep_is_capped_and_counted(self, setup):
        demands, policy, pool, normal, planner = setup
        engine = ExecutionEngine.serial()
        sampling_planner = FailurePlanner(
            planner.translator, config=SEARCH, engine=engine
        )
        report = sampling_planner.plan_multi(
            demands, policy, pool, normal,
            concurrent_failures=2, max_cases=5, sample_seed=7,
            algorithm="first_fit",
        )
        assert len(report.cases) == 5
        counters = engine.instrumentation.counters()
        assert counters.get("failure.sweep_sampled", 0) >= 1
        assert counters.get("failure.cases_sampled", 0) == 5

    def test_exhaustive_sweep_counted(self, setup):
        demands, policy, pool, normal, planner = setup
        engine = ExecutionEngine.serial()
        exhaustive_planner = FailurePlanner(
            planner.translator, config=SEARCH, engine=engine
        )
        exhaustive_planner.plan_multi(
            demands, policy, pool, normal,
            concurrent_failures=2, algorithm="first_fit",
        )
        counters = engine.instrumentation.counters()
        assert counters.get("failure.sweep_exhaustive", 0) >= 1
        assert counters.get("failure.sweep_sampled", 0) == 0

    def test_sampling_is_deterministic(self, setup):
        demands, policy, pool, normal, planner = setup
        labels = []
        for _ in range(2):
            report = planner.plan_multi(
                demands, policy, pool, normal,
                concurrent_failures=2, max_cases=4, sample_seed=11,
                algorithm="first_fit",
            )
            labels.append(tuple(case.label for case in report.cases))
        assert labels[0] == labels[1]

    def test_different_seed_can_differ(self, setup):
        demands, policy, pool, normal, planner = setup
        picks = set()
        for seed in range(4):
            report = planner.plan_multi(
                demands, policy, pool, normal,
                concurrent_failures=2, max_cases=3, sample_seed=seed,
                algorithm="first_fit",
            )
            picks.add(tuple(case.label for case in report.cases))
        assert len(picks) > 1


class TestSpareSizingCurve:
    def test_curve_over_topology_scopes(self, setup):
        demands, policy, pool, normal, planner = setup
        curve = planner.spare_sizing_curve(
            demands, policy, pool, normal,
            max_spares=2, algorithm="first_fit",
        )
        scopes = [point.scope for point in curve.points]
        assert scopes == ["server", "rack", "zone"]
        assert curve.monotone_in_scope()
        payload = curve.to_payload()
        assert payload["max_spares"] == 2
        assert len(payload["points"]) == 3

    def test_tight_pool_needs_spares(self):
        calendar = TraceCalendar(weeks=1, slot_minutes=60)
        generator = WorkloadGenerator(seed=5)
        specs = [
            WorkloadSpec(name=f"big{i}", peak_cpus=5.0, noise_sigma=0.05)
            for i in range(4)
        ]
        demands = generator.generate_many(specs, calendar)
        translator = QoSTranslator(PoolCommitments.of(theta=0.9))
        policy = QoSPolicy(normal=case_study_qos(m_degr_percent=0))
        pool = ResourcePool(homogeneous_servers(4, cpus=10, racks=2))
        pairs = [
            translator.translate(d, policy.normal).pair for d in demands
        ]
        normal = Consolidator(
            pool, translator.commitments.cos2, config=SEARCH
        ).consolidate(pairs, "first_fit")
        planner = FailurePlanner(translator, config=SEARCH)
        curve = planner.spare_sizing_curve(
            demands, policy, pool, normal,
            scopes=["server", "rack"], max_spares=3, algorithm="first_fit",
        )
        by_scope = {point.scope: point for point in curve.points}
        assert by_scope["server"].infeasible_without_spares > 0
        assert by_scope["server"].spares_needed is not None
        assert by_scope["server"].spares_needed >= 1
        assert curve.monotone_in_scope()


class TestDomainSweepResume:
    """Satellite: checkpoint resume with rack-loss cases in flight."""

    @pytest.fixture()
    def framework_parts(self):
        calendar = TraceCalendar(weeks=1, slot_minutes=60)
        generator = WorkloadGenerator(seed=13)
        specs = [
            WorkloadSpec(name=f"app{i}", peak_cpus=1.0 + 0.5 * i)
            for i in range(5)
        ]
        demands = generator.generate_many(specs, calendar)
        policy = QoSPolicy(normal=case_study_qos(m_degr_percent=3))
        return demands, policy

    def _framework(self, checkpointer=None):
        return ROpus(
            PoolCommitments.of(theta=0.95),
            ResourcePool(homogeneous_servers(6, cpus=16, racks=3)),
            search_config=SEARCH,
            engine=ExecutionEngine.serial(),
            checkpointer=checkpointer,
            failure_policy=FailureSweepPolicy(scopes=("rack",)),
        )

    def test_kill_mid_rack_sweep_resumes_to_identical_plan(
        self, framework_parts, tmp_path
    ):
        demands, policy = framework_parts
        baseline = self._framework().plan(demands, policy)
        assert baseline.domain_reports is not None
        assert len(baseline.domain_reports["rack"].cases) > 1

        class _Killed(Exception):
            """Stands in for the SIGKILL that ends the first run."""

        # Die before persisting the second rack-loss case: the domain
        # sweep must already have journaled the first one by then.
        class _KilledMidDomainSweep(Checkpointer):
            def save(self, key, payload):
                if key.startswith("failure/scope:rack/") and any(
                    stored.startswith("failure/scope:rack/")
                    for stored in self.keys()
                ):
                    raise _Killed
                return super().save(key, payload)

        directory = tmp_path / "ckpt"
        with pytest.raises(_Killed):
            self._framework(
                checkpointer=_KilledMidDomainSweep(directory)
            ).plan(demands, policy)

        survivor_store = Checkpointer(directory)
        persisted = [
            key
            for key in survivor_store.keys()
            if key.startswith("failure/scope:rack/")
        ]
        assert len(persisted) == 1

        resumed = self._framework(checkpointer=survivor_store).plan(
            demands, policy
        )
        assert resumed.plan_hash() == baseline.plan_hash()
        resumes = resumed.resilience_summary().get("failure.case_resumes", 0)
        assert resumes >= 1

    def test_domain_sweeps_contribute_to_plan_hash(
        self, framework_parts
    ):
        demands, policy = framework_parts
        with_domains = self._framework().plan(demands, policy)
        without = ROpus(
            PoolCommitments.of(theta=0.95),
            ResourcePool(homogeneous_servers(6, cpus=16, racks=3)),
            search_config=SEARCH,
            engine=ExecutionEngine.serial(),
        ).plan(demands, policy)
        assert with_domains.plan_hash() != without.plan_hash()
        summary = with_domains.summary()
        assert "rack" in summary["failure_domains"]
