"""Tests for the scalar bin-packing baseline."""

import pytest

from repro.exceptions import InfeasiblePlacementError, PlacementError
from repro.placement.binpack import (
    lower_bound,
    pack_branch_and_bound,
    pack_first_fit_decreasing,
)


class TestLowerBound:
    def test_volume_bound(self):
        assert lower_bound([4, 4, 4], 10) == 2
        assert lower_bound([5, 5], 10) == 1

    def test_empty(self):
        assert lower_bound([], 10) == 0

    def test_zero_items(self):
        assert lower_bound([0, 0], 10) == 0


class TestFirstFitDecreasing:
    def test_simple_packing(self):
        result = pack_first_fit_decreasing([5, 5, 5, 5], 10)
        assert result.n_bins == 2

    def test_all_items_assigned_exactly_once(self):
        sizes = [3, 7, 2, 5, 4, 6, 1]
        result = pack_first_fit_decreasing(sizes, 10)
        assigned = sorted(i for group in result.bins for i in group)
        assert assigned == list(range(len(sizes)))

    def test_capacity_respected(self):
        sizes = [3.3, 7.7, 2.2, 5.5, 4.4]
        result = pack_first_fit_decreasing(sizes, 10)
        for group in result.bins:
            assert sum(sizes[i] for i in group) <= 10 + 1e-9

    def test_oversized_item_rejected(self):
        with pytest.raises(InfeasiblePlacementError):
            pack_first_fit_decreasing([11], 10)

    def test_negative_size_rejected(self):
        with pytest.raises(PlacementError):
            pack_first_fit_decreasing([-1], 10)

    def test_bad_capacity_rejected(self):
        with pytest.raises(PlacementError):
            pack_first_fit_decreasing([1], 0)

    def test_empty(self):
        assert pack_first_fit_decreasing([], 10).n_bins == 0


class TestBranchAndBound:
    def test_finds_optimum_ffd_misses(self):
        """Classic instance where FFD uses 3 bins but 2 suffice."""
        sizes = [4, 4, 4, 3, 3, 3, 3]  # capacity 12: (4,4,4) + (3,3,3,3)
        ffd = pack_first_fit_decreasing(sizes, 12)
        exact = pack_branch_and_bound(sizes, 12)
        assert exact.n_bins == 2
        assert exact.n_bins <= ffd.n_bins
        assert exact.optimal

    def test_matches_lower_bound_when_tight(self):
        sizes = [5, 5, 5, 5, 5, 5]
        result = pack_branch_and_bound(sizes, 10)
        assert result.n_bins == 3
        assert result.optimal

    def test_all_items_assigned(self):
        sizes = [2, 3, 4, 5, 6, 7, 8]
        result = pack_branch_and_bound(sizes, 10)
        assigned = sorted(i for group in result.bins for i in group)
        assert assigned == list(range(len(sizes)))
        for group in result.bins:
            assert sum(sizes[i] for i in group) <= 10 + 1e-9

    def test_node_budget_returns_incumbent(self):
        sizes = [3, 5, 7, 2, 6, 4, 8, 1, 9, 2, 5, 3] * 3
        result = pack_branch_and_bound(sizes, 10, max_nodes=10)
        assigned = sorted(i for group in result.bins for i in group)
        assert assigned == list(range(len(sizes)))

    def test_never_worse_than_ffd(self):
        import random

        rng = random.Random(0)
        for _ in range(10):
            sizes = [rng.uniform(1, 9) for _ in range(rng.randint(1, 12))]
            ffd = pack_first_fit_decreasing(sizes, 10)
            exact = pack_branch_and_bound(sizes, 10)
            assert exact.n_bins <= ffd.n_bins

    def test_empty(self):
        result = pack_branch_and_bound([], 10)
        assert result.n_bins == 0
        assert result.optimal
