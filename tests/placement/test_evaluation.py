"""Tests for the shared placement evaluator."""

import numpy as np
import pytest

from repro.core.cos import CoSCommitment
from repro.exceptions import PlacementError
from repro.placement.evaluation import PlacementEvaluator
from repro.resources.server import ServerSpec
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.calendar import TraceCalendar


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=60)


def constant_pair(cal, name, cos1_level, cos2_level):
    n = cal.n_observations
    return CoSAllocationPair(
        name,
        AllocationTrace(f"{name}.cos1", np.full(n, cos1_level), cal),
        AllocationTrace(f"{name}.cos2", np.full(n, cos2_level), cal),
    )


@pytest.fixture
def evaluator(cal):
    pairs = [
        constant_pair(cal, "a", 1.0, 2.0),
        constant_pair(cal, "b", 0.5, 1.0),
        constant_pair(cal, "c", 2.0, 4.0),
    ]
    return PlacementEvaluator(pairs, CoSCommitment(theta=0.9), tolerance=0.01)


class TestBasics:
    def test_n_workloads_and_names(self, evaluator):
        assert evaluator.n_workloads == 3
        assert evaluator.names == ["a", "b", "c"]
        assert evaluator.index_of("b") == 1

    def test_unknown_name(self, evaluator):
        with pytest.raises(PlacementError):
            evaluator.index_of("nope")

    def test_peak_allocations(self, evaluator):
        peaks = evaluator.peak_allocations()
        assert peaks.tolist() == [3.0, 1.5, 6.0]

    def test_duplicate_names_rejected(self, cal):
        pairs = [constant_pair(cal, "a", 1, 1), constant_pair(cal, "a", 1, 1)]
        with pytest.raises(PlacementError):
            PlacementEvaluator(pairs, CoSCommitment(theta=0.9))

    def test_empty_rejected(self):
        with pytest.raises(PlacementError):
            PlacementEvaluator([], CoSCommitment(theta=0.9))


class TestEvaluateGroup:
    def test_empty_group_fits_trivially(self, evaluator):
        evaluation = evaluator.evaluate_group([], ServerSpec("s", 16))
        assert evaluation.fits
        assert evaluation.required == 0.0

    def test_feasible_group(self, evaluator):
        evaluation = evaluator.evaluate_group([0, 1], ServerSpec("s", 16))
        assert evaluation.fits
        # Constant demand 1.5 CoS1 + 3.0 CoS2 at theta 0.9 needs ~4.2.
        assert 4.0 <= evaluation.required <= 4.6
        assert 0 < evaluation.utilization <= 1

    def test_infeasible_group(self, cal):
        pairs = [constant_pair(cal, "big", 20.0, 0.0)]
        evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.9))
        evaluation = evaluator.evaluate_group([0], ServerSpec("s", 16))
        assert not evaluation.fits
        assert evaluation.required == float("inf")

    def test_caching_returns_same_object(self, evaluator):
        server = ServerSpec("s", 16)
        first = evaluator.evaluate_group([0, 2], server)
        second = evaluator.evaluate_group([2, 0], server)  # order-insensitive
        assert first is second

    def test_cache_distinguishes_capacity(self, evaluator):
        small = evaluator.evaluate_group([0], ServerSpec("s", 8))
        large = evaluator.evaluate_group([0], ServerSpec("s", 16))
        assert small.utilization > large.utilization

    def test_out_of_range_indices(self, evaluator):
        with pytest.raises(PlacementError):
            evaluator.evaluate_group([99], ServerSpec("s", 16))


class TestSearchResult:
    def test_full_report_available(self, evaluator):
        result = evaluator.search_result([0, 1, 2], ServerSpec("s", 16))
        assert result.fits
        assert result.report is not None
        assert result.report.theta_measured >= 0.9
