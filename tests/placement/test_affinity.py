"""Tests for anti-affinity constraints over failure domains.

The acceptance scenario: a pool where one rack holds both a workload's
CoS1 capacity and its failover target must be flagged by
``find_violations`` and repaired by the constraint-aware consolidation.
"""

import pytest

from repro.core.cos import PoolCommitments
from repro.core.qos import case_study_qos
from repro.core.translation import QoSTranslator
from repro.engine import ExecutionEngine
from repro.exceptions import PlacementError
from repro.placement.affinity import (
    AffinityViolation,
    ConstraintIndex,
    PlacementConstraints,
    domain_of,
    find_violations,
)
from repro.placement.consolidation import Consolidator
from repro.placement.genetic import GeneticSearchConfig
from repro.placement.objective import affinity_penalty
from repro.resources.pool import ResourcePool
from repro.resources.server import ServerSpec, homogeneous_servers
from repro.traces.calendar import TraceCalendar
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

SEARCH = GeneticSearchConfig(
    seed=0, max_generations=10, stall_generations=3, population_size=10
)


def _pairs(names_and_peaks, seed=21):
    calendar = TraceCalendar(weeks=1, slot_minutes=60)
    generator = WorkloadGenerator(seed=seed)
    specs = [
        WorkloadSpec(name=name, peak_cpus=peak, noise_sigma=0.1)
        for name, peak in names_and_peaks
    ]
    demands = generator.generate_many(specs, calendar)
    translator = QoSTranslator(PoolCommitments.of(theta=0.9))
    qos = case_study_qos(m_degr_percent=0)
    pairs = [translator.translate(d, qos).pair for d in demands]
    return pairs, translator


class TestPlacementConstraints:
    def test_rejects_small_groups(self):
        with pytest.raises(PlacementError):
            PlacementConstraints(anti_affinity=(("solo",),))

    def test_rejects_duplicate_members(self):
        with pytest.raises(PlacementError):
            PlacementConstraints(anti_affinity=(("a", "a"),))

    def test_rejects_bad_domain(self):
        with pytest.raises(PlacementError):
            PlacementConstraints(anti_affinity=(("a", "b"),), domain="pod")

    def test_rejects_bad_weight(self):
        with pytest.raises(PlacementError):
            PlacementConstraints(
                anti_affinity=(("a", "b"),), penalty_weight=0.0
            )

    def test_enabled(self):
        assert not PlacementConstraints().enabled
        assert PlacementConstraints(anti_affinity=(("a", "b"),)).enabled


class TestDomainOf:
    def test_labels_and_fallback(self):
        labeled = ServerSpec(name="s0", cpus=8, rack="r0", zone="z0")
        bare = ServerSpec(name="s1", cpus=8)
        assert domain_of(labeled, "rack") == "r0"
        assert domain_of(labeled, "zone") == "z0"
        assert domain_of(labeled, "server") == "s0"
        # Unlabeled servers are their own singleton domain.
        assert domain_of(bare, "rack") == "s1"

    def test_rejects_bad_kind(self):
        with pytest.raises(PlacementError):
            domain_of(ServerSpec(name="s0", cpus=8), "pod")


class TestFindViolations:
    def test_flags_shared_rack(self):
        pool = ResourcePool(homogeneous_servers(4, cpus=16, racks=2))
        constraints = PlacementConstraints(
            anti_affinity=(("primary", "failover"),)
        )
        # Both on rack-00, though on different servers.
        assignment = {
            "server-00": ("primary",),
            "server-01": ("failover",),
        }
        violations = find_violations(assignment, constraints, pool)
        assert violations == (
            AffinityViolation(
                group=("primary", "failover"),
                domain="rack-00",
                workloads=("primary", "failover"),
            ),
        )

    def test_clean_when_racks_differ(self):
        pool = ResourcePool(homogeneous_servers(4, cpus=16, racks=2))
        constraints = PlacementConstraints(
            anti_affinity=(("primary", "failover"),)
        )
        assignment = {
            "server-00": ("primary",),
            "server-02": ("failover",),
        }
        assert find_violations(assignment, constraints, pool) == ()


class TestAffinityPenalty:
    def test_price_is_weight_times_pairs(self):
        assert affinity_penalty(1, 2.0) == 2.0
        assert affinity_penalty(3, 1.5) == 4.5

    def test_rejects_bad_inputs(self):
        with pytest.raises(PlacementError):
            affinity_penalty(-1, 2.0)
        with pytest.raises(PlacementError):
            affinity_penalty(1, 0.0)


class TestConstraintIndex:
    def test_pair_count_and_penalty(self):
        servers = homogeneous_servers(4, cpus=16, racks=2)
        constraints = PlacementConstraints(
            anti_affinity=(("a", "b", "c"),), penalty_weight=2.0
        )
        index = ConstraintIndex(constraints, ["a", "b", "c"], servers)
        # a and b on rack-00 (servers 0, 1), c on rack-01: one pair.
        assert index.pair_count([0, 1, 2]) == 1
        assert index.penalty([0, 1, 2]) == 2.0
        # all three on one rack: three pairs.
        assert index.pair_count([0, 0, 1]) == 3
        # spread over both racks and a singleton: clean.
        assert index.pair_count([0, 2, 3]) == 1  # c+b share rack-01
        assert index.penalty([0, 2, 3]) == 2.0

    def test_partial_groups_still_bind(self):
        servers = homogeneous_servers(2, cpus=16)
        constraints = PlacementConstraints(
            anti_affinity=(("a", "b", "ghost"), ("ghost", "phantom"))
        )
        index = ConstraintIndex(constraints, ["a", "b"], servers)
        # ("a", "b") survives as a partial group; the all-unknown
        # group drops out entirely.
        assert index.groups == ((0, 1),)


class TestConstraintAwareConsolidation:
    def test_rack_sharing_flagged_and_repaired(self):
        """Acceptance: CoS1 capacity and failover target co-racked."""
        pairs, translator = _pairs([("primary", 1.0), ("failover", 1.0)])
        pool = ResourcePool(homogeneous_servers(4, cpus=16, racks=2))
        constraints = PlacementConstraints(
            anti_affinity=(("primary", "failover"),)
        )
        # Unconstrained first-fit packs both small workloads onto one
        # server — one rack holds the workload and its failover target.
        baseline = Consolidator(
            pool, translator.commitments.cos2, config=SEARCH
        ).consolidate(pairs, "first_fit")
        assert find_violations(baseline.assignment, constraints, pool)

        engine = ExecutionEngine.serial()
        repaired = Consolidator(
            pool,
            translator.commitments.cos2,
            config=SEARCH,
            engine=engine,
            constraints=constraints,
        ).consolidate(pairs, "first_fit")
        assert find_violations(repaired.assignment, constraints, pool) == ()
        counters = engine.instrumentation.counters()
        assert counters.get("placement.affinity_violations", 0) >= 1
        assert counters.get("placement.affinity_repairs", 0) >= 1
        assert counters.get("placement.affinity_unrepaired", 0) == 0

    def test_genetic_search_ends_clean(self):
        pairs, translator = _pairs(
            [("primary", 1.0), ("failover", 1.0), ("other", 2.0)]
        )
        pool = ResourcePool(homogeneous_servers(4, cpus=16, racks=2))
        constraints = PlacementConstraints(
            anti_affinity=(("primary", "failover"),)
        )
        result = Consolidator(
            pool,
            translator.commitments.cos2,
            config=SEARCH,
            constraints=constraints,
        ).consolidate(pairs, "genetic")
        assert find_violations(result.assignment, constraints, pool) == ()

    def test_disabled_constraints_change_nothing(self):
        pairs, translator = _pairs([("a", 1.0), ("b", 2.0), ("c", 1.5)])
        pool = ResourcePool(homogeneous_servers(4, cpus=16, racks=2))
        baseline = Consolidator(
            pool, translator.commitments.cos2, config=SEARCH
        ).consolidate(pairs, "genetic")
        with_empty = Consolidator(
            pool,
            translator.commitments.cos2,
            config=SEARCH,
            constraints=PlacementConstraints(),
        ).consolidate(pairs, "genetic")
        assert with_empty.assignment == baseline.assignment

    def test_unrepairable_violation_reported_not_fatal(self):
        """A one-rack pool cannot separate the pair; it is priced and
        reported, never declared infeasible."""
        pairs, translator = _pairs([("primary", 1.0), ("failover", 1.0)])
        pool = ResourcePool(homogeneous_servers(2, cpus=16, racks=1))
        constraints = PlacementConstraints(
            anti_affinity=(("primary", "failover"),)
        )
        engine = ExecutionEngine.serial()
        result = Consolidator(
            pool,
            translator.commitments.cos2,
            config=SEARCH,
            engine=engine,
            constraints=constraints,
        ).consolidate(pairs, "first_fit")
        assert result.servers_used >= 1
        counters = engine.instrumentation.counters()
        assert counters.get("placement.affinity_unrepaired", 0) >= 1
