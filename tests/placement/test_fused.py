"""Property tests for the generation-scale fused capacity kernel.

The fused kernel's contract is the strongest one in the repo: its
``fits``/``required_capacity`` answers are **bit-identical** to
:func:`required_capacity_batch` in bisect mode over the same subsets —
probes included — because every float32 decision that influenced a
bracket is retroactively validated by one float64 endpoint check, and
rows that fail validation fall back to the batch kernel itself. The
hypothesis suites here pin that equivalence down, the compression tests
pin the run-length translation's decision-equivalence, and the
adversarial test corrupts the float32 late scan to prove the fallback
ladder keeps answers exact even when every fast-path decision is wrong.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cos import CoSCommitment
from repro.exceptions import SimulationError
from repro.placement import fused as fused_module
from repro.placement.fused import (
    GroupTranslation,
    TranslationCache,
    _compress_row,
    _late_rows_numpy,
    fused_required_capacity,
    numba_requested,
    resolve_late_kernel,
    translate_rows,
)
from repro.placement.kernels import (
    BatchSimulator,
    required_capacity_batch,
)
from repro.traces.calendar import TraceCalendar

# Same cheap calendar as the batch-kernel suites: one week at 6-hour
# resolution keeps every hypothesis example to 28 observations.
CAL = TraceCalendar(weeks=1, slot_minutes=360)
N = CAL.n_observations
LIMIT = 16.0
TOLERANCE = 0.01

levels = st.floats(min_value=0.0, max_value=4.0, allow_nan=False, width=32)
commitments = st.builds(
    CoSCommitment,
    theta=st.sampled_from([0.5, 0.9, 0.95, 1.0 - 1e-9, 1.0]),
    deadline_minutes=st.sampled_from([0.0, 360.0, 720.0]),
)


@st.composite
def workload_matrices(draw, min_apps=2, max_apps=5):
    n_apps = draw(st.integers(min_value=min_apps, max_value=max_apps))
    cos1 = np.asarray(
        [
            draw(st.lists(levels, min_size=N, max_size=N))
            for _ in range(n_apps)
        ],
        float,
    )
    cos2 = np.asarray(
        [
            draw(st.lists(levels, min_size=N, max_size=N))
            for _ in range(n_apps)
        ],
        float,
    )
    return cos1, cos2


@st.composite
def subset_lists(draw, n_apps, min_subsets=1, max_subsets=4):
    count = draw(st.integers(min_value=min_subsets, max_value=max_subsets))
    subsets = []
    for _ in range(count):
        members = draw(
            st.sets(
                st.integers(min_value=0, max_value=n_apps - 1),
                min_size=1,
                max_size=n_apps,
            )
        )
        subsets.append(tuple(sorted(members)))
    return subsets


def assert_plans_identical(reference, candidate):
    assert len(reference.results) == len(candidate.results)
    for ref, fus in zip(reference.results, candidate.results):
        assert ref.fits == fus.fits
        assert ref.required_capacity == fus.required_capacity


class TestBitIdentityWithBatch:
    @settings(max_examples=50, deadline=None)
    @given(workload_matrices(), commitments, st.data())
    def test_matches_batch_bisect(self, matrices, commitment, data):
        cos1, cos2 = matrices
        subsets = data.draw(subset_lists(cos1.shape[0]))
        limits = np.full(len(subsets), LIMIT)
        reference = required_capacity_batch(
            BatchSimulator.from_subsets(cos1, cos2, subsets, CAL),
            limits,
            commitment,
            tolerance=TOLERANCE,
        )
        result = fused_required_capacity(
            cos1, cos2, subsets, CAL, limits, commitment, tolerance=TOLERANCE
        )
        assert_plans_identical(reference, result)
        stats = result.stats
        assert stats.rows == len(subsets)
        assert stats.fused_rows + stats.f32_retries <= stats.rows

    @settings(max_examples=25, deadline=None)
    @given(workload_matrices(), commitments, st.data())
    def test_matches_batch_with_probes(self, matrices, commitment, data):
        cos1, cos2 = matrices
        subsets = data.draw(subset_lists(cos1.shape[0]))
        limits = np.full(len(subsets), LIMIT)
        probes = np.asarray(
            [
                data.draw(
                    st.one_of(
                        st.just(float("nan")),
                        st.floats(
                            min_value=0.5,
                            max_value=LIMIT,
                            allow_nan=False,
                            width=32,
                        ),
                    )
                )
                for _ in subsets
            ]
        )
        reference = required_capacity_batch(
            BatchSimulator.from_subsets(cos1, cos2, subsets, CAL),
            limits,
            commitment,
            tolerance=TOLERANCE,
            probes=probes,
        )
        result = fused_required_capacity(
            cos1,
            cos2,
            subsets,
            CAL,
            limits,
            commitment,
            tolerance=TOLERANCE,
            probes=probes,
        )
        assert_plans_identical(reference, result)

    @settings(max_examples=25, deadline=None)
    @given(workload_matrices(), commitments, st.data())
    def test_cached_translations_do_not_change_answers(
        self, matrices, commitment, data
    ):
        cos1, cos2 = matrices
        subsets = data.draw(subset_lists(cos1.shape[0]))
        limits = np.full(len(subsets), LIMIT)
        cache = TranslationCache()
        cold = fused_required_capacity(
            cos1,
            cos2,
            subsets,
            CAL,
            limits,
            commitment,
            tolerance=TOLERANCE,
            cache=cache,
            fingerprint="fp",
        )
        warm = fused_required_capacity(
            cos1,
            cos2,
            subsets,
            CAL,
            limits,
            commitment,
            tolerance=TOLERANCE,
            cache=cache,
            fingerprint="fp",
        )
        assert_plans_identical(cold, warm)
        # Every subset that fit was fully translated and cached by the
        # cold run (peak-screened and theta-killed rows never are), so
        # the warm run must hit on each distinct one of them.
        fitting = {
            subset
            for subset, result in zip(subsets, cold.results)
            if result.fits
        }
        assert cache.hits >= len(fitting)

    def test_peak_screen_rows_short_circuit(self):
        cos1 = np.full((1, N), 30.0)
        cos2 = np.zeros((1, N))
        result = fused_required_capacity(
            cos1,
            cos2,
            [(0,)],
            CAL,
            np.array([LIMIT]),
            CoSCommitment(theta=0.9),
        )
        assert not result.results[0].fits
        assert result.results[0].required_capacity == float("inf")
        # Screened by float64 peak arithmetic: no kernel call, and the
        # row counts as neither fused nor retried.
        assert result.stats.kernel_calls == 0
        assert result.stats.fused_rows == 0
        assert result.stats.f32_retries == 0

    def test_rejects_bad_limits_and_tolerance(self):
        cos1 = np.ones((2, N))
        cos2 = np.ones((2, N))
        with pytest.raises(SimulationError):
            fused_required_capacity(
                cos1, cos2, [(0,)], CAL, np.array([1.0, 2.0]),
                CoSCommitment(theta=0.9),
            )
        with pytest.raises(SimulationError):
            fused_required_capacity(
                cos1, cos2, [(0,)], CAL, np.array([0.0]),
                CoSCommitment(theta=0.9),
            )
        with pytest.raises(SimulationError):
            fused_required_capacity(
                cos1, cos2, [(0,)], CAL, np.array([4.0]),
                CoSCommitment(theta=0.9), tolerance=0.0,
            )


class TestCompression:
    @settings(max_examples=50, deadline=None)
    @given(workload_matrices(min_apps=1, max_apps=3), commitments, st.data())
    def test_compressed_decisions_match_uncompressed(
        self, matrices, commitment, data
    ):
        """The run-length translation preserves the late decision.

        For any candidate capacity at or above the compression floor
        ``max(low0, theta_cap)`` the compressed series (evaluated in
        float64, isolating compression from float32 rounding) must
        report *late* exactly when the uncompressed total-demand
        recursion does.
        """
        cos1, cos2 = matrices
        deadline = commitment.deadline_slots(CAL)
        if not 0 <= deadline < N:
            return
        batch = BatchSimulator.from_subsets(
            cos1, cos2, [tuple(range(cos1.shape[0]))], CAL
        )
        translation = translate_rows(
            batch,
            [tuple(range(cos1.shape[0]))],
            np.array([0]),
            commitment,
            TOLERANCE,
        )[0]
        total = cos1.sum(axis=0) + cos2.sum(axis=0)
        arrivals = np.concatenate([[0.0], np.cumsum(cos2.sum(axis=0))])
        floor = max(translation.low0, translation.theta_cap)
        capacity = data.draw(
            st.floats(
                min_value=float(floor),
                max_value=float(floor) + LIMIT,
                allow_nan=False,
            )
        )

        def late_direct():
            backlog = 0.0
            for u in range(N):
                backlog = max(0.0, backlog + total[u] - capacity)
                if u < deadline:
                    continue
                window = arrivals[u + 1] - arrivals[u - deadline + 1]
                if backlog > window + 1e-9:
                    return True
            return False

        def late_compressed():
            backlog = 0.0
            for value, guard in zip(
                translation.totals.astype(float),
                translation.guards.astype(float),
            ):
                backlog = max(0.0, backlog + value - capacity)
                if backlog > guard:
                    return True
            return False

        assert late_direct() == late_compressed()

    def test_all_zero_floor_backlog_compresses_away(self):
        total = np.array([1.0, 1.0, 1.0, 1.0])
        guard = np.full(4, 5.0)
        floor = np.zeros(4)
        totals_c, guards_c = _compress_row(total, guard, floor)
        assert totals_c.size == 0 and guards_c.size == 0

    def test_drains_separate_runs_and_reset_exactly(self):
        total = np.array([3.0, 3.0, 0.0, 0.0, 4.0, 0.5])
        guard = np.full(6, 100.0)
        # Floor backlog at capacity 2: two active runs separated by a gap.
        floor = np.array([1.0, 2.0, 0.0, 0.0, 2.0, 0.5])
        totals_c, guards_c = _compress_row(total, guard, floor)
        assert totals_c.dtype == np.float32
        # run(2) + drain + run(2) — the trailing run ends the row, but
        # still carries its drain for rectangular stacking safety.
        assert totals_c.tolist() == [3.0, 3.0, -2.0, 4.0, 0.5, -0.5]
        assert np.isinf(guards_c[2]) and np.isinf(guards_c[5])
        # The drain resets the recursion to zero for any capacity >= the
        # floor the compression was computed against.
        for capacity in (2.0, 2.5, 10.0):
            backlog = 0.0
            trajectory = []
            for value in totals_c.astype(float):
                backlog = max(0.0, backlog + value - capacity)
                trajectory.append(backlog)
            assert trajectory[2] == 0.0

    def test_numpy_late_kernel_handles_empty_width(self):
        verdict = _late_rows_numpy(
            np.zeros((3, 0), dtype=np.float32),
            np.zeros((3, 0), dtype=np.float32),
            np.ones(3, dtype=np.float32),
        )
        assert verdict.tolist() == [False, False, False]


class TestVerificationFallback:
    @settings(max_examples=20, deadline=None)
    @given(workload_matrices(), commitments, st.data())
    def test_corrupted_fast_path_still_bit_identical(
        self, matrices, commitment, data
    ):
        """Even an always-wrong float32 scan cannot corrupt the plan.

        An adversarial late kernel that declares every candidate late
        forces the fast path to plan ``no fit`` for every row; the
        float64 verification catches each misjudgement and the batch
        fallback re-solves those rows, so answers stay bit-identical
        and the retries are counted.
        """
        cos1, cos2 = matrices
        subsets = data.draw(subset_lists(cos1.shape[0]))
        limits = np.full(len(subsets), LIMIT)
        reference = required_capacity_batch(
            BatchSimulator.from_subsets(cos1, cos2, subsets, CAL),
            limits,
            commitment,
            tolerance=TOLERANCE,
        )

        def always_late(totals, guards, capacities):
            return np.ones(totals.shape[0], dtype=bool)

        original = fused_module.resolve_late_kernel
        fused_module.resolve_late_kernel = lambda prefer=None: (
            always_late,
            False,
        )
        try:
            result = fused_required_capacity(
                cos1,
                cos2,
                subsets,
                CAL,
                limits,
                commitment,
                tolerance=TOLERANCE,
            )
        finally:
            fused_module.resolve_late_kernel = original
        assert_plans_identical(reference, result)
        feasible = sum(1 for ref in reference.results if ref.fits)
        peak_screened = sum(
            1
            for ref in reference.results
            if not ref.fits and ref.report is None
        )
        # Every feasible candidate row was misjudged as no-fit and must
        # have been retried; genuinely infeasible rows verify fine.
        assert result.stats.f32_retries >= min(feasible, 1)
        assert (
            result.stats.fused_rows + result.stats.f32_retries
            == len(subsets) - peak_screened
        )


class TestNumbaKnob:
    def test_fallback_without_numba(self):
        try:
            import numba  # noqa: F401

            pytest.skip("numba installed: fallback path not reachable")
        except ImportError:
            pass
        fused_module._resolve.cache_clear()
        kernel, used_numba = resolve_late_kernel(True)
        assert used_numba is False
        assert kernel is _late_rows_numpy
        fused_module._resolve.cache_clear()

    def test_env_knob(self, monkeypatch):
        monkeypatch.delenv(fused_module.NUMBA_ENV_VAR, raising=False)
        assert numba_requested() is False
        monkeypatch.setenv(fused_module.NUMBA_ENV_VAR, "1")
        assert numba_requested() is True
        monkeypatch.setenv(fused_module.NUMBA_ENV_VAR, "0")
        assert numba_requested() is False

    def test_kernel_resolution_is_memoised(self):
        fused_module._resolve.cache_clear()
        first = resolve_late_kernel(False)
        second = resolve_late_kernel(False)
        assert first == second
        assert first[0] is _late_rows_numpy and first[1] is False


class TestTranslationCache:
    def _translation(self, rows):
        empty = np.zeros(0, dtype=np.float32)
        return GroupTranslation(
            rows=rows,
            peak=1.0,
            theta_cap=1.0,
            low0=1.0,
            totals=empty,
            guards=empty,
        )

    def test_hit_and_miss_accounting(self):
        cache = TranslationCache()
        assert cache.get("fp", (0, 1)) is None
        cache.put("fp", (0, 1), self._translation((0, 1)))
        assert cache.get("fp", (0, 1)) is not None
        assert cache.get("other", (0, 1)) is None
        assert cache.hits == 1 and cache.misses == 2

    def test_fifo_eviction_respects_bound(self):
        cache = TranslationCache(max_entries=2)
        for i in range(4):
            cache.put("fp", (i,), self._translation((i,)))
        assert len(cache) == 2
        assert cache.get("fp", (0,)) is None
        assert cache.get("fp", (3,)) is not None

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(SimulationError):
            TranslationCache(max_entries=0)


def _variable_pairs(cal, seed=11, n_apps=5):
    from repro.traces.allocation import AllocationTrace, CoSAllocationPair

    rng = np.random.default_rng(seed)
    n = cal.n_observations
    pairs = []
    for index in range(n_apps):
        cos1 = rng.gamma(2.0, 0.8, size=n)
        cos2 = rng.gamma(1.5, 1.0, size=n)
        pairs.append(
            CoSAllocationPair(
                f"app{index}",
                AllocationTrace(f"app{index}.cos1", cos1, cal),
                AllocationTrace(f"app{index}.cos2", cos2, cal),
            )
        )
    return pairs


class TestEvaluatorIntegration:
    def _evaluator(self, kernel, instrumentation=None):
        from repro.placement.evaluation import PlacementEvaluator

        pairs = _variable_pairs(CAL)
        return PlacementEvaluator(
            pairs,
            CoSCommitment(theta=0.95, deadline_minutes=360.0),
            tolerance=TOLERANCE,
            kernel=kernel,
            instrumentation=instrumentation,
        )

    ITEMS = [
        (16.0, (0, 1)),
        (16.0, (2, 3, 4)),
        (16.0, (0, 2, 4)),
        (4.0, (1, 3)),
        (16.0, (0, 1, 2, 3, 4)),
    ]

    def test_fused_evaluator_matches_batch(self):
        batch = self._evaluator("batch").evaluate_groups(self.ITEMS)
        fused = self._evaluator("fused").evaluate_groups(self.ITEMS)
        for ref, fus in zip(batch, fused):
            assert ref.fits == fus.fits
            assert ref.required == fus.required
            assert ref.utilization == fus.utilization

    def test_fused_counters_recorded_uniformly(self):
        from repro.engine import Instrumentation

        expected = {
            "kernel.rows",
            "kernel.calls",
            "kernel.bracket_iterations",
            "kernel.probe_hits",
            "kernel.fused_rows",
            "kernel.f32_retries",
        }
        for kernel in ("batch", "analytic", "fused"):
            instr = Instrumentation()
            evaluator = self._evaluator(kernel, instrumentation=instr)
            snapshot = instr.counters()
            evaluator.evaluate_groups(self.ITEMS)
            deltas = instr.counters_since(snapshot)
            assert expected <= set(deltas), (kernel, deltas)
            if kernel == "fused":
                assert deltas["kernel.fused_rows"] > 0
            else:
                assert deltas["kernel.fused_rows"] == 0.0

    def test_worker_roundtrip_matches_driver(self):
        import pickle

        from repro.placement.evaluation import evaluate_groups_worker

        driver = self._evaluator("fused")
        reference = driver.evaluate_groups(self.ITEMS)
        payload = pickle.loads(pickle.dumps(driver.worker_payload()))
        assert payload.fingerprint == driver.content_fingerprint()
        items = tuple(
            (limit, tuple(sorted(rows)), None) for limit, rows in self.ITEMS
        )
        evaluations, stats = evaluate_groups_worker(payload, items)
        assert len(stats) == 6
        for ref, fus in zip(reference, evaluations):
            assert ref.fits == fus.fits
            assert ref.required == fus.required
        # The lazily attached worker-side memo never crosses a process
        # boundary: re-pickling drops it.
        assert not hasattr(
            pickle.loads(pickle.dumps(payload)), "_fused_translations"
        )

    def test_fingerprint_tracks_translation_inputs(self):
        first = self._evaluator("fused")
        second = self._evaluator("fused")
        assert first.content_fingerprint() == second.content_fingerprint()
        from repro.placement.evaluation import PlacementEvaluator

        different = PlacementEvaluator(
            _variable_pairs(CAL),
            CoSCommitment(theta=0.95, deadline_minutes=360.0),
            tolerance=TOLERANCE * 2,
            kernel="fused",
        )
        assert (
            different.content_fingerprint() != first.content_fingerprint()
        )

    def test_batch_payload_carries_no_fingerprint(self):
        payload = self._evaluator("batch").worker_payload()
        assert payload.fingerprint is None
