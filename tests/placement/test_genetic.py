"""Tests for the genetic placement search."""

import numpy as np
import pytest

from repro.core.cos import CoSCommitment
from repro.exceptions import PlacementError
from repro.placement.evaluation import PlacementEvaluator
from repro.placement.genetic import GeneticPlacementSearch, GeneticSearchConfig
from repro.placement.greedy import first_fit_decreasing
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.calendar import TraceCalendar


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=60)


def constant_pair(cal, name, cos1_level, cos2_level):
    n = cal.n_observations
    return CoSAllocationPair(
        name,
        AllocationTrace(f"{name}.cos1", np.full(n, cos1_level), cal),
        AllocationTrace(f"{name}.cos2", np.full(n, cos2_level), cal),
    )


def small_problem(cal, n_workloads=8, n_servers=8):
    rng = np.random.default_rng(11)
    n = cal.n_observations
    pairs = [
        CoSAllocationPair(
            f"w{i}",
            AllocationTrace(f"w{i}.c1", rng.uniform(0, 1.5, n), cal),
            AllocationTrace(f"w{i}.c2", rng.uniform(0, 3, n), cal),
        )
        for i in range(n_workloads)
    ]
    evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.9))
    pool = ResourcePool(homogeneous_servers(n_servers, cpus=16))
    return evaluator, pool


class TestConfig:
    def test_defaults_valid(self):
        GeneticSearchConfig()

    def test_rejects_bad_values(self):
        with pytest.raises(PlacementError):
            GeneticSearchConfig(population_size=1)
        with pytest.raises(PlacementError):
            GeneticSearchConfig(max_generations=0)
        with pytest.raises(PlacementError):
            GeneticSearchConfig(elite_count=24, population_size=24)
        with pytest.raises(PlacementError):
            GeneticSearchConfig(crossover_probability=1.5)
        with pytest.raises(PlacementError):
            GeneticSearchConfig(stall_generations=0)


class TestEvaluate:
    def test_score_composition(self, cal):
        evaluator, pool = small_problem(cal, n_workloads=2, n_servers=3)
        search = GeneticPlacementSearch(evaluator, pool)
        evaluated = search.evaluate((0, 0))
        # One used server, two empty -> score includes +2 for the empties.
        assert evaluated.feasible
        assert evaluated.score > 2.0
        assert set(evaluated.assignment) == {0}

    def test_infeasible_detected(self, cal):
        pairs = [constant_pair(cal, "a", 12.0, 0.0), constant_pair(cal, "b", 12.0, 0.0)]
        evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.9))
        pool = ResourcePool(homogeneous_servers(2, cpus=16))
        search = GeneticPlacementSearch(evaluator, pool)
        together = search.evaluate((0, 0))
        assert not together.feasible
        apart = search.evaluate((0, 1))
        assert apart.feasible
        assert apart.score > together.score

    def test_wrong_length_rejected(self, cal):
        evaluator, pool = small_problem(cal, n_workloads=3)
        search = GeneticPlacementSearch(evaluator, pool)
        with pytest.raises(PlacementError):
            search.evaluate((0,))

    def test_out_of_range_server_rejected(self, cal):
        evaluator, pool = small_problem(cal, n_workloads=2, n_servers=2)
        search = GeneticPlacementSearch(evaluator, pool)
        with pytest.raises(PlacementError):
            search.evaluate((0, 5))


class TestRun:
    def test_improves_on_spread_seed(self, cal):
        evaluator, pool = small_problem(cal)
        config = GeneticSearchConfig(
            seed=0, max_generations=30, stall_generations=8, population_size=16
        )
        search = GeneticPlacementSearch(evaluator, pool, config)
        spread = tuple(range(8))  # one workload per server
        result = search.run(spread)
        assert result.best.feasible
        spread_score = search.evaluate(spread).score
        assert result.best.score >= spread_score
        # These small workloads easily share; expect consolidation.
        assert len(result.best.servers_used()) < 8

    def test_never_worse_than_greedy_seed(self, cal):
        evaluator, pool = small_problem(cal)
        seed_assignment = first_fit_decreasing(evaluator, pool)
        config = GeneticSearchConfig(seed=1, max_generations=20, stall_generations=5)
        search = GeneticPlacementSearch(evaluator, pool, config)
        result = search.run(seed_assignment)
        assert result.best.score >= search.evaluate(seed_assignment).score

    def test_reproducible_with_seed(self, cal):
        evaluator, pool = small_problem(cal)
        seed_assignment = first_fit_decreasing(evaluator, pool)
        config = GeneticSearchConfig(seed=7, max_generations=10, stall_generations=3)

        def run_once():
            search = GeneticPlacementSearch(evaluator, pool, config)
            return search.run(seed_assignment).best.assignment

        assert run_once() == run_once()

    def test_raises_when_nothing_feasible(self, cal):
        pairs = [constant_pair(cal, "big", 12.0, 0.0), constant_pair(cal, "big2", 12.0, 0.0)]
        evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.9))
        pool = ResourcePool(homogeneous_servers(1, cpus=16))
        config = GeneticSearchConfig(seed=0, max_generations=3, stall_generations=2)
        search = GeneticPlacementSearch(evaluator, pool, config)
        with pytest.raises(PlacementError):
            search.run((0, 0))

    def test_empty_pool_rejected(self, cal):
        evaluator, _ = small_problem(cal, n_workloads=2, n_servers=2)
        with pytest.raises(PlacementError):
            GeneticPlacementSearch(evaluator, ResourcePool([]))

    def test_history_recorded(self, cal):
        evaluator, pool = small_problem(cal)
        config = GeneticSearchConfig(seed=2, max_generations=5, stall_generations=5)
        search = GeneticPlacementSearch(evaluator, pool, config)
        result = search.run(first_fit_decreasing(evaluator, pool))
        assert len(result.history) == result.generations_run
        assert result.evaluations_performed > 0


class TestCheckpointResume:
    def _search(self, cal, seed=7):
        evaluator, pool = small_problem(cal)
        config = GeneticSearchConfig(
            seed=seed, max_generations=12, stall_generations=4,
            population_size=12,
        )
        return GeneticPlacementSearch(evaluator, pool, config)

    def test_interrupted_search_resumes_to_identical_result(self, cal, tmp_path):
        from repro.engine.checkpoint import Checkpointer

        search = self._search(cal)
        seed_assignment = first_fit_decreasing(search.evaluator, search.pool)
        baseline = search.run(seed_assignment)

        class _Interrupting(Checkpointer):
            saves = 0

            def save(self, key, payload):
                stuck = super().save(key, payload)
                type(self).saves += 1
                if type(self).saves == 3:
                    raise KeyboardInterrupt  # the operator's ^C / kill
                return stuck

        directory = tmp_path / "ga"
        with pytest.raises(KeyboardInterrupt):
            self._search(cal).run(
                seed_assignment, checkpointer=_Interrupting(directory)
            )
        resumed = self._search(cal).run(
            seed_assignment, checkpointer=Checkpointer(directory)
        )
        assert resumed.best.assignment == baseline.best.assignment
        assert resumed.best.score == pytest.approx(baseline.best.score)
        assert resumed.history == pytest.approx(baseline.history)
        assert resumed.generations_run == baseline.generations_run

    def test_resume_from_converged_checkpoint_is_a_no_op(self, cal, tmp_path):
        from repro.engine.checkpoint import Checkpointer

        search = self._search(cal)
        seed_assignment = first_fit_decreasing(search.evaluator, search.pool)
        store = Checkpointer(tmp_path / "ga")
        first = search.run(seed_assignment, checkpointer=store)
        again = self._search(cal).run(seed_assignment, checkpointer=store)
        assert again.best.assignment == first.best.assignment
        assert again.generations_run == first.generations_run
        assert again.history == pytest.approx(first.history)

    def test_malformed_checkpoint_raises_actionably(self, cal, tmp_path):
        from repro.engine.checkpoint import Checkpointer

        search = self._search(cal)
        seed_assignment = first_fit_decreasing(search.evaluator, search.pool)
        store = Checkpointer(tmp_path / "ga")
        store.save("genetic", {"generation": 1})  # missing every other field
        with pytest.raises(PlacementError, match="checkpoint"):
            search.run(seed_assignment, checkpointer=store)

    def test_checkpoint_from_another_problem_raises_actionably(
        self, cal, tmp_path
    ):
        from repro.engine.checkpoint import Checkpointer

        search = self._search(cal)
        seed_assignment = first_fit_decreasing(search.evaluator, search.pool)
        store = Checkpointer(tmp_path / "ga")
        # A structurally valid checkpoint whose population was evolved
        # for a *different* ensemble (wrong workload count): restore
        # must reject it via assignment validation, never evaluate it.
        store.save(
            "genetic",
            {
                "generation": 1,
                "rng_state": {},
                "population": [[0, 0]],
                "best_feasible": None,
                "stall": 0,
                "history": [],
            },
        )
        with pytest.raises(PlacementError, match="different planning problem"):
            search.run(seed_assignment, checkpointer=store)
