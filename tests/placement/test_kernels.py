"""Property tests for the batched capacity-search kernels.

The kernels' contract comes in two strengths and both are pinned down
here with hypothesis:

* the multi-capacity kernel (:func:`evaluate_capacities`) and the
  multi-row kernel (:meth:`BatchSimulator.evaluate_rows`) are
  **bit-identical** to the scalar :meth:`SingleServerSimulator.evaluate`
  path, as is :func:`required_capacity_batch` in its default
  ``mode="bisect"`` without probes;
* the accelerated paths (``mode="analytic"``, warm-start probes, the
  ``decision_deadline`` pass/fail) only promise *tolerance-equivalent*
  answers — same fits verdict, required capacity within the search
  tolerance, and every returned capacity verified to satisfy the
  commitment by a fresh scalar measurement.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cos import CoSCommitment
from repro.exceptions import SimulationError
from repro.placement.kernels import (
    BatchSimulator,
    evaluate_capacities,
    required_capacity_batch,
)
from repro.placement.required_capacity import required_capacity
from repro.placement.simulator import SingleServerSimulator
from repro.traces.calendar import TraceCalendar

# One week at 6-hour resolution: 28 observations per trace keeps each
# hypothesis example cheap while exercising the (week, slot-of-day)
# theta reduction on a non-trivial calendar.
CAL = TraceCalendar(weeks=1, slot_minutes=360)
N = CAL.n_observations
LIMIT = 16.0
TOLERANCE = 0.01

levels = st.floats(min_value=0.0, max_value=4.0, allow_nan=False, width=32)
capacity_values = st.floats(
    min_value=0.125, max_value=LIMIT, allow_nan=False, width=32
)
# 1 - 1e-9 and 1.0 exercise the theta ~= 1 edge where the analytic
# threshold sits at (or beyond) the trace's full-demand capacity;
# deadline 0 makes any deferral fatal (the all-deferred edge).
commitments = st.builds(
    CoSCommitment,
    theta=st.sampled_from([0.5, 0.9, 0.95, 1.0 - 1e-9, 1.0]),
    deadline_minutes=st.sampled_from([0.0, 360.0, 720.0]),
)


@st.composite
def traces(draw):
    cos1 = np.asarray(draw(st.lists(levels, min_size=N, max_size=N)), float)
    cos2 = np.asarray(draw(st.lists(levels, min_size=N, max_size=N)), float)
    return cos1, cos2


@st.composite
def trace_stacks(draw, min_rows=1, max_rows=3):
    rows = draw(st.integers(min_value=min_rows, max_value=max_rows))
    stack = [draw(traces()) for _ in range(rows)]
    cos1 = np.stack([cos1 for cos1, _ in stack])
    cos2 = np.stack([cos2 for _, cos2 in stack])
    return cos1, cos2


def scalar_reports(cos1, cos2, capacities):
    return [
        SingleServerSimulator(c1, c2, CAL).evaluate(cap)
        for c1, c2, cap in zip(cos1, cos2, capacities)
    ]


def assert_report_rows_identical(batch_report, reports):
    for row, scalar in enumerate(reports):
        assert batch_report.report(row) == scalar


class TestEvaluateCapacities:
    """One trace at K capacities == K scalar evaluations, bitwise."""

    @settings(max_examples=50, deadline=None)
    @given(traces(), st.lists(capacity_values, min_size=1, max_size=6))
    def test_matches_scalar_elementwise(self, trace, capacities):
        cos1, cos2 = trace
        simulator = SingleServerSimulator(cos1, cos2, CAL)
        batch = simulator.evaluate_batch(capacities)
        assert len(batch) == len(capacities)
        assert_report_rows_identical(
            batch, [simulator.evaluate(cap) for cap in capacities]
        )

    def test_rejects_nonpositive_and_non_1d(self):
        simulator = SingleServerSimulator(np.ones(N), np.ones(N), CAL)
        with pytest.raises(SimulationError):
            evaluate_capacities(simulator, np.array([1.0, 0.0]))
        with pytest.raises(SimulationError):
            evaluate_capacities(simulator, np.ones((2, 2)))


class TestEvaluateRows:
    """N stacked traces, each at its own capacity, == N scalar sims."""

    @settings(max_examples=50, deadline=None)
    @given(trace_stacks(), st.data())
    def test_matches_scalar_per_row(self, stack, data):
        cos1, cos2 = stack
        rows = cos1.shape[0]
        capacities = np.asarray(
            data.draw(
                st.lists(capacity_values, min_size=rows, max_size=rows)
            ),
            float,
        )
        batch = BatchSimulator(cos1, cos2, CAL)
        report = batch.evaluate_rows(None, capacities)
        assert_report_rows_identical(
            report, scalar_reports(cos1, cos2, capacities)
        )

    @settings(max_examples=25, deadline=None)
    @given(trace_stacks(min_rows=2, max_rows=3), commitments)
    def test_gated_rows_agree_on_satisfies(self, stack, commitment):
        """The gate may skip the FIFO drain only for rows it cannot save."""
        cos1, cos2 = stack
        rows = cos1.shape[0]
        capacities = np.full(rows, 2.0)
        batch = BatchSimulator(cos1, cos2, CAL)
        gated = batch.evaluate_rows(None, capacities, gate=commitment)
        scalars = scalar_reports(cos1, cos2, capacities)
        verdicts = gated.satisfies(commitment, CAL)
        for row, scalar in enumerate(scalars):
            assert bool(verdicts[row]) == scalar.satisfies(commitment, CAL)


class TestDecisionDeadline:
    """The pass/fail deferral check must match the exact FIFO drain."""

    @settings(max_examples=50, deadline=None)
    @given(trace_stacks(), commitments, st.data())
    def test_verdict_matches_exact_measurement(self, stack, commitment, data):
        cos1, cos2 = stack
        rows = cos1.shape[0]
        capacities = np.asarray(
            data.draw(
                st.lists(capacity_values, min_size=rows, max_size=rows)
            ),
            float,
        )
        deadline = commitment.deadline_slots(CAL)
        batch = BatchSimulator(cos1, cos2, CAL)
        exact = batch.evaluate_rows(None, capacities, gate=commitment)
        quick = batch.evaluate_rows(
            None, capacities, gate=commitment, decision_deadline=deadline
        )
        assert not quick.deferred_exact
        np.testing.assert_array_equal(
            quick.satisfies(commitment, CAL),
            exact.satisfies(commitment, CAL),
        )

    def test_decision_only_report_refuses_to_materialise(self):
        batch = BatchSimulator(np.ones((1, N)), np.ones((1, N)), CAL)
        quick = batch.evaluate_rows(
            None,
            np.array([2.0]),
            gate=CoSCommitment(theta=0.9),
            decision_deadline=1,
        )
        with pytest.raises(SimulationError, match="pass/fail"):
            quick.report(0)


class TestRequiredCapacityBatchBisect:
    """Default mode, no probes: bit-identical to the scalar search."""

    @settings(max_examples=50, deadline=None)
    @given(trace_stacks(), commitments)
    def test_matches_scalar_search(self, stack, commitment):
        cos1, cos2 = stack
        rows = cos1.shape[0]
        batch = BatchSimulator(cos1, cos2, CAL)
        outcome = required_capacity_batch(
            batch, np.full(rows, LIMIT), commitment, tolerance=TOLERANCE
        )
        assert outcome.stats.rows == rows
        for row in range(rows):
            scalar = required_capacity(
                [],
                LIMIT,
                commitment,
                tolerance=TOLERANCE,
                simulator=SingleServerSimulator(cos1[row], cos2[row], CAL),
            )
            batched = outcome.results[row]
            assert batched.fits == scalar.fits
            assert batched.required_capacity == scalar.required_capacity
            if scalar.report is None:
                assert batched.report is None
            else:
                assert batched.report == scalar.report

    def test_peak_over_limit_short_circuits(self):
        cos1 = np.full((1, N), 2 * LIMIT)
        batch = BatchSimulator(cos1, np.zeros((1, N)), CAL)
        outcome = required_capacity_batch(
            batch, np.array([LIMIT]), CoSCommitment(theta=0.9)
        )
        assert not outcome.results[0].fits
        assert outcome.results[0].report is None
        assert outcome.stats.kernel_calls == 0

    def test_all_deferred_rows_do_not_fit(self):
        """Permanent overload with a zero deadline: no capacity below the
        peak-free limit drains the backlog, so every row reports no fit —
        on both the scalar and the batched path."""
        cos2 = np.full((2, N), 2 * LIMIT)
        batch = BatchSimulator(np.zeros((2, N)), cos2, CAL)
        commitment = CoSCommitment(theta=0.5, deadline_minutes=0.0)
        outcome = required_capacity_batch(
            batch, np.full(2, LIMIT), commitment
        )
        for row in range(2):
            result = outcome.results[row]
            assert not result.fits
            assert result.required_capacity == float("inf")
            assert result.report is not None
            assert result.report.max_deferred_slots > 0


class TestRequiredCapacityBatchAnalytic:
    """Analytic mode: same verdicts, capacity within the tolerance."""

    @settings(max_examples=50, deadline=None)
    @given(trace_stacks(), commitments)
    def test_within_tolerance_of_scalar(self, stack, commitment):
        cos1, cos2 = stack
        rows = cos1.shape[0]
        batch = BatchSimulator(cos1, cos2, CAL)
        outcome = required_capacity_batch(
            batch,
            np.full(rows, LIMIT),
            commitment,
            tolerance=TOLERANCE,
            mode="analytic",
        )
        for row in range(rows):
            simulator = SingleServerSimulator(cos1[row], cos2[row], CAL)
            scalar = required_capacity(
                [], LIMIT, commitment, tolerance=TOLERANCE,
                simulator=simulator,
            )
            analytic = outcome.results[row]
            assert analytic.fits == scalar.fits
            if not scalar.fits:
                continue
            # Both answers live within `tolerance` of the true minimum.
            assert (
                abs(analytic.required_capacity - scalar.required_capacity)
                <= TOLERANCE + 1e-9
            )
            # And the analytic answer is verified, not merely predicted.
            measured = simulator.evaluate(analytic.required_capacity)
            assert measured.satisfies(commitment, CAL)

    @settings(max_examples=25, deadline=None)
    @given(trace_stacks(), st.sampled_from([0.5, 0.95, 1.0 - 1e-9]))
    def test_theta_threshold_is_sufficient(self, stack, theta):
        """Evaluating just above the inverted threshold satisfies theta."""
        cos1, cos2 = stack
        batch = BatchSimulator(cos1, cos2, CAL)
        thresholds = batch.theta_thresholds(theta)
        assert thresholds.shape == (cos1.shape[0],)
        capacities = np.maximum(thresholds * (1.0 + 1e-12) + 1e-9, 1e-6)
        report = batch.evaluate_rows(None, capacities)
        assert np.all(report.theta_measured >= theta - 1e-12)

    def test_thresholds_are_cached_per_theta(self):
        batch = BatchSimulator(np.ones((1, N)), np.ones((1, N)), CAL)
        assert batch.theta_thresholds(0.9) is batch.theta_thresholds(0.9)

    def test_rejects_unknown_mode(self):
        batch = BatchSimulator(np.ones((1, N)), np.ones((1, N)), CAL)
        with pytest.raises(SimulationError, match="mode"):
            required_capacity_batch(
                batch, np.array([LIMIT]), CoSCommitment(theta=0.9),
                mode="newton",
            )


class TestWarmStartProbes:
    """Probed searches stay within tolerance and are always verified."""

    @settings(max_examples=25, deadline=None)
    @given(trace_stacks(min_rows=2, max_rows=3), commitments, st.data())
    def test_probed_results_within_tolerance(self, stack, commitment, data):
        cos1, cos2 = stack
        rows = cos1.shape[0]
        batch = BatchSimulator(cos1, cos2, CAL)
        limits = np.full(rows, LIMIT)
        plain = required_capacity_batch(
            batch, limits, commitment, tolerance=TOLERANCE
        )
        # Perturbed copies of the true answers stand in for the parent
        # generation's warm starts; NaN marks rows with no guess.
        probes = np.full(rows, np.nan)
        for row, result in enumerate(plain.results):
            if result.fits and data.draw(st.booleans()):
                probes[row] = result.required_capacity + data.draw(
                    st.floats(-0.5, 0.5, allow_nan=False, width=32)
                )
        probed = required_capacity_batch(
            batch, limits, commitment, tolerance=TOLERANCE, probes=probes
        )
        for row in range(rows):
            assert probed.results[row].fits == plain.results[row].fits
            if not plain.results[row].fits:
                continue
            assert (
                abs(
                    probed.results[row].required_capacity
                    - plain.results[row].required_capacity
                )
                <= TOLERANCE + 1e-9
            )
            measured = SingleServerSimulator(
                cos1[row], cos2[row], CAL
            ).evaluate(probed.results[row].required_capacity)
            assert measured.satisfies(commitment, CAL)

    @settings(max_examples=25, deadline=None)
    @given(trace_stacks(), commitments)
    def test_nan_probes_are_bit_identical_to_no_probes(
        self, stack, commitment
    ):
        cos1, cos2 = stack
        rows = cos1.shape[0]
        batch = BatchSimulator(cos1, cos2, CAL)
        limits = np.full(rows, LIMIT)
        plain = required_capacity_batch(batch, limits, commitment)
        ignored = required_capacity_batch(
            batch, limits, commitment, probes=np.full(rows, np.nan)
        )
        for row in range(rows):
            assert (
                ignored.results[row].required_capacity
                == plain.results[row].required_capacity
            )
