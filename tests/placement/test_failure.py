"""Tests for single-failure what-if planning."""

import pytest

from repro.core.cos import PoolCommitments
from repro.core.qos import QoSPolicy, case_study_qos
from repro.core.translation import QoSTranslator
from repro.exceptions import PlacementError
from repro.placement.consolidation import Consolidator
from repro.placement.failure import FailurePlanner
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.calendar import TraceCalendar
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

SEARCH_CONFIG = GeneticSearchConfig(
    seed=0, max_generations=10, stall_generations=3, population_size=10
)


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=60)


@pytest.fixture
def demands(cal):
    generator = WorkloadGenerator(seed=21)
    specs = [
        WorkloadSpec(name=f"w{i}", peak_cpus=1.0 + 0.3 * i, noise_sigma=0.2)
        for i in range(6)
    ]
    return generator.generate_many(specs, cal)


@pytest.fixture
def translator():
    return QoSTranslator(PoolCommitments.of(theta=0.9))


@pytest.fixture
def policy():
    return QoSPolicy(
        normal=case_study_qos(m_degr_percent=0),
        failure=case_study_qos(m_degr_percent=3, t_degr_minutes=None),
    )


def normal_plan(translator, demands, policy, pool):
    pairs = [
        translator.translate(demand, policy.normal).pair for demand in demands
    ]
    consolidator = Consolidator(
        pool, translator.commitments.cos2, config=SEARCH_CONFIG
    )
    return consolidator.consolidate(pairs)


class TestFailurePlanning:
    def test_absorbable_failures(self, demands, translator, policy):
        """A generously sized pool absorbs any single failure."""
        pool = ResourcePool(homogeneous_servers(6, cpus=16))
        normal = normal_plan(translator, demands, policy, pool)
        planner = FailurePlanner(translator, config=SEARCH_CONFIG)
        report = planner.plan(demands, policy, pool, normal)
        assert len(report.cases) == normal.servers_used
        assert report.all_supported
        assert not report.spare_server_needed

    def test_case_lookup(self, demands, translator, policy):
        pool = ResourcePool(homogeneous_servers(6, cpus=16))
        normal = normal_plan(translator, demands, policy, pool)
        planner = FailurePlanner(translator, config=SEARCH_CONFIG)
        report = planner.plan(demands, policy, pool, normal)
        some_server = next(iter(normal.assignment))
        case = report.case_for(some_server)
        assert case.failed_servers == (some_server,)
        assert case.label == some_server
        assert set(case.affected_workloads) == set(
            normal.assignment[some_server]
        )
        with pytest.raises(PlacementError):
            report.case_for("ghost")

    def test_failure_case_excludes_failed_server(self, demands, translator, policy):
        pool = ResourcePool(homogeneous_servers(6, cpus=16))
        normal = normal_plan(translator, demands, policy, pool)
        planner = FailurePlanner(translator, config=SEARCH_CONFIG)
        report = planner.plan(demands, policy, pool, normal)
        for case in report.cases:
            if case.result is not None:
                for failed in case.failed_servers:
                    assert failed not in case.result.assignment

    def test_spare_needed_when_pool_tight(self, cal, translator):
        """A pool that is exactly full cannot absorb a failure."""
        generator = WorkloadGenerator(seed=5)
        # Workloads that each demand most of one server.
        specs = [
            WorkloadSpec(name=f"big{i}", peak_cpus=5.0, noise_sigma=0.05)
            for i in range(2)
        ]
        demands = generator.generate_many(specs, cal)
        policy = QoSPolicy(normal=case_study_qos(m_degr_percent=0))
        pool = ResourcePool(homogeneous_servers(2, cpus=16))
        normal = normal_plan(translator, demands, policy, pool)
        if normal.servers_used < 2:
            pytest.skip("workloads consolidated onto one server")
        planner = FailurePlanner(translator, config=SEARCH_CONFIG)
        report = planner.plan(demands, policy, pool, normal)
        assert report.spare_server_needed

    def test_relax_all_toggle(self, demands, translator, policy):
        pool = ResourcePool(homogeneous_servers(6, cpus=16))
        normal = normal_plan(translator, demands, policy, pool)
        planner = FailurePlanner(translator, config=SEARCH_CONFIG)
        relaxed = planner.plan(
            demands, policy, pool, normal, relax_all=True
        )
        assert len(relaxed.cases) == normal.servers_used

    def test_unknown_workloads_rejected(self, demands, translator, policy):
        pool = ResourcePool(homogeneous_servers(6, cpus=16))
        normal = normal_plan(translator, demands, policy, pool)
        planner = FailurePlanner(translator, config=SEARCH_CONFIG)
        with pytest.raises(PlacementError):
            planner.plan(demands[:-1], policy, pool, normal)

    def test_per_workload_policies(self, demands, translator, policy):
        pool = ResourcePool(homogeneous_servers(6, cpus=16))
        normal = normal_plan(translator, demands, policy, pool)
        planner = FailurePlanner(translator, config=SEARCH_CONFIG)
        policies = {demand.name: policy for demand in demands}
        report = planner.plan(demands, policies, pool, normal)
        assert len(report.cases) == normal.servers_used

    def test_missing_policy_rejected(self, demands, translator, policy):
        pool = ResourcePool(homogeneous_servers(6, cpus=16))
        normal = normal_plan(translator, demands, policy, pool)
        planner = FailurePlanner(translator, config=SEARCH_CONFIG)
        with pytest.raises(PlacementError):
            planner.plan(demands, {"w0": policy}, pool, normal)
