"""Tests for the consolidation objective function."""

import pytest

from repro.exceptions import PlacementError
from repro.placement.objective import (
    assignment_score,
    server_score,
    utilization_value,
)
from repro.resources.server import ServerSpec


class TestUtilizationValue:
    def test_formula(self):
        assert utilization_value(0.5, 1) == pytest.approx(0.25)
        assert utilization_value(0.5, 2) == pytest.approx(0.5**4)

    def test_full_utilization_scores_one(self):
        assert utilization_value(1.0, 16) == 1.0

    def test_zero_utilization(self):
        assert utilization_value(0.0, 4) == 0.0

    def test_more_cpus_penalise_low_utilization(self):
        """Servers with more CPUs must be hotter to score the same."""
        assert utilization_value(0.8, 16) < utilization_value(0.8, 2)

    def test_rejects_out_of_range(self):
        with pytest.raises(PlacementError):
            utilization_value(1.5, 4)
        with pytest.raises(PlacementError):
            utilization_value(0.5, 0)


class TestServerScore:
    def test_unused_server_scores_one(self):
        assert server_score(ServerSpec("s", 16), 0, None) == 1.0

    def test_feasible_server_scores_f_of_u(self):
        server = ServerSpec("s", 2)
        assert server_score(server, 3, 1.0) == pytest.approx((1.0 / 2.0) ** 4)

    def test_overbooked_server_scores_minus_n(self):
        server = ServerSpec("s", 16)
        assert server_score(server, 5, 20.0) == -5.0
        assert server_score(server, 5, None) == -5.0
        assert server_score(server, 5, float("inf")) == -5.0
        assert server_score(server, 5, float("nan")) == -5.0

    def test_rejects_negative_count(self):
        with pytest.raises(PlacementError):
            server_score(ServerSpec("s", 16), -1, 1.0)


class TestAssignmentScore:
    def test_sum_of_contributions(self):
        servers = [ServerSpec("a", 1), ServerSpec("b", 1)]
        score = assignment_score(servers, [0, 2], [None, 0.5])
        assert score == pytest.approx(1.0 + 0.25)

    def test_consolidation_preference(self):
        """Packing everything on one hot server beats spreading out."""
        servers = [ServerSpec("a", 1), ServerSpec("b", 1)]
        spread = assignment_score(servers, [1, 1], [0.4, 0.4])
        packed = assignment_score(servers, [2, 0], [0.8, None])
        assert packed > spread

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(PlacementError):
            assignment_score([ServerSpec("a", 1)], [1, 2], [0.5])
