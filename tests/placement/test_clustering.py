"""Tests for demand-shape clustering (the hierarchical tier's stage 1)."""

import subprocess
import sys

import numpy as np
import pytest

from repro.exceptions import PlacementError
from repro.placement.clustering import (
    FEATURE_NAMES,
    ClusteringResult,
    WorkloadFeatures,
    cluster_workloads,
    demand_shape_features,
)
from repro.traces.calendar import TraceCalendar
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.patterns import batch_window_pattern, business_hours_pattern


def _two_family_demands():
    """Six daytime interactive apps and six midnight batch jobs.

    The families differ in diurnal phase (midday vs midnight demand
    concentration) and burstiness (a 5-hour batch window idles most of
    the day), so any reasonable demand-shape clustering separates them.
    """
    calendar = TraceCalendar(weeks=1, slot_minutes=60)
    generator = WorkloadGenerator(seed=11)
    specs = [
        WorkloadSpec(
            name=f"day-{i}",
            pattern=business_hours_pattern(),
            peak_cpus=2.0 + 0.1 * i,
            noise_sigma=0.08,
            noise_correlation=0.9,
        )
        for i in range(6)
    ] + [
        WorkloadSpec(
            name=f"night-{i}",
            pattern=batch_window_pattern(window_start=0, window_hours=5),
            peak_cpus=1.5 + 0.1 * i,
            noise_sigma=0.08,
            noise_correlation=0.9,
        )
        for i in range(6)
    ]
    return generator.generate_many(specs, calendar)


@pytest.fixture(scope="module")
def demands():
    return _two_family_demands()


@pytest.fixture(scope="module")
def features(demands):
    return demand_shape_features(demands)


class TestFeatures:
    def test_matrix_shape_and_names(self, demands, features):
        assert features.matrix.shape == (len(demands), len(FEATURE_NAMES))
        assert features.raw.shape == features.matrix.shape
        assert features.names == tuple(demand.name for demand in demands)

    def test_burstiness_separates_the_families(self, features):
        burstiness = features.raw[:, FEATURE_NAMES.index("burstiness")]
        day = burstiness[:6]
        night = burstiness[6:]
        assert day.max() < night.min()

    def test_phase_separates_the_families(self, features):
        cosine = features.raw[:, FEATURE_NAMES.index("phase_cos")]
        # Daytime demand points away from midnight, batch toward it.
        assert cosine[:6].max() < 0.0
        assert cosine[6:].min() > 0.0

    def test_cos1_fraction_defaults_without_translations(self, features):
        column = features.raw[:, FEATURE_NAMES.index("cos1_fraction")]
        assert np.allclose(column, 0.5)

    def test_normalised_columns_are_centred(self, features):
        assert np.allclose(features.matrix.mean(axis=0), 0.0, atol=1e-9)

    def test_empty_ensemble_rejected(self):
        with pytest.raises(PlacementError):
            demand_shape_features([])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PlacementError):
            WorkloadFeatures(
                names=("a", "b"),
                matrix=np.zeros((3, len(FEATURE_NAMES))),
                raw=np.zeros((3, len(FEATURE_NAMES))),
            )


class TestClusterWorkloads:
    def test_families_end_up_in_distinct_clusters(self, features):
        result = cluster_workloads(features, 2, seed=5)
        day_labels = set(result.labels[:6])
        night_labels = set(result.labels[6:])
        assert len(day_labels) == 1
        assert len(night_labels) == 1
        assert day_labels != night_labels

    def test_same_seed_same_clusters(self, features):
        first = cluster_workloads(features, 3, seed=42)
        second = cluster_workloads(features, 3, seed=42)
        assert first.labels == second.labels
        assert first.method == second.method

    def test_labels_are_canonical(self, features):
        result = cluster_workloads(features, 3, seed=42)
        seen: list[int] = []
        for label in result.labels:
            if label not in seen:
                seen.append(label)
        assert seen == sorted(seen)
        assert result.labels[0] == 0

    def test_members_partition_all_workloads(self, features):
        result = cluster_workloads(features, 4, seed=1)
        members = result.members()
        flat = sorted(index for group in members for index in group)
        assert flat == list(range(len(features.names)))
        assert len(members) == 4

    def test_trivial_partition_when_k_equals_n(self, features):
        n = len(features.names)
        result = cluster_workloads(features, n, seed=0)
        assert result.labels == tuple(range(n))
        assert result.method == "trivial"

    def test_agglomerative_fallback_matches_partition_contract(
        self, features
    ):
        result = cluster_workloads(features, 2, seed=5, method="agglomerative")
        assert result.method == "agglomerative"
        assert set(result.labels) == {0, 1}
        # The in-repo fallback must also separate the two families.
        assert len(set(result.labels[:6])) == 1
        assert len(set(result.labels[6:])) == 1

    def test_unknown_method_rejected(self, features):
        with pytest.raises(PlacementError):
            cluster_workloads(features, 2, method="kmeans")

    def test_out_of_range_k_rejected(self, features):
        with pytest.raises(PlacementError):
            cluster_workloads(features, 0)
        with pytest.raises(PlacementError):
            cluster_workloads(features, len(features.names) + 1)

    def test_label_by_name_round_trips(self, features):
        result = cluster_workloads(features, 2, seed=5)
        by_name = result.label_by_name()
        assert set(by_name) == set(features.names)
        for index, name in enumerate(features.names):
            assert by_name[name] == result.labels[index]


_SUBPROCESS_SCRIPT = """
import sys
sys.path.insert(0, {src_path!r})
from tests.placement.test_clustering import _two_family_demands
from repro.placement.clustering import cluster_workloads, demand_shape_features

features = demand_shape_features(_two_family_demands())
result = cluster_workloads(features, 3, seed=42, method={method!r})
print(",".join(str(label) for label in result.labels))
"""


class TestCrossProcessDeterminism:
    @pytest.mark.parametrize("method", ["auto", "agglomerative"])
    def test_labels_identical_across_process_boundaries(
        self, features, method, repo_paths
    ):
        src_path, repo_root = repo_paths
        local = cluster_workloads(features, 3, seed=42, method=method)
        script = _SUBPROCESS_SCRIPT.format(src_path=src_path, method=method)
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=repo_root,
            check=True,
        )
        remote = tuple(
            int(label) for label in completed.stdout.strip().split(",")
        )
        assert remote == local.labels


@pytest.fixture(scope="module")
def repo_paths():
    import repro
    import os

    src_path = os.path.dirname(os.path.dirname(repro.__file__))
    repo_root = os.path.dirname(src_path)
    return src_path, repo_root


class TestResultValidation:
    def test_clustering_result_is_frozen_data(self):
        result = ClusteringResult(
            names=("a", "b"),
            labels=(0, 1),
            n_clusters=2,
            method="trivial",
            seed=None,
        )
        assert result.members() == [(0,), (1,)]
