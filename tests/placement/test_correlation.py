"""Tests for correlation-aware placement seeding."""

import numpy as np
import pytest

from repro.core.cos import CoSCommitment
from repro.exceptions import InfeasiblePlacementError
from repro.placement.correlation import (
    allocation_correlation_matrix,
    correlation_aware_seed,
)
from repro.placement.evaluation import PlacementEvaluator
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.calendar import TraceCalendar


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=60)


def pair_from(cal, name, values):
    n = cal.n_observations
    return CoSAllocationPair(
        name,
        AllocationTrace(f"{name}.c1", np.zeros(n), cal),
        AllocationTrace(f"{name}.c2", values, cal),
    )


def day_night_pairs(cal, scale=6.0):
    """Two day-shift workloads and two night-shift workloads."""
    n = cal.n_observations
    t = np.arange(n)
    day = scale * (0.55 + 0.45 * np.sin(2 * np.pi * t / 24))
    night = scale * (0.55 - 0.45 * np.sin(2 * np.pi * t / 24))
    return [
        pair_from(cal, "day-a", day),
        pair_from(cal, "day-b", day * 0.9),
        pair_from(cal, "night-a", night),
        pair_from(cal, "night-b", night * 0.9),
    ]


class TestCorrelationMatrix:
    def test_diagonal_ones(self, cal):
        evaluator = PlacementEvaluator(
            day_night_pairs(cal), CoSCommitment(theta=0.9)
        )
        matrix = allocation_correlation_matrix(evaluator)
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_symmetric(self, cal):
        evaluator = PlacementEvaluator(
            day_night_pairs(cal), CoSCommitment(theta=0.9)
        )
        matrix = allocation_correlation_matrix(evaluator)
        np.testing.assert_allclose(matrix, matrix.T)

    def test_day_day_positive_day_night_negative(self, cal):
        evaluator = PlacementEvaluator(
            day_night_pairs(cal), CoSCommitment(theta=0.9)
        )
        matrix = allocation_correlation_matrix(evaluator)
        assert matrix[0, 1] > 0.9   # day-a vs day-b
        assert matrix[0, 2] < -0.9  # day-a vs night-a

    def test_constant_series_zero_correlation(self, cal):
        n = cal.n_observations
        pairs = [
            pair_from(cal, "flat", np.full(n, 2.0)),
            pair_from(cal, "vary", 2.0 + np.sin(np.arange(n))),
        ]
        evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.9))
        matrix = allocation_correlation_matrix(evaluator)
        assert matrix[0, 1] == 0.0


class TestCorrelationAwareSeed:
    def test_pairs_day_with_night(self, cal):
        """Each server should host one day and one night workload when
        the peaks are sized so two same-shift workloads cannot share."""
        pairs = day_night_pairs(cal, scale=10.0)
        evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.99))
        pool = ResourcePool(homogeneous_servers(4, cpus=16))
        assignment = correlation_aware_seed(evaluator, pool)
        groups: dict[int, list[str]] = {}
        for index, server in enumerate(assignment):
            groups.setdefault(server, []).append(evaluator.names[index])
        # Two servers, each mixing shifts.
        assert len(groups) == 2
        for names in groups.values():
            shifts = {name.split("-")[0] for name in names}
            assert shifts == {"day", "night"}

    def test_feasibility_respected(self, cal):
        pairs = day_night_pairs(cal)
        evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.9))
        pool = ResourcePool(homogeneous_servers(4, cpus=16))
        assignment = correlation_aware_seed(evaluator, pool)
        servers = list(pool.servers)
        groups: dict[int, list[int]] = {}
        for index, server in enumerate(assignment):
            groups.setdefault(server, []).append(index)
        for server_index, indices in groups.items():
            assert evaluator.evaluate_group(
                indices, servers[server_index]
            ).fits

    def test_infeasible_raises(self, cal):
        n = cal.n_observations
        pairs = [pair_from(cal, "big", np.full(n, 40.0))]
        evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.99))
        pool = ResourcePool(homogeneous_servers(1, cpus=16))
        with pytest.raises(InfeasiblePlacementError):
            correlation_aware_seed(evaluator, pool)

    def test_seed_usable_by_genetic_search(self, cal):
        from repro.placement.genetic import (
            GeneticPlacementSearch,
            GeneticSearchConfig,
        )

        pairs = day_night_pairs(cal)
        evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.9))
        pool = ResourcePool(homogeneous_servers(4, cpus=16))
        seed = correlation_aware_seed(evaluator, pool)
        search = GeneticPlacementSearch(
            evaluator,
            pool,
            GeneticSearchConfig(
                seed=0, max_generations=4, stall_generations=2,
                population_size=6,
            ),
        )
        result = search.run(seed)
        assert result.best.feasible
        assert result.best.score >= search.evaluate(seed).score - 1e-9
