"""Tests for the required-capacity binary search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cos import CoSCommitment
from repro.exceptions import SimulationError
from repro.placement.required_capacity import required_capacity
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.calendar import TraceCalendar


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=60)


def make_pair(cal, name, cos1, cos2):
    return CoSAllocationPair(
        name,
        AllocationTrace(f"{name}.cos1", cos1, cal),
        AllocationTrace(f"{name}.cos2", cos2, cal),
    )


def constant_pair(cal, name, cos1_level, cos2_level):
    n = cal.n_observations
    return make_pair(cal, name, np.full(n, cos1_level), np.full(n, cos2_level))


class TestSearch:
    def test_exact_for_constant_demand(self, cal):
        # Constant CoS2 demand of 3 with theta 1.0: required = 3.
        pair = constant_pair(cal, "a", 0.0, 3.0)
        commitment = CoSCommitment(theta=1.0, deadline_minutes=0)
        result = required_capacity([pair], 16.0, commitment, tolerance=0.001)
        assert result.fits
        assert result.required_capacity == pytest.approx(3.0, abs=0.01)

    def test_theta_below_one_allows_less(self, cal):
        rng = np.random.default_rng(0)
        n = cal.n_observations
        pair = make_pair(cal, "a", np.zeros(n), rng.uniform(1, 4, n))
        strict = required_capacity(
            [pair], 16.0, CoSCommitment(theta=0.999, deadline_minutes=10_000)
        )
        loose = required_capacity(
            [pair], 16.0, CoSCommitment(theta=0.6, deadline_minutes=10_000)
        )
        assert loose.required_capacity <= strict.required_capacity

    def test_cos1_peak_is_floor(self, cal):
        pair = constant_pair(cal, "a", 5.0, 0.0)
        result = required_capacity(
            [pair], 16.0, CoSCommitment(theta=0.5, deadline_minutes=60)
        )
        assert result.fits
        assert result.required_capacity >= 5.0 - 1e-9

    def test_does_not_fit_when_cos1_exceeds_limit(self, cal):
        pair = constant_pair(cal, "a", 20.0, 0.0)
        result = required_capacity(
            [pair], 16.0, CoSCommitment(theta=0.5, deadline_minutes=60)
        )
        assert not result.fits
        assert result.required_capacity == float("inf")

    def test_does_not_fit_when_limit_insufficient(self, cal):
        # Constant CoS2 demand of 30 with theta 0.99 cannot fit in 16.
        pair = constant_pair(cal, "a", 0.0, 30.0)
        result = required_capacity(
            [pair], 16.0, CoSCommitment(theta=0.99, deadline_minutes=0)
        )
        assert not result.fits

    def test_result_satisfies_commitment(self, cal):
        rng = np.random.default_rng(1)
        n = cal.n_observations
        pair = make_pair(cal, "a", rng.uniform(0, 1, n), rng.uniform(0, 4, n))
        commitment = CoSCommitment(theta=0.9, deadline_minutes=120)
        result = required_capacity([pair], 16.0, commitment, tolerance=0.005)
        assert result.fits
        assert result.report is not None
        assert result.report.satisfies(commitment, cal)

    def test_minimality_within_tolerance(self, cal):
        rng = np.random.default_rng(2)
        n = cal.n_observations
        pair = make_pair(cal, "a", np.zeros(n), rng.uniform(0, 4, n))
        commitment = CoSCommitment(theta=0.9, deadline_minutes=60)
        tolerance = 0.01
        result = required_capacity([pair], 16.0, commitment, tolerance=tolerance)
        from repro.placement.simulator import SingleServerSimulator

        simulator = SingleServerSimulator.from_pairs([pair])
        below = result.required_capacity - 2 * tolerance
        if below > 0:
            assert not simulator.evaluate(below).satisfies(commitment, cal)

    def test_rejects_bad_parameters(self, cal):
        pair = constant_pair(cal, "a", 1.0, 1.0)
        commitment = CoSCommitment(theta=0.9)
        with pytest.raises(SimulationError):
            required_capacity([pair], 0.0, commitment)
        with pytest.raises(SimulationError):
            required_capacity([pair], 16.0, commitment, tolerance=0.0)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from([0.6, 0.9, 0.99]),
    )
    def test_search_sound_property(self, seed, theta):
        """Whenever the search reports fits, the reported capacity truly
        satisfies the commitment; larger capacities also satisfy it."""
        calendar = TraceCalendar(weeks=1, slot_minutes=120)
        rng = np.random.default_rng(seed)
        n = calendar.n_observations
        pair = make_pair(
            calendar, "a", rng.uniform(0, 2, n), rng.uniform(0, 5, n)
        )
        commitment = CoSCommitment(theta=theta, deadline_minutes=240)
        result = required_capacity([pair], 16.0, commitment, tolerance=0.01)
        if result.fits:
            from repro.placement.simulator import SingleServerSimulator

            simulator = SingleServerSimulator.from_pairs([pair])
            assert simulator.evaluate(result.required_capacity).satisfies(
                commitment, calendar
            )
            assert simulator.evaluate(16.0).satisfies(commitment, calendar)
