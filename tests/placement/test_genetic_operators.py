"""Property tests for the genetic operators themselves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cos import CoSCommitment
from repro.placement.evaluation import PlacementEvaluator
from repro.placement.genetic import GeneticPlacementSearch, GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.calendar import TraceCalendar

N_WORKLOADS = 6
N_SERVERS = 5


@pytest.fixture(scope="module")
def search():
    calendar = TraceCalendar(weeks=1, slot_minutes=360)
    rng = np.random.default_rng(3)
    n = calendar.n_observations
    pairs = [
        CoSAllocationPair(
            f"w{i}",
            AllocationTrace(f"w{i}.c1", rng.uniform(0, 1, n), calendar),
            AllocationTrace(f"w{i}.c2", rng.uniform(0, 2, n), calendar),
        )
        for i in range(N_WORKLOADS)
    ]
    evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.9))
    pool = ResourcePool(homogeneous_servers(N_SERVERS, cpus=16))
    return GeneticPlacementSearch(
        evaluator, pool, GeneticSearchConfig(seed=0)
    )


assignments = st.lists(
    st.integers(min_value=0, max_value=N_SERVERS - 1),
    min_size=N_WORKLOADS,
    max_size=N_WORKLOADS,
).map(tuple)


class TestCrossover:
    @settings(max_examples=40, deadline=None)
    @given(assignments, assignments, st.integers(0, 2**31 - 1))
    def test_child_genes_come_from_parents(self, search, a, b, seed):
        rng = np.random.default_rng(seed)
        child = search._crossover(a, b, rng)
        assert len(child) == N_WORKLOADS
        for index, gene in enumerate(child):
            assert gene in (a[index], b[index])

    @settings(max_examples=10, deadline=None)
    @given(assignments, st.integers(0, 2**31 - 1))
    def test_self_crossover_is_identity(self, search, a, seed):
        rng = np.random.default_rng(seed)
        assert search._crossover(a, a, rng) == a


class TestMutation:
    @settings(max_examples=40, deadline=None)
    @given(assignments, st.integers(0, 2**31 - 1))
    def test_mutation_preserves_length_and_range(self, search, a, seed):
        rng = np.random.default_rng(seed)
        mutated = search._mutate(a, rng)
        assert len(mutated) == N_WORKLOADS
        assert all(0 <= gene < N_SERVERS for gene in mutated)

    @settings(max_examples=40, deadline=None)
    @given(assignments, st.integers(0, 2**31 - 1))
    def test_mutation_never_adds_servers(self, search, a, seed):
        """The mutation migrates one server's workloads onto the others,
        so the used-server set never grows (it usually shrinks)."""
        rng = np.random.default_rng(seed)
        mutated = search._mutate(a, rng)
        before = set(a)
        after = set(mutated)
        if len(before) > 1:
            assert after <= before
            assert len(after) <= len(before)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, N_SERVERS - 1), st.integers(0, 2**31 - 1))
    def test_single_server_assignment_moves_whole_group(
        self, search, server, seed
    ):
        """With only one used server the victim's workloads must go to
        some other server (all of them together or scattered)."""
        a = tuple([server] * N_WORKLOADS)
        rng = np.random.default_rng(seed)
        mutated = search._mutate(a, rng)
        assert server not in set(mutated) or mutated == a
        # They must land on valid servers.
        assert all(0 <= gene < N_SERVERS for gene in mutated)


class TestEvaluateDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(assignments)
    def test_evaluate_is_deterministic(self, search, a):
        first = search.evaluate(a)
        second = search.evaluate(a)
        assert first.score == second.score
        assert first.feasible == second.feasible
