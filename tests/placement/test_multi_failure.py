"""Tests for multi-node failure planning (the paper's Section III note)."""

import math

import pytest

from repro.core.cos import PoolCommitments
from repro.core.qos import QoSPolicy, case_study_qos
from repro.core.translation import QoSTranslator
from repro.exceptions import PlacementError
from repro.placement.consolidation import Consolidator
from repro.placement.failure import FailurePlanner
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.calendar import TraceCalendar
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

SEARCH = GeneticSearchConfig(
    seed=0, max_generations=8, stall_generations=3, population_size=8
)


@pytest.fixture(scope="module")
def setup():
    calendar = TraceCalendar(weeks=1, slot_minutes=60)
    generator = WorkloadGenerator(seed=17)
    specs = [
        WorkloadSpec(name=f"w{i}", peak_cpus=1.5 + 0.4 * i) for i in range(6)
    ]
    demands = generator.generate_many(specs, calendar)
    translator = QoSTranslator(PoolCommitments.of(theta=0.9))
    policy = QoSPolicy(
        normal=case_study_qos(m_degr_percent=0),
        failure=case_study_qos(m_degr_percent=3),
    )
    pool = ResourcePool(homogeneous_servers(8, cpus=16))
    pairs = [translator.translate(d, policy.normal).pair for d in demands]
    normal = Consolidator(
        pool, translator.commitments.cos2, config=SEARCH
    ).consolidate(pairs)
    planner = FailurePlanner(translator, config=SEARCH)
    return demands, policy, pool, normal, planner


class TestPlanMulti:
    def test_case_count_is_combinations(self, setup):
        demands, policy, pool, normal, planner = setup
        if normal.servers_used < 2:
            pytest.skip("needs at least two used servers")
        report = planner.plan_multi(
            demands, policy, pool, normal, concurrent_failures=2
        )
        assert len(report.cases) == math.comb(normal.servers_used, 2)

    def test_labels_and_affected(self, setup):
        demands, policy, pool, normal, planner = setup
        if normal.servers_used < 2:
            pytest.skip("needs at least two used servers")
        report = planner.plan_multi(
            demands, policy, pool, normal, concurrent_failures=2
        )
        for case in report.cases:
            servers = case.failed_servers
            assert len(servers) == 2
            expected_affected = {
                name
                for server in servers
                for name in normal.assignment[server]
            }
            assert set(case.affected_workloads) == expected_affected
            if case.result is not None:
                for server in servers:
                    assert server not in case.result.assignment

    def test_single_failure_special_case_matches_plan(self, setup):
        demands, policy, pool, normal, planner = setup
        single = planner.plan(demands, policy, pool, normal)
        multi = planner.plan_multi(
            demands, policy, pool, normal, concurrent_failures=1
        )
        assert {case.label for case in single.cases} == {
            case.label for case in multi.cases
        }

    def test_rejects_bad_counts(self, setup):
        demands, policy, pool, normal, planner = setup
        with pytest.raises(PlacementError):
            planner.plan_multi(
                demands, policy, pool, normal, concurrent_failures=0
            )
        with pytest.raises(PlacementError):
            planner.plan_multi(
                demands,
                policy,
                pool,
                normal,
                concurrent_failures=normal.servers_used + 1,
            )

    def test_double_failure_harder_than_single(self, setup):
        """Double failures can only be infeasible-or-equal relative to
        single ones in terms of surviving-server counts."""
        demands, policy, pool, normal, planner = setup
        if normal.servers_used < 2:
            pytest.skip("needs at least two used servers")
        double = planner.plan_multi(
            demands, policy, pool, normal, concurrent_failures=2
        )
        for case in double.cases:
            if case.result is not None:
                # 2 of 8 servers are gone.
                assert case.servers_used <= 6
