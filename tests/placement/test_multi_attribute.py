"""Tests for multi-attribute placement (the future-work extension)."""

import numpy as np
import pytest

from repro.core.cos import CoSCommitment
from repro.exceptions import PlacementError
from repro.placement.genetic import GeneticSearchConfig
from repro.placement.multi_attribute import (
    MultiAttributeConsolidator,
    MultiAttributeEvaluator,
)
from repro.resources.pool import ResourcePool
from repro.resources.server import ServerSpec
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.calendar import TraceCalendar

SEARCH = GeneticSearchConfig(
    seed=0, max_generations=6, stall_generations=2, population_size=6
)


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=60)


def constant_pair(cal, name, cos1_level, cos2_level, attribute):
    n = cal.n_observations
    return CoSAllocationPair(
        name,
        AllocationTrace(f"{name}.cos1", np.full(n, cos1_level), cal, attribute),
        AllocationTrace(f"{name}.cos2", np.full(n, cos2_level), cal, attribute),
    )


def make_inputs(cal, n_workloads=4, cpu=1.0, mem=8.0):
    cpu_pairs = [
        constant_pair(cal, f"w{i}", cpu / 2, cpu / 2, "cpu")
        for i in range(n_workloads)
    ]
    mem_pairs = [
        constant_pair(cal, f"w{i}", mem, 0.0, "mem")
        for i in range(n_workloads)
    ]
    return {"cpu": cpu_pairs, "mem": mem_pairs}


def big_server(name="s0", cpus=16, mem=64.0):
    return ServerSpec(name, cpus=cpus, attributes={"mem": mem})


class TestEvaluator:
    def test_fits_when_all_attributes_fit(self, cal):
        evaluator = MultiAttributeEvaluator(
            make_inputs(cal), CoSCommitment(theta=0.9)
        )
        evaluation = evaluator.evaluate_group([0, 1], big_server())
        assert evaluation.fits
        assert 0 < evaluation.utilization <= 1

    def test_memory_can_be_the_binding_attribute(self, cal):
        # CPU is tiny but memory is 8 units/workload on a 16-unit server:
        # only two workloads fit by memory.
        inputs = make_inputs(cal, n_workloads=3, cpu=0.5, mem=8.0)
        evaluator = MultiAttributeEvaluator(inputs, CoSCommitment(theta=0.9))
        server = big_server(mem=16.0)
        assert evaluator.evaluate_group([0, 1], server).fits
        assert not evaluator.evaluate_group([0, 1, 2], server).fits

    def test_utilization_is_max_across_attributes(self, cal):
        inputs = make_inputs(cal, n_workloads=1, cpu=1.0, mem=32.0)
        evaluator = MultiAttributeEvaluator(inputs, CoSCommitment(theta=0.9))
        evaluation = evaluator.evaluate_group([0], big_server(mem=64.0))
        # Memory runs at 0.5 while CPU runs at 1/16.
        assert evaluation.utilization == pytest.approx(0.5, abs=0.05)

    def test_per_attribute_commitments(self, cal):
        inputs = make_inputs(cal)
        evaluator = MultiAttributeEvaluator(
            inputs,
            {
                "cpu": CoSCommitment(theta=0.6),
                "mem": CoSCommitment(theta=0.99),
            },
        )
        assert evaluator.evaluate_group([0], big_server()).fits

    def test_mismatched_workloads_rejected(self, cal):
        inputs = make_inputs(cal)
        inputs["mem"] = inputs["mem"][:-1]
        with pytest.raises(PlacementError):
            MultiAttributeEvaluator(inputs, CoSCommitment(theta=0.9))

    def test_missing_server_attribute_rejected(self, cal):
        evaluator = MultiAttributeEvaluator(
            make_inputs(cal), CoSCommitment(theta=0.9)
        )
        cpu_only = ServerSpec("bare", cpus=16)
        with pytest.raises(PlacementError):
            evaluator.evaluate_group([0], cpu_only)

    def test_empty_attributes_rejected(self):
        with pytest.raises(PlacementError):
            MultiAttributeEvaluator({}, CoSCommitment(theta=0.9))

    def test_primary_is_cpu_when_present(self, cal):
        evaluator = MultiAttributeEvaluator(
            make_inputs(cal), CoSCommitment(theta=0.9)
        )
        assert evaluator.primary == "cpu"


class TestConsolidator:
    def test_memory_bound_placement_uses_more_servers(self, cal):
        """With memory dominating, the placement must spread by memory
        even though CPU alone would fit on one server."""
        pool = ResourcePool(
            [big_server(f"s{i}", cpus=16, mem=16.0) for i in range(4)]
        )
        inputs = make_inputs(cal, n_workloads=4, cpu=0.5, mem=8.0)
        consolidator = MultiAttributeConsolidator(
            pool, CoSCommitment(theta=0.9), config=SEARCH
        )
        result = consolidator.consolidate(inputs)
        # 4 workloads x 8 mem on 16-mem servers: at least 2 servers.
        assert result.servers_used >= 2
        placed = sorted(
            name for names in result.assignment.values() for name in names
        )
        assert placed == [f"w{i}" for i in range(4)]

    def test_cpu_only_view_consolidates_tighter(self, cal):
        """Ignoring memory (single-attribute consolidation) packs onto
        fewer servers — quantifying what the extension adds."""
        from repro.placement.consolidation import Consolidator

        pool = ResourcePool(
            [big_server(f"s{i}", cpus=16, mem=16.0) for i in range(4)]
        )
        inputs = make_inputs(cal, n_workloads=4, cpu=0.5, mem=8.0)
        multi = MultiAttributeConsolidator(
            pool, CoSCommitment(theta=0.9), config=SEARCH
        ).consolidate(inputs)
        cpu_only = Consolidator(
            pool, CoSCommitment(theta=0.9), config=SEARCH
        ).consolidate(inputs["cpu"])
        assert cpu_only.servers_used <= multi.servers_used

    def test_greedy_algorithms_work(self, cal):
        pool = ResourcePool(
            [big_server(f"s{i}", cpus=16, mem=32.0) for i in range(4)]
        )
        inputs = make_inputs(cal, n_workloads=4)
        consolidator = MultiAttributeConsolidator(
            pool, CoSCommitment(theta=0.9), config=SEARCH
        )
        for algorithm in ("first_fit", "best_fit"):
            result = consolidator.consolidate(inputs, algorithm=algorithm)
            assert result.servers_used >= 1
