"""Tests for the percentile-capping baseline."""

import numpy as np
import pytest

from repro.baselines.percentile_cap import (
    degraded_run_profile,
    percentile_cap_pair,
)
from repro.exceptions import QoSSpecificationError
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=5)


@pytest.fixture
def plateau_trace(cal):
    """A long sustained plateau above the 97th percentile."""
    values = np.ones(cal.n_observations)
    values[100:150] = 5.0  # 50 slots = 250 min sustained burst, ~2.5%
    return DemandTrace("plateau", values, cal)


class TestPercentileCapPair:
    def test_all_demand_in_cos1(self, plateau_trace):
        pair = percentile_cap_pair(plateau_trace, 97.0)
        assert pair.cos2.peak() == 0.0
        assert pair.cos1.peak() > 0.0

    def test_cap_applied(self, plateau_trace):
        pair = percentile_cap_pair(plateau_trace, 97.0, burst_factor=2.0)
        cap = plateau_trace.percentile(97.0, method="higher")
        assert pair.cos1.peak() == pytest.approx(cap * 2.0)

    def test_full_percentile_keeps_peak(self, plateau_trace):
        pair = percentile_cap_pair(plateau_trace, 100.0, burst_factor=1.0)
        assert pair.cos1.peak() == pytest.approx(plateau_trace.peak())

    def test_rejects_bad_parameters(self, plateau_trace):
        with pytest.raises(QoSSpecificationError):
            percentile_cap_pair(plateau_trace, 0.0)
        with pytest.raises(QoSSpecificationError):
            percentile_cap_pair(plateau_trace, 101.0)
        with pytest.raises(QoSSpecificationError):
            percentile_cap_pair(plateau_trace, 97.0, burst_factor=0)


class TestDegradedRunProfile:
    def test_exposes_sustained_outage(self, plateau_trace):
        """The baseline's weakness: a 3% budget spent in one long run."""
        profile = degraded_run_profile(plateau_trace, 97.0)
        assert profile.degraded_fraction <= 0.03
        assert profile.longest_run_minutes == 50 * 5
        assert profile.n_runs == 1

    def test_smooth_trace_no_runs(self, cal):
        trace = DemandTrace("c", np.ones(cal.n_observations), cal)
        profile = degraded_run_profile(trace, 97.0)
        assert profile.n_runs == 0
        assert profile.longest_run_minutes == 0
        assert profile.mean_run_minutes == 0

    def test_rejects_bad_percentile(self, plateau_trace):
        with pytest.raises(QoSSpecificationError):
            degraded_run_profile(plateau_trace, 0.0)
