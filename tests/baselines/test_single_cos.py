"""Tests for the all-guaranteed baseline."""

import numpy as np
import pytest

from repro.baselines.single_cos import single_cos_pair
from repro.core.cos import PoolCommitments
from repro.core.qos import case_study_qos
from repro.core.translation import QoSTranslator
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=5)


@pytest.fixture
def trace(cal):
    rng = np.random.default_rng(0)
    return DemandTrace("w", rng.lognormal(0, 0.8, cal.n_observations), cal)


class TestSingleCosPair:
    def test_everything_guaranteed(self, trace):
        pair = single_cos_pair(trace, case_study_qos())
        assert pair.cos2.peak() == 0.0
        assert pair.cos2_fraction() == 0.0

    def test_m_degr_cap_still_applies(self, trace):
        strict = single_cos_pair(trace, case_study_qos(m_degr_percent=0))
        relaxed = single_cos_pair(trace, case_study_qos(m_degr_percent=3))
        assert relaxed.cos1.peak() <= strict.cos1.peak()

    def test_burst_factor_applied(self, trace):
        pair = single_cos_pair(trace, case_study_qos(m_degr_percent=0))
        assert pair.cos1.peak() == pytest.approx(trace.peak() / 0.5)

    def test_peak_cos1_exceeds_two_cos_translation(self, trace):
        """The guaranteed baseline forces a larger CoS1 footprint than the
        portfolio split, which is what costs servers at placement time."""
        translator = QoSTranslator(PoolCommitments.of(theta=0.6))
        two_cos = translator.translate(trace, case_study_qos()).pair
        one_cos = single_cos_pair(trace, case_study_qos())
        assert one_cos.peak_cos1() > two_cos.peak_cos1()
