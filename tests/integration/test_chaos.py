"""Integration tests: plans survive injected faults and kills unchanged.

The acceptance bar for the resilience layer is *bit-identical plans*: a
run peppered with scheduled worker crashes and corrupted results, or a
run killed mid-pipeline and resumed from its checkpoints, must hash to
exactly the plan an undisturbed run produces. Recovery may cost retries
and respawns (visible in the resilience summary) but never decisions.
"""

import pytest

from repro.core.cos import PoolCommitments
from repro.core.framework import ROpus
from repro.core.qos import QoSPolicy, case_study_qos
from repro.engine import ExecutionEngine
from repro.engine.checkpoint import Checkpointer
from repro.engine.faults import FaultPlan
from repro.engine.resilience import ResilienceConfig
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.calendar import TraceCalendar
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

FAST_SEARCH = GeneticSearchConfig(
    seed=0, max_generations=8, stall_generations=3, population_size=10
)


def _no_sleep(_delay):
    return None


@pytest.fixture(scope="module")
def demands():
    calendar = TraceCalendar(weeks=1, slot_minutes=60)
    generator = WorkloadGenerator(seed=13)
    specs = [
        WorkloadSpec(name=f"app{i}", peak_cpus=1.0 + 0.5 * i)
        for i in range(6)
    ]
    return generator.generate_many(specs, calendar)


@pytest.fixture(scope="module")
def policy():
    return QoSPolicy(normal=case_study_qos(m_degr_percent=3))


def _framework(engine=None, checkpointer=None, search_config=FAST_SEARCH):
    return ROpus(
        PoolCommitments.of(theta=0.95),
        ResourcePool(homogeneous_servers(6, cpus=16)),
        search_config=search_config,
        engine=engine if engine is not None else ExecutionEngine.serial(),
        checkpointer=checkpointer,
    )


class TestChaosEquivalence:
    def test_seeded_faults_do_not_change_the_plan(self, demands, policy):
        baseline = _framework().plan(demands, policy, plan_failures=False)

        fault_plan = FaultPlan.seeded(
            11, horizon=4096, crash_rate=0.01, corrupt_rate=0.01
        )
        config = ResilienceConfig(fault_plan=fault_plan, sleep=_no_sleep)
        with ExecutionEngine.resilient(config=config) as chaotic_engine:
            chaotic = _framework(engine=chaotic_engine).plan(
                demands, policy, plan_failures=False
            )

        assert chaotic.plan_hash() == baseline.plan_hash()
        summary = chaotic.resilience_summary()
        assert summary.get("resilience.faults_injected", 0) > 0
        assert summary.get("resilience.retries", 0) > 0

    def test_resilience_summary_surfaces_in_plan_summary(self, demands, policy):
        config = ResilienceConfig(
            fault_plan=FaultPlan.of(corrupt_result=[0]), sleep=_no_sleep
        )
        with ExecutionEngine.resilient(config=config) as engine:
            plan = _framework(engine=engine).plan(
                demands, policy, plan_failures=False
            )
        resilience = plan.summary()["resilience"]
        assert resilience["resilience.corrupt_results"] == 1

    def test_fault_free_resilient_run_reports_no_recovery(
        self, demands, policy
    ):
        with ExecutionEngine.resilient(
            config=ResilienceConfig(sleep=_no_sleep)
        ) as engine:
            plan = _framework(engine=engine).plan(
                demands, policy, plan_failures=False
            )
        assert plan.resilience_summary() == {}


class TestCheckpointResume:
    def test_killed_run_resumes_to_identical_plan(
        self, demands, policy, tmp_path
    ):
        baseline = _framework().plan(demands, policy)

        class _Killed(Exception):
            """Stands in for the SIGKILL that ends the first run."""

        # The full run checkpoints five times (three GA generations,
        # two failure cases); killing on the fourth save lands the kill
        # mid-failure-sweep, after the search already checkpointed.
        class _Interrupting(Checkpointer):
            remaining = 4

            def save(self, key, payload):
                stuck = super().save(key, payload)
                type(self).remaining -= 1
                if type(self).remaining <= 0:
                    raise _Killed
                return stuck

        directory = tmp_path / "ckpt"
        with pytest.raises(_Killed):
            _framework(checkpointer=_Interrupting(directory)).plan(
                demands, policy
            )

        resumed_framework = _framework(checkpointer=Checkpointer(directory))
        resumed = resumed_framework.plan(demands, policy)
        assert resumed.plan_hash() == baseline.plan_hash()
        summary = resumed.resilience_summary()
        assert summary.get("checkpoint.reads", 0) > 0
        assert summary.get("placement.ga_resumes", 0) >= 1

    def test_mid_sweep_kill_resumes_completed_cases(
        self, demands, policy, tmp_path
    ):
        baseline = _framework().plan(demands, policy)
        n_cases = len(baseline.failure_report.cases)
        assert n_cases > 1

        class _Killed(Exception):
            """Stands in for the SIGKILL that ends the first run."""

        # Die *before* persisting the second failure case: the sweep
        # must already have journaled the first one by then (cases are
        # saved as they complete, not after the whole sweep returns).
        class _KilledMidSweep(Checkpointer):
            def save(self, key, payload):
                if key.startswith("failure/") and any(
                    stored.startswith("failure/") for stored in self.keys()
                ):
                    raise _Killed
                return super().save(key, payload)

        directory = tmp_path / "ckpt"
        with pytest.raises(_Killed):
            _framework(checkpointer=_KilledMidSweep(directory)).plan(
                demands, policy
            )
        survivor_store = Checkpointer(directory)
        persisted = [
            key for key in survivor_store.keys() if key.startswith("failure/")
        ]
        assert len(persisted) == 1

        resumed = _framework(checkpointer=survivor_store).plan(
            demands, policy
        )
        assert resumed.plan_hash() == baseline.plan_hash()
        resumes = resumed.resilience_summary().get("failure.case_resumes", 0)
        assert resumes == 1

    def test_checkpointed_run_equals_uncheckpointed(
        self, demands, policy, tmp_path
    ):
        baseline = _framework().plan(demands, policy, plan_failures=False)
        checkpointed = _framework(
            checkpointer=Checkpointer(tmp_path / "ckpt")
        ).plan(demands, policy, plan_failures=False)
        assert checkpointed.plan_hash() == baseline.plan_hash()

    def test_completed_run_rotates_its_checkpoints_out(
        self, demands, policy, tmp_path
    ):
        store = Checkpointer(tmp_path / "ckpt")
        _framework(checkpointer=store).plan(demands, policy)
        assert store.keys() == []

    def test_changed_inputs_never_resume_stale_checkpoints(
        self, demands, policy, tmp_path
    ):
        class _Killed(Exception):
            pass

        class _Interrupting(Checkpointer):
            remaining = 2

            def save(self, key, payload):
                stuck = super().save(key, payload)
                type(self).remaining -= 1
                if type(self).remaining <= 0:
                    raise _Killed
                return stuck

        directory = tmp_path / "ckpt"
        with pytest.raises(_Killed):
            _framework(checkpointer=_Interrupting(directory)).plan(
                demands, policy
            )
        assert Checkpointer(directory).keys() != []

        # Re-plan over *different inputs* (another search seed) against
        # the same checkpoint directory: the leftover documents carry
        # the old inputs' fingerprint, so nothing resumes — the genetic
        # search restarts instead of silently inheriting the old run's
        # (possibly converged) population.
        changed = GeneticSearchConfig(
            seed=1, max_generations=8, stall_generations=3, population_size=10
        )
        replan = _framework(
            checkpointer=Checkpointer(directory), search_config=changed
        ).plan(demands, policy)
        fresh = _framework(search_config=changed).plan(demands, policy)
        assert replan.plan_hash() == fresh.plan_hash()
        summary = replan.resilience_summary()
        assert summary.get("placement.ga_resumes", 0) == 0
        assert summary.get("failure.case_resumes", 0) == 0
        assert summary.get("checkpoint.fingerprint_mismatches", 0) >= 1
