"""Seed robustness: the paper-shape results are not artifacts of one RNG seed.

EXPERIMENTS.md reports numbers for the pinned ensemble seed; these tests
re-check the headline *shapes* on different seeds (with one-week traces
to stay fast). If a claim only held for seed 2006 it would be an
artifact, not a reproduction.
"""

import numpy as np
import pytest

from repro.core.cos import PoolCommitments
from repro.core.degradation import max_cap_reduction_bound
from repro.core.qos import case_study_qos
from repro.core.translation import QoSTranslator
from repro.workloads.ensemble import case_study_ensemble

SEEDS = [7, 1234, 99991]


@pytest.fixture(scope="module", params=SEEDS)
def ensemble(request):
    return case_study_ensemble(seed=request.param, weeks=1)


def test_fig7_shape_across_seeds(ensemble):
    """M_degr reductions bounded by 26.7% with many apps at the bound."""
    translator = QoSTranslator(PoolCommitments.of(theta=0.6))
    qos = case_study_qos(m_degr_percent=3)
    reductions = np.array(
        [translator.translate(trace, qos).cap_reduction for trace in ensemble]
    )
    bound = max_cap_reduction_bound(0.66, 0.9)
    assert (reductions <= bound + 1e-9).all()
    assert np.count_nonzero(reductions >= bound - 0.01) >= 5


def test_fig8_shape_across_seeds(ensemble):
    """T_degr=30min collapses the degraded fraction below the budget."""
    for theta, mean_ceiling in [(0.95, 0.005), (0.6, 0.012)]:
        translator = QoSTranslator(PoolCommitments.of(theta=theta))
        qos = case_study_qos(m_degr_percent=3, t_degr_minutes=30)
        fractions = np.array(
            [
                translator.translate(trace, qos).degraded_fraction
                for trace in ensemble
            ]
        )
        # The hard guarantee: never above the budget.
        assert (fractions <= 0.03 + 1e-9).all()
        # The Figure 8 shape: on average far below the budget (per-app
        # maxima are noisy on one-week traces, so the mean is the stable
        # cross-seed statistic).
        assert fractions.mean() <= mean_ceiling


def test_theta_interaction_across_seeds(ensemble):
    """Reduction lost to T_degr is larger at theta=0.6 than 0.95."""
    qos_open = case_study_qos(m_degr_percent=3)
    qos_tight = case_study_qos(m_degr_percent=3, t_degr_minutes=30)
    penalty = {}
    for theta in (0.6, 0.95):
        translator = QoSTranslator(PoolCommitments.of(theta=theta))
        open_reductions = np.array(
            [translator.translate(t, qos_open).cap_reduction for t in ensemble]
        )
        tight_reductions = np.array(
            [translator.translate(t, qos_tight).cap_reduction for t in ensemble]
        )
        penalty[theta] = float((open_reductions - tight_reductions).mean())
    assert penalty[0.6] >= penalty[0.95] - 1e-9


def test_figure6_shape_across_seeds(ensemble):
    """Leftmost apps spikier than rightmost, every seed."""
    from repro.traces.ops import percentile_profile

    p97 = np.array(
        [percentile_profile(trace, [97])[97.0] for trace in ensemble]
    )
    assert p97[:8].mean() < p97[-8:].mean()
