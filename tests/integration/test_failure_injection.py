"""Failure-injection tests: the pipeline fails loudly, not wrongly.

Capacity planning that silently produces an unsound plan is worse than
one that refuses. These tests drive the full pipeline into corners —
impossible workloads, empty pools, degenerate traces, unachievable
commitments — and check that every failure surfaces as a typed
exception (or an explicitly infeasible report), never as a bogus plan.
"""

import numpy as np
import pytest

from repro.core.cos import PoolCommitments
from repro.core.framework import ROpus
from repro.core.qos import QoSPolicy, case_study_qos
from repro.exceptions import (
    CapacityError,
    InfeasiblePlacementError,
    PlacementError,
    ROpusError,
)
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import ServerSpec, homogeneous_servers
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace

FAST = GeneticSearchConfig(
    seed=0, max_generations=4, stall_generations=2, population_size=6
)


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=60)


def framework_for(pool, theta=0.9):
    return ROpus(PoolCommitments.of(theta=theta), pool, search_config=FAST)


class TestImpossibleWorkloads:
    def test_workload_larger_than_every_server(self, cal):
        demand = DemandTrace(
            "huge", np.full(cal.n_observations, 30.0), cal
        )
        framework = framework_for(
            ResourcePool(homogeneous_servers(4, cpus=16))
        )
        policy = QoSPolicy(normal=case_study_qos(m_degr_percent=0))
        with pytest.raises(InfeasiblePlacementError):
            framework.plan([demand], policy, plan_failures=False)

    def test_aggregate_exceeds_pool(self, cal):
        demands = [
            DemandTrace(f"w{i}", np.full(cal.n_observations, 7.0), cal)
            for i in range(6)
        ]
        framework = framework_for(
            ResourcePool(homogeneous_servers(2, cpus=16))
        )
        policy = QoSPolicy(normal=case_study_qos(m_degr_percent=0))
        with pytest.raises(PlacementError):
            framework.plan(demands, policy, plan_failures=False)

    def test_error_is_catchable_as_ropus_error(self, cal):
        demand = DemandTrace("huge", np.full(cal.n_observations, 99.0), cal)
        framework = framework_for(ResourcePool(homogeneous_servers(1)))
        policy = QoSPolicy(normal=case_study_qos())
        with pytest.raises(ROpusError):
            framework.plan([demand], policy, plan_failures=False)


class TestDegenerateInputs:
    def test_empty_pool(self):
        with pytest.raises(CapacityError):
            ResourcePool([ServerSpec("a", 4), ServerSpec("a", 4)])

    def test_zero_demand_ensemble_plans_trivially(self, cal):
        demands = [
            DemandTrace(f"w{i}", np.zeros(cal.n_observations), cal)
            for i in range(3)
        ]
        framework = framework_for(
            ResourcePool(homogeneous_servers(2, cpus=16))
        )
        policy = QoSPolicy(normal=case_study_qos())
        plan = framework.plan(demands, policy, plan_failures=False)
        # Zero demand fits anywhere; the plan must still place everyone.
        placed = sorted(
            name
            for names in plan.consolidation.assignment.values()
            for name in names
        )
        assert placed == ["w0", "w1", "w2"]

    def test_single_observation_spike(self, cal):
        values = np.zeros(cal.n_observations)
        values[17] = 6.0
        demand = DemandTrace("spike", values, cal)
        framework = framework_for(
            ResourcePool(homogeneous_servers(1, cpus=16))
        )
        policy = QoSPolicy(normal=case_study_qos(m_degr_percent=3))
        plan = framework.plan([demand], policy, plan_failures=False)
        assert plan.servers_used == 1

    def test_one_workload_many_servers(self, cal):
        demand = DemandTrace("w", np.ones(cal.n_observations), cal)
        framework = framework_for(
            ResourcePool(homogeneous_servers(10, cpus=16))
        )
        policy = QoSPolicy(normal=case_study_qos())
        plan = framework.plan([demand], policy, plan_failures=False)
        assert plan.servers_used == 1


class TestUnachievableCommitments:
    def test_failure_report_flags_spare_needed(self, cal):
        """When the pool is exactly full, the failure sweep must report
        that a spare is needed rather than invent capacity."""
        # Constant demand 3.5 -> allocation 7: two per 16-CPU server fit
        # (14), three do not (21). Four workloads exactly fill two
        # servers; losing either leaves no feasible re-placement.
        demands = [
            DemandTrace(f"w{i}", np.full(cal.n_observations, 3.5), cal)
            for i in range(4)
        ]
        pool = ResourcePool(homogeneous_servers(2, cpus=16))
        framework = framework_for(pool)
        policy = QoSPolicy(normal=case_study_qos(m_degr_percent=0))
        plan = framework.plan(demands, policy, plan_failures=True)
        assert plan.servers_used == 2
        assert plan.failure_report is not None
        assert plan.failure_report.spare_server_needed

    def test_genetic_search_surfaces_infeasibility(self, cal):
        from repro.core.cos import CoSCommitment
        from repro.placement.evaluation import PlacementEvaluator
        from repro.placement.genetic import GeneticPlacementSearch
        from repro.traces.allocation import AllocationTrace, CoSAllocationPair

        n = cal.n_observations
        pairs = [
            CoSAllocationPair(
                f"w{i}",
                AllocationTrace(f"w{i}.c1", np.full(n, 12.0), cal),
                AllocationTrace(f"w{i}.c2", np.zeros(n), cal),
            )
            for i in range(3)
        ]
        evaluator = PlacementEvaluator(pairs, CoSCommitment(theta=0.9))
        pool = ResourcePool(homogeneous_servers(2, cpus=16))
        search = GeneticPlacementSearch(evaluator, pool, FAST)
        with pytest.raises(PlacementError):
            search.run((0, 0, 1))
