"""Integration tests: the full translate -> place -> verify pipeline.

These tests close the loop the paper's guarantees rest on: after the QoS
translation and a feasible placement, replaying the workloads through the
per-container scheduler on each server must leave every application
compliant with its QoS requirement.
"""

import pytest

from repro.core.cos import PoolCommitments
from repro.core.framework import ROpus
from repro.core.qos import QoSPolicy, case_study_qos
from repro.metrics.compliance import check_compliance
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.scheduler import CapacityScheduler
from repro.resources.server import homogeneous_servers
from repro.traces.calendar import TraceCalendar
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

FAST_SEARCH = GeneticSearchConfig(
    seed=0, max_generations=10, stall_generations=3, population_size=10
)


@pytest.fixture(scope="module")
def demands():
    calendar = TraceCalendar(weeks=1, slot_minutes=15)
    generator = WorkloadGenerator(seed=31)
    specs = [
        WorkloadSpec(
            name=f"app{i}",
            peak_cpus=1.0 + 0.5 * i,
            noise_sigma=0.25,
            spike_rate_per_week=2.0,
            spike_magnitude=2.0,
        )
        for i in range(8)
    ]
    return generator.generate_many(specs, calendar)


@pytest.mark.parametrize("theta", [0.6, 0.95])
def test_placed_workloads_meet_qos_under_replay(demands, theta):
    """End-to-end: translate, place, replay, check compliance.

    The scheduler grants CoS1 before CoS2; because the placement satisfied
    the theta commitment and each application's allocation was shaped by
    the translation, every application must end up compliant.
    """
    qos = case_study_qos(m_degr_percent=3, t_degr_minutes=None)
    policy = QoSPolicy(normal=qos)
    framework = ROpus(
        PoolCommitments.of(theta=theta),
        ResourcePool(homogeneous_servers(8, cpus=16)),
        search_config=FAST_SEARCH,
    )
    plan = framework.plan(demands, policy, plan_failures=False)
    demand_by_name = {demand.name: demand for demand in demands}

    for server_name, workload_names in plan.consolidation.assignment.items():
        pairs = [
            plan.translations[name].pair for name in workload_names
        ]
        capacity = framework.pool[server_name].capacity_of("cpu")
        result = CapacityScheduler(capacity).run(pairs)
        assert result.overbooked_slots.size == 0
        for row, name in enumerate(result.workload_names):
            demand = demand_by_name[name]
            granted = result.granted_total()[row]
            report = check_compliance(demand, granted, qos)
            assert report.meets_band_budget, (
                f"{name} exceeds M_degr budget on {server_name}: "
                f"{report.degraded_fraction:.4%}"
            )
            # The theta commitment is statistical (aggregated over the
            # days of a week per slot), so an individual observation can
            # occasionally receive less than a theta share and pierce
            # U_degr; the paper's contract bounds how often, not never.
            assert report.violation_fraction <= 0.01, (
                f"{name} pierces U_degr too often on {server_name}: "
                f"{report.violation_fraction:.4%}"
            )


def test_failure_planning_keeps_all_workloads(demands):
    policy = QoSPolicy(
        normal=case_study_qos(m_degr_percent=0),
        failure=case_study_qos(m_degr_percent=3, t_degr_minutes=30),
    )
    framework = ROpus(
        PoolCommitments.of(theta=0.9),
        ResourcePool(homogeneous_servers(8, cpus=16)),
        search_config=FAST_SEARCH,
    )
    plan = framework.plan(demands, policy)
    assert plan.failure_report is not None
    for case in plan.failure_report.cases:
        if case.result is None:
            continue
        placed = sorted(
            name for names in case.result.assignment.values() for name in names
        )
        assert placed == sorted(demand.name for demand in demands)


def test_commitment_measured_on_each_placed_server(demands):
    """The measured theta on every used server honours the commitment."""
    from repro.placement.simulator import SingleServerSimulator

    theta = 0.9
    policy = QoSPolicy(normal=case_study_qos(m_degr_percent=3))
    framework = ROpus(
        PoolCommitments.of(theta=theta),
        ResourcePool(homogeneous_servers(8, cpus=16)),
        search_config=FAST_SEARCH,
    )
    plan = framework.plan(demands, policy, plan_failures=False)
    for server_name, workload_names in plan.consolidation.assignment.items():
        pairs = [plan.translations[name].pair for name in workload_names]
        simulator = SingleServerSimulator.from_pairs(pairs)
        capacity = framework.pool[server_name].capacity_of("cpu")
        report = simulator.evaluate(capacity)
        assert report.cos1_fits
        assert report.theta_measured >= theta - 1e-9


def test_required_capacity_bounded_by_server_size(demands):
    policy = QoSPolicy(normal=case_study_qos(m_degr_percent=3))
    framework = ROpus(
        PoolCommitments.of(theta=0.9),
        ResourcePool(homogeneous_servers(8, cpus=16)),
        search_config=FAST_SEARCH,
    )
    plan = framework.plan(demands, policy, plan_failures=False)
    for required in plan.consolidation.required_by_server.values():
        assert 0 < required <= 16.0 + 1e-9
