"""Cross-component equivalence and invariant tests.

These tests tie independent implementations of the same concept
together: the vectorised placement simulator vs the step-wise
scheduler, the standalone theta metric vs the simulator's measurement,
and the translation's closed-form guarantees vs brute-force replay.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cos import CoSCommitment, PoolCommitments
from repro.core.qos import case_study_qos
from repro.core.translation import QoSTranslator
from repro.metrics.access import measure_theta
from repro.placement.simulator import SingleServerSimulator
from repro.resources.scheduler import CapacityScheduler
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace


def random_pairs(calendar, n_workloads, seed, cos1_scale=1.0, cos2_scale=3.0):
    rng = np.random.default_rng(seed)
    n = calendar.n_observations
    return [
        CoSAllocationPair(
            f"w{i}",
            AllocationTrace(
                f"w{i}.c1", rng.uniform(0, cos1_scale, n), calendar
            ),
            AllocationTrace(
                f"w{i}.c2", rng.uniform(0, cos2_scale, n), calendar
            ),
        )
        for i in range(n_workloads)
    ]


class TestSimulatorSchedulerEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=2.0, max_value=12.0),
    )
    def test_deferral_agreement_single_workload(self, seed, capacity):
        """For one workload the aggregate fluid FIFO (simulator) and the
        step-wise scheduler are the same queue: ages agree exactly."""
        calendar = TraceCalendar(weeks=1, slot_minutes=120)
        pairs = random_pairs(calendar, 1, seed)
        simulator_report = SingleServerSimulator.from_pairs(pairs).evaluate(
            capacity
        )
        scheduler_result = CapacityScheduler(capacity).run(pairs)
        assert (
            simulator_report.max_deferred_slots
            == scheduler_result.worst_backlog_age()
        )

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=2.0, max_value=12.0),
        st.integers(min_value=2, max_value=4),
    )
    def test_aggregate_fifo_lower_bounds_proportional_share(
        self, seed, capacity, n_workloads
    ):
        """With several workloads the scheduler shares proportionally
        within CoS2, so an individual workload can wait *longer* than
        the aggregate FIFO bound — never shorter. (FIFO minimises the
        maximum delay among work-conserving disciplines.)"""
        calendar = TraceCalendar(weeks=1, slot_minutes=120)
        pairs = random_pairs(calendar, n_workloads, seed)
        simulator_report = SingleServerSimulator.from_pairs(pairs).evaluate(
            capacity
        )
        scheduler_result = CapacityScheduler(capacity).run(pairs)
        assert (
            scheduler_result.worst_backlog_age()
            >= simulator_report.max_deferred_slots
        )

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=2.0, max_value=12.0),
    )
    def test_granted_volume_agreement(self, seed, capacity):
        """Total CoS2 volume granted on request matches between models."""
        calendar = TraceCalendar(weeks=1, slot_minutes=120)
        pairs = random_pairs(calendar, 3, seed)
        simulator_report = SingleServerSimulator.from_pairs(pairs).evaluate(
            capacity
        )
        scheduler_result = CapacityScheduler(capacity).run(
            pairs, carry_forward=False
        )
        assert simulator_report.cos2_satisfied_on_request == pytest.approx(
            float(scheduler_result.cos2_granted.sum()), rel=1e-9
        )


class TestThetaMetricAgreement:
    def test_single_cos_simulator_matches_metric(self):
        """With no CoS1 load, the simulator's theta equals the standalone
        Section IV measurement on the aggregate CoS2 trace."""
        calendar = TraceCalendar(weeks=2, slot_minutes=60)
        pairs = random_pairs(calendar, 3, seed=5, cos1_scale=0.0)
        aggregate = AllocationTrace(
            "agg",
            np.sum([pair.cos2.values for pair in pairs], axis=0),
            calendar,
        )
        for capacity in (2.0, 4.0, 6.0):
            simulator_theta = (
                SingleServerSimulator.from_pairs(pairs)
                .evaluate(capacity)
                .theta_measured
            )
            metric_theta = measure_theta(aggregate, capacity)
            assert simulator_theta == pytest.approx(metric_theta, rel=1e-12)


class TestTranslationReplayInvariants:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from([0.6, 0.95]),
    )
    def test_isolated_workload_never_degrades_beyond_guarantee(
        self, seed, theta
    ):
        """A translated workload running *alone* on a server big enough
        for its peak allocation always meets the acceptable band: the
        degradation budget only exists for contention."""
        calendar = TraceCalendar(weeks=1, slot_minutes=60)
        rng = np.random.default_rng(seed)
        demand = DemandTrace(
            "w", rng.lognormal(0, 0.8, calendar.n_observations), calendar
        )
        qos = case_study_qos(m_degr_percent=0)
        translator = QoSTranslator(PoolCommitments.of(theta=theta))
        result = translator.translate(demand, qos)
        capacity = result.pair.peak_allocation() + 1e-9
        scheduler = CapacityScheduler(max(capacity, 1e-6))
        run = scheduler.run([result.pair])
        granted = run.granted_total()[0]
        active = demand.values > 0
        utilization = np.zeros_like(granted)
        positive = granted > 0
        utilization[positive] = demand.values[positive] / granted[positive]
        assert (utilization[active] <= qos.u_high + 1e-9).all()

    def test_commitment_kept_implies_budget_kept(self):
        """If a server's capacity satisfies the CoS commitment for a set
        of translated workloads, replay keeps every workload within its
        M_degr budget."""
        from repro.metrics.compliance import check_compliance
        from repro.placement.required_capacity import required_capacity

        calendar = TraceCalendar(weeks=1, slot_minutes=30)
        rng = np.random.default_rng(12)
        demands = [
            DemandTrace(
                f"w{i}",
                rng.lognormal(0, 0.7, calendar.n_observations),
                calendar,
            )
            for i in range(4)
        ]
        theta = 0.9
        qos = case_study_qos(m_degr_percent=3)
        translator = QoSTranslator(PoolCommitments.of(theta=theta))
        pairs = [translator.translate(demand, qos).pair for demand in demands]
        commitment = CoSCommitment(theta=theta, deadline_minutes=60)
        search = required_capacity(pairs, capacity_limit=64.0, commitment=commitment)
        assert search.fits
        run = CapacityScheduler(search.required_capacity).run(pairs)
        for row, demand in enumerate(demands):
            report = check_compliance(demand, run.granted_total()[row], qos)
            assert report.meets_band_budget, (
                f"{demand.name}: {report.degraded_fraction:.4%} degraded"
            )


class TestPublicApi:
    def test_all_names_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_alls_resolve(self):
        import importlib

        for module_name in (
            "repro.core",
            "repro.traces",
            "repro.workloads",
            "repro.resources",
            "repro.placement",
            "repro.metrics",
            "repro.baselines",
            "repro.util",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name}"
