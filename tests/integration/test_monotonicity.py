"""Property tests: the planning pipeline respects monotonicity.

Sanity harness for the failure tier, over randomized ensembles and
topologies:

* relaxing the CoS2 commitment (lower theta) never increases the
  capacity a fixed set of allocations needs;
* relaxing the QoS contract (more allowed degradation) never increases
  a workload's translated capacity cap;
* adding a server never makes the failure sweep worse;
* the spare-sizing curve is monotone non-increasing as the failure
  scope shrinks (zone -> rack -> server).

``derandomize=True`` keeps the examples a deterministic function of the
test body, so the suite cannot flake on a rare draw; ``first_fit``
keeps each pipeline run deterministic and fast.
"""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.cos import PoolCommitments
from repro.core.qos import QoSPolicy, case_study_qos
from repro.core.translation import QoSTranslator
from repro.exceptions import PlacementError
from repro.placement.consolidation import Consolidator
from repro.placement.evaluation import required_capacity
from repro.placement.failure import FailurePlanner
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import ServerSpec, homogeneous_servers
from repro.traces.calendar import TraceCalendar
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

SEARCH = GeneticSearchConfig(
    seed=0, max_generations=6, stall_generations=2, population_size=8
)
CALENDAR = TraceCalendar(weeks=1, slot_minutes=60)
# The capacity search is a binary search with absolute tolerance 0.01;
# comparisons between two independent searches see up to twice that.
SEARCH_SLACK = 0.03

HEAVY = settings(
    max_examples=5,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
LIGHT = settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _demands(seed, n):
    generator = WorkloadGenerator(seed=seed)
    specs = [
        WorkloadSpec(name=f"w{i}", peak_cpus=1.5 + 0.4 * i, noise_sigma=0.15)
        for i in range(n)
    ]
    return generator.generate_many(specs, CALENDAR)


def _normal_plan(translator, demands, qos, pool):
    pairs = [translator.translate(d, qos).pair for d in demands]
    consolidator = Consolidator(
        pool, translator.commitments.cos2, config=SEARCH
    )
    try:
        return consolidator.consolidate(pairs, "first_fit")
    except PlacementError:
        return None


class TestCommitmentMonotonicity:
    @LIGHT
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=2, max_value=4),
        theta_lo=st.sampled_from([0.5, 0.6, 0.7, 0.8]),
        theta_hi=st.sampled_from([0.9, 0.95, 0.99]),
    )
    def test_relaxing_theta_never_needs_more_capacity(
        self, seed, n, theta_lo, theta_hi
    ):
        """For fixed allocations, a weaker CoS2 promise is never dearer."""
        demands = _demands(seed, n)
        translator = QoSTranslator(PoolCommitments.of(theta=0.9))
        qos = case_study_qos(m_degr_percent=3)
        pairs = [translator.translate(d, qos).pair for d in demands]
        relaxed = required_capacity(
            pairs, 1e9, PoolCommitments.of(theta=theta_lo).cos2
        ).required_capacity
        strict = required_capacity(
            pairs, 1e9, PoolCommitments.of(theta=theta_hi).cos2
        ).required_capacity
        assert relaxed <= strict + SEARCH_SLACK

    @LIGHT
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        m_lo=st.sampled_from([0.0, 0.5, 1.0]),
        m_hi=st.sampled_from([3.0, 5.0, 10.0]),
    )
    def test_relaxing_m_degr_never_raises_the_cap(self, seed, m_lo, m_hi):
        """Allowing more degradation never increases D_new_max."""
        (demand,) = _demands(seed, 1)
        translator = QoSTranslator(PoolCommitments.of(theta=0.9))
        strict = translator.translate(
            demand, case_study_qos(m_degr_percent=m_lo)
        )
        relaxed = translator.translate(
            demand, case_study_qos(m_degr_percent=m_hi)
        )
        assert relaxed.d_new_max <= strict.d_new_max + 1e-9
        assert relaxed.breakpoint <= strict.breakpoint


class TestFailureTierMonotonicity:
    @HEAVY
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=3, max_value=5),
        racks=st.integers(min_value=2, max_value=3),
    )
    def test_adding_a_server_never_worsens_the_sweep(self, seed, n, racks):
        demands = _demands(seed, n)
        translator = QoSTranslator(PoolCommitments.of(theta=0.9))
        policy = QoSPolicy(
            normal=case_study_qos(m_degr_percent=0),
            failure=case_study_qos(m_degr_percent=3),
        )
        servers = homogeneous_servers(6, cpus=10, racks=racks, zones=2)
        pool = ResourcePool(servers)
        normal = _normal_plan(translator, demands, policy.normal, pool)
        assume(normal is not None)
        planner = FailurePlanner(translator, config=SEARCH)
        before = planner.plan(
            demands, policy, pool, normal, algorithm="first_fit"
        )
        bigger = ResourcePool(
            list(servers)
            + [ServerSpec(name="extra", cpus=10, rack="rack-x", zone="zone-x")]
        )
        after = planner.plan(
            demands, policy, bigger, normal, algorithm="first_fit"
        )
        assert len(after.infeasible_cases) <= len(before.infeasible_cases)
        if before.all_supported:
            assert after.all_supported

    @HEAVY
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=3, max_value=5),
        racks=st.integers(min_value=2, max_value=3),
        cpus=st.sampled_from([8, 10, 12]),
    )
    def test_spare_curve_monotone_in_failure_scope(
        self, seed, n, racks, cpus
    ):
        """Shrinking the failure scope never needs more spares."""
        demands = _demands(seed, n)
        translator = QoSTranslator(PoolCommitments.of(theta=0.9))
        policy = QoSPolicy(
            normal=case_study_qos(m_degr_percent=0),
            failure=case_study_qos(m_degr_percent=3),
        )
        pool = ResourcePool(
            homogeneous_servers(6, cpus=cpus, racks=racks, zones=2)
        )
        normal = _normal_plan(translator, demands, policy.normal, pool)
        assume(normal is not None)
        planner = FailurePlanner(translator, config=SEARCH)
        curve = planner.spare_sizing_curve(
            demands, policy, pool, normal,
            max_spares=2, algorithm="first_fit",
        )
        assert curve.monotone_in_scope()
        spares = {point.scope: point.spares_needed for point in curve.points}
        # Single-server loss is one rack-loss subset: never needs more.
        if spares["rack"] is not None:
            assert spares["server"] is not None
            assert spares["server"] <= spares["rack"]
