"""Kernel-selection equivalence across the planning pipeline.

The ``kernel`` knob changes how required capacity is computed, never
what plan comes out:

* ``"batch"`` is bit-identical to ``"scalar"`` — same assignments, same
  per-server required capacities;
* ``"analytic"`` may land on a different point of the same tolerance
  interval, so plans must agree structurally and every per-server
  required capacity must stay within the search tolerance;
* the failure sweep's shared scratch (``share_sweep_cache``) memoises
  pure functions and must be invisible in the results.
"""

import pytest

from repro.core.cos import PoolCommitments
from repro.core.framework import ROpus
from repro.core.qos import QoSPolicy, case_study_qos
from repro.engine import ExecutionEngine
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.calendar import TraceCalendar
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

TOLERANCE = 0.01
FAST_SEARCH = GeneticSearchConfig(
    seed=11, max_generations=6, stall_generations=3, population_size=8
)


@pytest.fixture(scope="module")
def demands():
    calendar = TraceCalendar(weeks=1, slot_minutes=60)
    generator = WorkloadGenerator(seed=17)
    specs = [
        WorkloadSpec(name=f"w{i}", peak_cpus=1.0 + 0.5 * i) for i in range(5)
    ]
    return generator.generate_many(specs, calendar)


@pytest.fixture(scope="module")
def policy():
    return QoSPolicy(
        normal=case_study_qos(m_degr_percent=0),
        failure=case_study_qos(m_degr_percent=3, t_degr_minutes=30),
    )


def plan_with(demands, policy, **kwargs):
    framework = ROpus(
        PoolCommitments.of(theta=0.9),
        ResourcePool(homogeneous_servers(5, cpus=16)),
        search_config=FAST_SEARCH,
        engine=ExecutionEngine.serial(),
        tolerance=TOLERANCE,
        **kwargs,
    )
    return framework.plan(demands, policy, plan_failures=True)


def failure_view(report):
    return [
        (case.label, case.feasible, case.servers_used)
        for case in report.cases
    ]


class TestKernelEquivalence:
    def test_batch_is_bit_identical_to_scalar(self, demands, policy):
        scalar = plan_with(
            demands, policy, kernel="scalar", share_sweep_cache=False
        )
        batch = plan_with(
            demands, policy, kernel="batch", share_sweep_cache=False
        )
        assert dict(scalar.consolidation.assignment) == dict(
            batch.consolidation.assignment
        )
        assert dict(scalar.consolidation.required_by_server) == dict(
            batch.consolidation.required_by_server
        )
        assert failure_view(scalar.failure_report) == failure_view(
            batch.failure_report
        )

    def test_analytic_matches_scalar_within_tolerance(self, demands, policy):
        scalar = plan_with(
            demands, policy, kernel="scalar", share_sweep_cache=False
        )
        analytic = plan_with(
            demands, policy, kernel="analytic", share_sweep_cache=False
        )
        assert dict(scalar.consolidation.assignment) == dict(
            analytic.consolidation.assignment
        )
        scalar_required = dict(scalar.consolidation.required_by_server)
        analytic_required = dict(analytic.consolidation.required_by_server)
        assert set(scalar_required) == set(analytic_required)
        for server, required in scalar_required.items():
            assert abs(analytic_required[server] - required) <= (
                TOLERANCE + 1e-9
            )
        assert failure_view(scalar.failure_report) == failure_view(
            analytic.failure_report
        )

    def test_sweep_cache_sharing_is_invisible(self, demands, policy):
        cold = plan_with(
            demands, policy, kernel="batch", share_sweep_cache=False
        )
        shared = plan_with(
            demands, policy, kernel="batch", share_sweep_cache=True
        )
        assert dict(cold.consolidation.assignment) == dict(
            shared.consolidation.assignment
        )
        assert dict(cold.consolidation.required_by_server) == dict(
            shared.consolidation.required_by_server
        )
        assert failure_view(cold.failure_report) == failure_view(
            shared.failure_report
        )
