"""Integration tests for the hierarchical (sharded) planning pipeline.

Three contracts:

* ``sharding="off"`` is *bit-for-bit* the pre-refactor pipeline — a
  plan composed by hand from the original pieces (translate, one
  monolithic ``Consolidator.consolidate``, ``FailurePlanner.plan``)
  hashes identically to what the staged facade produces;
* a sharded run killed mid-shard-wave resumes the already-planned
  shards from their checkpoints and still converges to the exact plan
  of an undisturbed run;
* sharding trades little quality for its scalability: on a small
  ensemble the sharded plan stays within a modest factor of the
  monolithic one and places every workload exactly once.
"""

import pytest

from repro.core.cos import PoolCommitments
from repro.core.framework import CapacityPlan, ROpus
from repro.core.qos import QoSPolicy, case_study_qos
from repro.engine.checkpoint import Checkpointer
from repro.placement.consolidation import Consolidator
from repro.placement.failure import FailurePlanner
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.calendar import TraceCalendar
from repro.workloads.ensemble import case_study_ensemble
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

FAST_SEARCH = GeneticSearchConfig(
    seed=0, max_generations=8, stall_generations=3, population_size=10
)


@pytest.fixture(scope="module")
def policy():
    return QoSPolicy(normal=case_study_qos(m_degr_percent=3))


@pytest.fixture(scope="module")
def paper_demands():
    """The 26-application case study at a test-friendly calendar."""
    return case_study_ensemble(seed=2006, weeks=1, slot_minutes=30)


@pytest.fixture(scope="module")
def small_demands():
    calendar = TraceCalendar(weeks=1, slot_minutes=30)
    generator = WorkloadGenerator(seed=17)
    specs = [
        WorkloadSpec(
            name=f"w{i:02d}",
            peak_cpus=1.0 + 0.3 * i,
            noise_sigma=0.2 + 0.02 * i,
            spike_rate_per_week=float(i % 3),
            spike_magnitude=2.0,
        )
        for i in range(12)
    ]
    return generator.generate_many(specs, calendar)


def _paper_pool():
    return ResourcePool(homogeneous_servers(12, cpus=16))


def _small_pool():
    return ResourcePool(homogeneous_servers(10, cpus=32))


def _framework(pool, checkpointer=None, **kwargs):
    return ROpus(
        PoolCommitments.of(theta=0.9),
        pool,
        search_config=FAST_SEARCH,
        checkpointer=checkpointer,
        **kwargs,
    )


class TestOffPathParity:
    """``sharding="off"`` must equal the pre-refactor pipeline exactly."""

    @pytest.mark.parametrize("plan_failures", [False, True])
    def test_plan_hash_matches_hand_composed_pipeline(
        self, paper_demands, policy, plan_failures
    ):
        framework = _framework(_paper_pool())
        staged = framework.plan(
            paper_demands, policy, plan_failures=plan_failures
        )

        # The pre-refactor pipeline, composed by hand from the original
        # pieces: translate every workload, run one monolithic
        # consolidation over the whole pool, then (optionally) sweep
        # failure what-ifs against the resulting placement.
        reference = _framework(_paper_pool())
        translations = reference.translate(paper_demands, policy)
        pairs = [result.pair for result in translations.values()]
        consolidation = Consolidator(
            reference.pool,
            reference.commitments.cos2,
            config=FAST_SEARCH,
            engine=reference.engine,
        ).consolidate(pairs, algorithm="genetic")
        failure_report = None
        if plan_failures:
            failure_report = FailurePlanner(
                reference.translator,
                config=FAST_SEARCH,
                engine=reference.engine,
            ).plan(
                paper_demands,
                policy,
                reference.pool,
                consolidation,
                relax_all=True,
                algorithm="genetic",
            )
        manual = CapacityPlan(
            translations=translations,
            consolidation=consolidation,
            failure_report=failure_report,
        )

        assert staged.plan_hash() == manual.plan_hash()
        assert staged.sharding is None

    def test_off_is_the_default(self, small_demands, policy):
        framework = _framework(_small_pool())
        assert not framework.sharding_policy.enabled
        plan = framework.plan(small_demands, policy, plan_failures=False)
        assert plan.sharding is None
        assert plan.consolidation.algorithm == "genetic"


class TestShardedKillResume:
    def test_kill_mid_shard_wave_resumes_completed_shards(
        self, small_demands, policy, tmp_path
    ):
        def sharded(checkpointer):
            return _framework(
                _small_pool(),
                checkpointer=checkpointer,
                sharding=3,
                cluster_seed=7,
            )

        baseline = sharded(None).plan(
            small_demands, policy, plan_failures=False
        )
        assert baseline.sharding is not None
        assert baseline.sharding["shards"] >= 2

        class _Killed(Exception):
            """Stands in for the SIGKILL that ends the first run."""

        # Die before persisting the second shard: the wave must already
        # have journaled the first one (shards are saved per completed
        # wave, not after the whole placement stage returns).
        class _KilledMidWave(Checkpointer):
            def save(self, key, payload):
                if key.startswith("shard/") and any(
                    stored.startswith("shard/") for stored in self.keys()
                ):
                    raise _Killed
                return super().save(key, payload)

        directory = tmp_path / "ckpt"
        with pytest.raises(_Killed):
            sharded(_KilledMidWave(directory)).plan(
                small_demands, policy, plan_failures=False
            )
        survivor_store = Checkpointer(directory)
        persisted = [
            key for key in survivor_store.keys() if key.startswith("shard/")
        ]
        assert len(persisted) == 1

        resumed = sharded(survivor_store).plan(
            small_demands, policy, plan_failures=False
        )
        assert resumed.plan_hash() == baseline.plan_hash()
        resumes = resumed.resilience_summary().get(
            "placement.shard_resumes", 0
        )
        assert resumes == 1
        assert resumed.sharding["resumed_shards"] == 1

    def test_completed_sharded_run_rotates_checkpoints_out(
        self, small_demands, policy, tmp_path
    ):
        store = Checkpointer(tmp_path / "ckpt")
        _framework(
            _small_pool(), checkpointer=store, sharding=2, cluster_seed=7
        ).plan(small_demands, policy, plan_failures=False)
        assert store.keys() == []


class TestShardedQuality:
    def test_sharded_plan_places_everything_near_monolithic_cost(
        self, small_demands, policy
    ):
        monolithic = _framework(_small_pool()).plan(
            small_demands, policy, plan_failures=False
        )
        sharded = _framework(
            _small_pool(), sharding=2, cluster_seed=7
        ).plan(small_demands, policy, plan_failures=False)

        placed = sorted(
            name
            for names in sharded.consolidation.assignment.values()
            for name in names
        )
        assert placed == sorted(demand.name for demand in small_demands)
        assert sharded.consolidation.algorithm == "sharded-genetic"
        # Decomposition costs some optimality on a tiny ensemble (12
        # workloads split two ways lose real multiplexing diversity —
        # the paper-scale comparison lives in the scaling benchmark),
        # but never more than a modest factor.
        assert sharded.consolidation.sum_required <= (
            1.25 * monolithic.consolidation.sum_required
        )

    def test_sharded_summary_and_timings_surface_the_tier(
        self, small_demands, policy
    ):
        plan = _framework(
            _small_pool(), sharding=2, cluster_seed=7
        ).plan(small_demands, policy, plan_failures=False)
        summary = plan.summary()
        assert summary["sharding"]["shards"] == 2
        assert len(summary["sharding"]["shard_seconds"]) == 2
        for stage in ("clustering", "sharding", "placement", "refinement"):
            assert stage in plan.timings
        assert plan.counters.get("placement.shards") == 2

    def test_sharded_runs_are_deterministic(self, small_demands, policy):
        first = _framework(
            _small_pool(), sharding=3, cluster_seed=5
        ).plan(small_demands, policy, plan_failures=False)
        second = _framework(
            _small_pool(), sharding=3, cluster_seed=5
        ).plan(small_demands, policy, plan_failures=False)
        assert first.plan_hash() == second.plan_hash()

        def decisions(plan):
            # Everything in the tier's summary except wall-clock.
            return {
                key: value
                for key, value in plan.sharding.items()
                if key != "shard_seconds"
            }

        assert decisions(first) == decisions(second)

    def test_auto_sharding_on_a_small_ensemble_stays_single_shard(
        self, small_demands, policy
    ):
        # 12 workloads fit one auto shard (target 24/shard): the tier
        # runs but degenerates to a single sub-pool spanning the pool.
        plan = _framework(_small_pool(), sharding="auto").plan(
            small_demands, policy, plan_failures=False
        )
        assert plan.sharding["shards"] == 1
        assert plan.consolidation.algorithm == "sharded-genetic"
