"""Tests for stochastic demand components."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.noise import (
    ar1_lognormal_noise,
    background_floor,
    inject_spikes,
)


class TestAr1LognormalNoise:
    def test_length(self):
        assert ar1_lognormal_noise(100, rng=0).shape == (100,)

    def test_strictly_positive(self):
        noise = ar1_lognormal_noise(5000, sigma=0.5, rng=1)
        assert (noise > 0).all()

    def test_mean_near_one(self):
        noise = ar1_lognormal_noise(100_000, sigma=0.3, correlation=0.5, rng=2)
        assert noise.mean() == pytest.approx(1.0, abs=0.05)

    def test_zero_sigma_gives_ones(self):
        assert np.array_equal(ar1_lognormal_noise(10, sigma=0.0, rng=0), np.ones(10))

    def test_zero_length(self):
        assert ar1_lognormal_noise(0, rng=0).shape == (0,)

    def test_autocorrelation_positive(self):
        noise = np.log(ar1_lognormal_noise(20_000, sigma=0.3, correlation=0.9, rng=3))
        centered = noise - noise.mean()
        lag1 = np.dot(centered[:-1], centered[1:]) / np.dot(centered, centered)
        assert lag1 > 0.8

    def test_low_correlation_less_correlated(self):
        high = np.log(ar1_lognormal_noise(20_000, sigma=0.3, correlation=0.95, rng=4))
        low = np.log(ar1_lognormal_noise(20_000, sigma=0.3, correlation=0.1, rng=4))

        def lag1(series):
            centered = series - series.mean()
            return np.dot(centered[:-1], centered[1:]) / np.dot(centered, centered)

        assert lag1(low) < lag1(high)

    def test_reproducible(self):
        a = ar1_lognormal_noise(50, rng=7)
        b = ar1_lognormal_noise(50, rng=7)
        assert np.array_equal(a, b)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ar1_lognormal_noise(-1)
        with pytest.raises(ConfigurationError):
            ar1_lognormal_noise(10, sigma=-0.1)
        with pytest.raises(ConfigurationError):
            ar1_lognormal_noise(10, correlation=1.0)


class TestInjectSpikes:
    def test_no_spikes_at_zero_rate(self):
        values = np.ones(1000)
        result = inject_spikes(values, 0.0, 2.0, 4.0, slots_per_week=500, rng=0)
        assert np.array_equal(result, values)

    def test_input_not_modified(self):
        values = np.ones(1000)
        inject_spikes(values, 10.0, 3.0, 4.0, slots_per_week=500, rng=0)
        assert np.array_equal(values, np.ones(1000))

    def test_spikes_raise_values(self):
        values = np.ones(5000)
        result = inject_spikes(values, 5.0, 3.0, 6.0, slots_per_week=1000, rng=1)
        assert result.max() >= 3.0
        assert (result >= values - 1e-12).all()

    def test_spikes_are_contiguous(self):
        values = np.ones(5000)
        result = inject_spikes(values, 1.0, 5.0, 10.0, slots_per_week=5000, rng=5)
        spiked = result > 1.5
        if spiked.any():
            # At least one run longer than a single slot should exist for
            # a mean duration of 10.
            diffs = np.flatnonzero(np.diff(np.concatenate(([0], spiked.view(np.int8), [0]))))
            lengths = diffs[1::2] - diffs[0::2]
            assert lengths.max() >= 2

    def test_reproducible(self):
        values = np.ones(2000)
        a = inject_spikes(values, 3.0, 2.0, 4.0, slots_per_week=1000, rng=9)
        b = inject_spikes(values, 3.0, 2.0, 4.0, slots_per_week=1000, rng=9)
        assert np.array_equal(a, b)

    def test_rejects_bad_parameters(self):
        values = np.ones(10)
        with pytest.raises(ConfigurationError):
            inject_spikes(values, -1.0, 2.0, 4.0, slots_per_week=10)
        with pytest.raises(ConfigurationError):
            inject_spikes(values, 1.0, 0.5, 4.0, slots_per_week=10)
        with pytest.raises(ConfigurationError):
            inject_spikes(values, 1.0, 2.0, 0.5, slots_per_week=10)
        with pytest.raises(ConfigurationError):
            inject_spikes(values, 1.0, 2.0, 4.0, slots_per_week=0)
        with pytest.raises(ConfigurationError):
            inject_spikes(values, 1.0, 2.0, 4.0, slots_per_week=10, magnitude_tail=1.0)
        with pytest.raises(ConfigurationError):
            inject_spikes(np.ones((2, 2)), 1.0, 2.0, 4.0, slots_per_week=10)


class TestBackgroundFloor:
    def test_raises_to_floor(self):
        values = np.array([0.0, 0.5, 2.0])
        assert background_floor(values, 1.0).tolist() == [1.0, 1.0, 2.0]

    def test_rejects_negative_floor(self):
        with pytest.raises(ConfigurationError):
            background_floor(np.ones(3), -0.1)
