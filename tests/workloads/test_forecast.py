"""Tests for demand forecasting."""

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace
from repro.workloads.forecast import (
    estimate_weekly_growth,
    extrapolate_demand,
    extrapolate_ensemble,
)


@pytest.fixture
def cal():
    return TraceCalendar(weeks=4, slot_minutes=60)


def growing_trace(cal, weekly_growth, base=2.0, name="w", noise_seed=None):
    """A diurnal trace whose weekly level compounds at weekly_growth."""
    slots = cal.slots_per_week
    pattern = 1.0 + 0.5 * np.sin(np.linspace(0, 14 * np.pi, slots))
    weeks = [
        base * (weekly_growth**week) * pattern for week in range(cal.weeks)
    ]
    values = np.concatenate(weeks)
    if noise_seed is not None:
        rng = np.random.default_rng(noise_seed)
        values = values * rng.uniform(0.95, 1.05, values.shape)
    return DemandTrace(name, values, cal)


class TestEstimateWeeklyGrowth:
    def test_flat_trace(self, cal):
        estimate = estimate_weekly_growth(growing_trace(cal, 1.0))
        assert estimate.weekly_growth == pytest.approx(1.0, abs=1e-9)

    def test_recovers_known_growth(self, cal):
        estimate = estimate_weekly_growth(growing_trace(cal, 1.05))
        assert estimate.weekly_growth == pytest.approx(1.05, rel=1e-6)
        assert estimate.r_squared > 0.99

    def test_noisy_growth_recovered_approximately(self, cal):
        estimate = estimate_weekly_growth(
            growing_trace(cal, 1.1, noise_seed=0)
        )
        assert estimate.weekly_growth == pytest.approx(1.1, rel=0.02)

    def test_decline(self, cal):
        estimate = estimate_weekly_growth(growing_trace(cal, 0.9))
        assert estimate.weekly_growth == pytest.approx(0.9, rel=1e-6)

    def test_zero_week_gives_flat(self, cal):
        values = np.ones(cal.n_observations)
        values[: cal.slots_per_week] = 0.0
        estimate = estimate_weekly_growth(DemandTrace("w", values, cal))
        assert estimate.weekly_growth == 1.0
        assert estimate.r_squared == 0.0

    def test_needs_two_weeks(self):
        one_week = TraceCalendar(weeks=1, slot_minutes=60)
        trace = DemandTrace("w", np.ones(one_week.n_observations), one_week)
        with pytest.raises(TraceError):
            estimate_weekly_growth(trace)

    def test_weekly_means_reported(self, cal):
        estimate = estimate_weekly_growth(growing_trace(cal, 1.02))
        assert len(estimate.weekly_means) == 4
        assert estimate.weekly_means[3] > estimate.weekly_means[0]


class TestExtrapolateDemand:
    def test_zero_weeks_is_identity(self, cal):
        trace = growing_trace(cal, 1.05)
        assert extrapolate_demand(trace, 0) is trace

    def test_projection_scales_last_week(self, cal):
        trace = growing_trace(cal, 1.0, base=2.0)
        projected = extrapolate_demand(trace, 4, weekly_growth=1.1)
        # The projection's final week should be the input's last week
        # scaled by growth^4.
        last_input = trace.values[-cal.slots_per_week :]
        last_projected = projected.values[-cal.slots_per_week :]
        np.testing.assert_allclose(last_projected, last_input * 1.1**4)

    def test_projection_preserves_shape(self, cal):
        trace = growing_trace(cal, 1.02)
        projected = extrapolate_demand(trace, 8, weekly_growth=1.02)
        assert projected.calendar == trace.calendar
        assert projected.name == trace.name

    def test_growth_estimated_when_omitted(self, cal):
        trace = growing_trace(cal, 1.1)
        projected = extrapolate_demand(trace, 4)
        assert projected.peak() > trace.peak()

    def test_rejects_bad_parameters(self, cal):
        trace = growing_trace(cal, 1.0)
        with pytest.raises(TraceError):
            extrapolate_demand(trace, -1)
        with pytest.raises(TraceError):
            extrapolate_demand(trace, 2, weekly_growth=0.0)

    def test_flat_growth_projection_repeats_last_week(self, cal):
        trace = growing_trace(cal, 1.05)
        projected = extrapolate_demand(trace, 6, weekly_growth=1.0)
        last_week = trace.values[-cal.slots_per_week :]
        for week in range(cal.weeks):
            start = week * cal.slots_per_week
            np.testing.assert_allclose(
                projected.values[start : start + cal.slots_per_week],
                last_week,
            )


class TestExtrapolateEnsemble:
    def test_per_trace_growth(self, cal):
        traces = [
            growing_trace(cal, 1.1, name="fast"),
            growing_trace(cal, 1.0, name="flat"),
        ]
        projected = extrapolate_ensemble(
            traces, 4, {"fast": 1.1, "flat": 1.0}
        )
        assert projected[0].peak() > traces[0].peak()
        assert projected[1].peak() == pytest.approx(traces[1].peak())
