"""Tests for the workload generator."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.traces.calendar import TraceCalendar
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.patterns import flat_pattern


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=60)


class TestWorkloadSpec:
    def test_defaults(self):
        spec = WorkloadSpec(name="w")
        assert spec.peak_cpus == 2.0
        assert spec.spike_rate_per_week == 0.0

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="")

    def test_rejects_nonpositive_peak(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="w", peak_cpus=0)

    def test_rejects_negative_floor(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="w", floor_cpus=-1)

    def test_rejects_ceiling_below_floor(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="w", floor_cpus=1.0, ceiling_cpus=0.5)


class TestGenerate:
    def test_length_and_name(self, cal):
        trace = WorkloadGenerator(seed=1).generate(WorkloadSpec(name="w"), cal)
        assert trace.name == "w"
        assert len(trace) == cal.n_observations

    def test_reproducible_from_seed(self, cal):
        spec = WorkloadSpec(name="w", spike_rate_per_week=2.0)
        a = WorkloadGenerator(seed=5).generate(spec, cal)
        b = WorkloadGenerator(seed=5).generate(spec, cal)
        assert np.array_equal(a.values, b.values)

    def test_different_seeds_differ(self, cal):
        spec = WorkloadSpec(name="w")
        a = WorkloadGenerator(seed=5).generate(spec, cal)
        b = WorkloadGenerator(seed=6).generate(spec, cal)
        assert not np.array_equal(a.values, b.values)

    def test_different_names_independent_streams(self, cal):
        generator = WorkloadGenerator(seed=5)
        a = generator.generate(WorkloadSpec(name="a"), cal)
        b = generator.generate(WorkloadSpec(name="b"), cal)
        assert not np.array_equal(a.values, b.values)

    def test_floor_respected(self, cal):
        spec = WorkloadSpec(name="w", floor_cpus=0.5)
        trace = WorkloadGenerator(seed=2).generate(spec, cal)
        assert trace.values.min() >= 0.5

    def test_ceiling_respected(self, cal):
        spec = WorkloadSpec(
            name="w",
            peak_cpus=3.0,
            spike_rate_per_week=20.0,
            spike_magnitude=5.0,
            ceiling_cpus=4.0,
        )
        trace = WorkloadGenerator(seed=3).generate(spec, cal)
        assert trace.peak() <= 4.0

    def test_scale_roughly_matches_peak_cpus(self, cal):
        spec = WorkloadSpec(
            name="w", pattern=flat_pattern(), peak_cpus=4.0, noise_sigma=0.05
        )
        trace = WorkloadGenerator(seed=4).generate(spec, cal)
        assert trace.mean() == pytest.approx(4.0, rel=0.15)

    def test_spikes_add_tail(self, cal):
        base_spec = WorkloadSpec(
            name="w", pattern=flat_pattern(), peak_cpus=1.0, noise_sigma=0.05
        )
        spike_spec = WorkloadSpec(
            name="w",
            pattern=flat_pattern(),
            peak_cpus=1.0,
            noise_sigma=0.05,
            spike_rate_per_week=10.0,
            spike_magnitude=4.0,
        )
        generator = WorkloadGenerator(seed=8)
        calm = generator.generate(base_spec, cal)
        spiky = WorkloadGenerator(seed=8).generate(spike_spec, cal)
        assert spiky.peak() > 2 * calm.peak()


class TestGenerateMany:
    def test_unique_names_required(self, cal):
        generator = WorkloadGenerator(seed=1)
        specs = [WorkloadSpec(name="w"), WorkloadSpec(name="w")]
        with pytest.raises(ConfigurationError):
            generator.generate_many(specs, cal)

    def test_order_preserved(self, cal):
        generator = WorkloadGenerator(seed=1)
        specs = [WorkloadSpec(name=f"w{i}") for i in range(4)]
        traces = generator.generate_many(specs, cal)
        assert [trace.name for trace in traces] == ["w0", "w1", "w2", "w3"]
