"""Tests for the 26-application case-study ensemble."""

import numpy as np
import pytest

from repro.traces.ops import percentile_profile
from repro.exceptions import ConfigurationError
from repro.workloads.ensemble import (
    CASE_STUDY_APP_COUNT,
    case_study_ensemble,
    case_study_specs,
    scaled_ensemble,
    scaled_specs,
)


@pytest.fixture(scope="module")
def ensemble():
    # One week keeps the module fast; shape features hold at one week.
    return case_study_ensemble(seed=2006, weeks=1)


class TestSpecs:
    def test_app_count(self):
        assert len(case_study_specs()) == CASE_STUDY_APP_COUNT == 26

    def test_names_unique_and_ordered(self):
        names = [spec.name for spec in case_study_specs()]
        assert names == sorted(names)
        assert len(set(names)) == 26


class TestEnsembleShape:
    def test_count_and_calendar(self, ensemble):
        assert len(ensemble) == 26
        assert ensemble[0].calendar.slots_per_day == 288

    def test_reproducible(self):
        a = case_study_ensemble(seed=2006, weeks=1)
        b = case_study_ensemble(seed=2006, weeks=1)
        for x, y in zip(a, b):
            assert np.array_equal(x.values, y.values)

    def test_all_positive_demand(self, ensemble):
        for trace in ensemble:
            assert trace.values.min() > 0

    def test_leftmost_apps_are_spike_dominated(self, ensemble):
        """Figure 6: the first apps' 97th percentile is far below peak."""
        for trace in ensemble[:2]:
            profile = percentile_profile(trace, [97])
            assert profile[97.0] < 50.0

    def test_rightmost_apps_are_smooth(self, ensemble):
        """Figure 6: the last apps' 97th percentile is close to peak."""
        for trace in ensemble[-3:]:
            profile = percentile_profile(trace, [97])
            assert profile[97.0] > 60.0

    def test_spikiness_ordering_trend(self, ensemble):
        """First third should be spikier than last third on average."""
        def p97(trace):
            return percentile_profile(trace, [97])[97.0]

        first = np.mean([p97(trace) for trace in ensemble[:8]])
        last = np.mean([p97(trace) for trace in ensemble[-8:]])
        assert first < last

    def test_aggregate_scale_in_paper_regime(self):
        """Sum of peak demands supports a ~200-300 CPU allocation total."""
        demands = case_study_ensemble(seed=2006, weeks=4)
        total_peak = sum(trace.peak() for trace in demands)
        assert 80 <= total_peak <= 200

    def test_different_seed_changes_traces(self):
        a = case_study_ensemble(seed=1, weeks=1)
        b = case_study_ensemble(seed=2, weeks=1)
        assert not np.array_equal(a[0].values, b[0].values)


class TestScaledEnsemble:
    def test_spec_counts(self):
        for n_apps in (1, 13, 26, 27, 60, 104):
            assert len(scaled_specs(n_apps)) == n_apps

    def test_first_replica_is_the_case_study_verbatim(self):
        assert scaled_specs(26) == case_study_specs()

    def test_26_apps_reproduce_the_case_study_ensemble(self):
        scaled = scaled_ensemble(26, seed=2006, weeks=1)
        study = case_study_ensemble(seed=2006, weeks=1)
        assert [t.name for t in scaled] == [t.name for t in study]
        for a, b in zip(scaled, study):
            assert np.array_equal(a.values, b.values)

    def test_names_unique_at_scale(self):
        names = [spec.name for spec in scaled_specs(130)]
        assert len(set(names)) == 130

    def test_deterministic_in_its_inputs(self):
        a = scaled_ensemble(40, seed=7, weeks=1, slot_minutes=60)
        b = scaled_ensemble(40, seed=7, weeks=1, slot_minutes=60)
        for x, y in zip(a, b):
            assert x.name == y.name
            assert np.array_equal(x.values, y.values)

    def test_replica_peaks_are_perturbed_not_copied(self):
        specs = scaled_specs(78)
        base = {spec.name: spec.peak_cpus for spec in specs[:26]}
        for spec in specs[26:]:
            original = base[spec.name.rsplit("-r", 1)[0]]
            assert spec.peak_cpus != original
            assert 0.69 * original <= spec.peak_cpus <= 1.31 * original

    def test_replica_prefix_is_stable(self):
        # Replica K's perturbations must not depend on how many
        # replicas are requested (prefix property for reproducibility).
        short = scaled_specs(52)
        long = scaled_specs(104)
        assert long[:52] == short

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ConfigurationError):
            scaled_specs(0)
