"""Tests for diurnal demand patterns."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.traces.calendar import TraceCalendar
from repro.workloads.patterns import (
    DiurnalPattern,
    batch_window_pattern,
    business_hours_pattern,
    double_peak_pattern,
    flat_pattern,
)


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=5)


class TestDiurnalPattern:
    def test_shape_normalised_to_one(self):
        pattern = DiurnalPattern((0.5, 2.0, 1.0))
        assert max(pattern.daily_shape) == 1.0

    def test_render_length_and_range(self, cal):
        rendered = business_hours_pattern().render(cal)
        assert rendered.shape == (cal.n_observations,)
        assert rendered.min() >= 0.0
        assert rendered.max() <= 1.0 + 1e-12

    def test_render_resamples_resolution(self):
        pattern = DiurnalPattern((0.0, 1.0, 0.0, 0.5))
        hourly = pattern.render(TraceCalendar(weeks=1, slot_minutes=60))
        five_min = pattern.render(TraceCalendar(weeks=1, slot_minutes=5))
        assert hourly.shape == (168,)
        assert five_min.shape == (2016,)

    def test_day_weights_modulate(self, cal):
        pattern = business_hours_pattern()
        rendered = cal.slot_of_day_view(pattern.render(cal))
        weekday_peak = rendered[0, 0].max()
        sunday_peak = rendered[0, 6].max()
        assert sunday_peak < weekday_peak

    def test_rejects_wrong_weight_count(self):
        with pytest.raises(ConfigurationError):
            DiurnalPattern((1.0,), day_weights=(1.0, 1.0))

    def test_rejects_negative_shape(self):
        with pytest.raises(ConfigurationError):
            DiurnalPattern((1.0, -0.1))

    def test_rejects_all_zero_shape(self):
        with pytest.raises(ConfigurationError):
            DiurnalPattern((0.0, 0.0))

    def test_rejects_empty_shape(self):
        with pytest.raises(ConfigurationError):
            DiurnalPattern(())

    def test_weekly_tiling(self):
        pattern = flat_pattern()
        two_weeks = pattern.render(TraceCalendar(weeks=2, slot_minutes=60))
        one_week = pattern.render(TraceCalendar(weeks=1, slot_minutes=60))
        assert np.array_equal(two_weeks[:168], one_week)
        assert np.array_equal(two_weeks[168:], one_week)


class TestBusinessHours:
    def test_peak_during_business_day(self, cal):
        rendered = cal.slot_of_day_view(business_hours_pattern().render(cal))
        monday = rendered[0, 0]
        noon = monday[12 * 12]  # 12:00 at 5-minute slots
        midnight = monday[0]
        assert noon == pytest.approx(1.0, abs=0.05)
        assert midnight < 0.25

    def test_rejects_bad_hours(self):
        with pytest.raises(ConfigurationError):
            business_hours_pattern(ramp_start=10, peak_start=9, peak_end=17, wind_down=20)


class TestDoublePeak:
    def test_trough_between_peaks(self, cal):
        pattern = double_peak_pattern(morning_peak=10, afternoon_peak=15)
        rendered = cal.slot_of_day_view(pattern.render(cal))[0, 0]
        morning = rendered[10 * 12]
        lunch = rendered[int(12.5 * 12)]
        assert lunch < morning

    def test_rejects_bad_peaks(self):
        with pytest.raises(ConfigurationError):
            double_peak_pattern(morning_peak=15, afternoon_peak=10)

    def test_rejects_bad_trough(self):
        with pytest.raises(ConfigurationError):
            double_peak_pattern(trough_depth=1.5)


class TestBatchWindow:
    def test_window_is_hot(self, cal):
        pattern = batch_window_pattern(window_start=2, window_hours=3)
        rendered = cal.slot_of_day_view(pattern.render(cal))[0, 0]
        in_window = rendered[3 * 12]
        out_of_window = rendered[12 * 12]
        assert in_window > 0.9
        assert out_of_window < 0.2

    def test_window_wraps_midnight(self, cal):
        pattern = batch_window_pattern(window_start=23, window_hours=2)
        rendered = cal.slot_of_day_view(pattern.render(cal))[0, 0]
        assert rendered[int(23.5 * 12)] > 0.9

    def test_uniform_across_week(self, cal):
        pattern = batch_window_pattern()
        rendered = cal.slot_of_day_view(pattern.render(cal))
        assert np.allclose(rendered[0, 0], rendered[0, 6])

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            batch_window_pattern(window_start=25)
        with pytest.raises(ConfigurationError):
            batch_window_pattern(window_hours=0)


class TestFlat:
    def test_constant(self, cal):
        rendered = flat_pattern().render(cal)
        assert rendered.min() == rendered.max()

    def test_rejects_nonpositive_level(self):
        with pytest.raises(ConfigurationError):
            flat_pattern(level=0)
