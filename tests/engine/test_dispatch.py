"""Tests for the engine-level chunking helper."""

from repro.engine.dispatch import split_chunks


class TestSplitChunks:
    def test_preserves_order_and_partitions(self):
        items = list(range(11))
        chunks = split_chunks(items, 3)
        assert [item for chunk in chunks for item in chunk] == items
        assert len(chunks) == 3

    def test_sizes_differ_by_at_most_one(self):
        for n_items in range(1, 20):
            for n_chunks in range(1, 8):
                sizes = [
                    len(chunk)
                    for chunk in split_chunks(list(range(n_items)), n_chunks)
                ]
                assert max(sizes) - min(sizes) <= 1

    def test_never_more_chunks_than_items(self):
        assert len(split_chunks([1, 2], 5)) == 2
        assert split_chunks([1, 2], 5) == [(1,), (2,)]

    def test_at_least_one_chunk(self):
        assert split_chunks([1, 2, 3], 0) == [(1, 2, 3)]

    def test_old_genetic_alias_is_gone(self):
        import repro.placement.genetic as genetic

        assert not hasattr(genetic, "_split_chunks")
