"""Tests for the engine-level chunking helper (and its old alias)."""

import pytest

from repro.engine.dispatch import split_chunks


class TestSplitChunks:
    def test_preserves_order_and_partitions(self):
        items = list(range(11))
        chunks = split_chunks(items, 3)
        assert [item for chunk in chunks for item in chunk] == items
        assert len(chunks) == 3

    def test_sizes_differ_by_at_most_one(self):
        for n_items in range(1, 20):
            for n_chunks in range(1, 8):
                sizes = [
                    len(chunk)
                    for chunk in split_chunks(list(range(n_items)), n_chunks)
                ]
                assert max(sizes) - min(sizes) <= 1

    def test_never_more_chunks_than_items(self):
        assert len(split_chunks([1, 2], 5)) == 2
        assert split_chunks([1, 2], 5) == [(1,), (2,)]

    def test_at_least_one_chunk(self):
        assert split_chunks([1, 2, 3], 0) == [(1, 2, 3)]


class TestDeprecatedAlias:
    def test_genetic_reexport_warns_and_delegates(self):
        from repro.placement.genetic import _split_chunks

        with pytest.warns(DeprecationWarning, match="moved to"):
            chunks = _split_chunks([1, 2, 3, 4], 2)
        assert chunks == split_chunks([1, 2, 3, 4], 2)
