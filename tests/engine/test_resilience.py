"""Failure-mode tests for the fault-tolerant execution layer.

Each test drives one recovery path the resilience layer promises:
retried transient faults, SIGKILLed workers (a real ``os._exit`` in a
pool process), wedged workers against the task deadline, the broadcast
degradation to pickle, the parallel-to-serial ladder, and the bounded
give-up. Process-pool cases use tiny worker counts and payloads so the
whole module stays fast.
"""

from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.engine import ExecutionEngine
from repro.engine.faults import FaultPlan
from repro.engine.instrumentation import Instrumentation
from repro.engine.resilience import (
    ResilienceConfig,
    ResilientExecutor,
    backoff_delay,
    make_resilient_executor,
)
from repro.exceptions import (
    ConfigurationError,
    InfeasiblePlacementError,
    ResilienceError,
)


def _double(shared, item):
    return item * 2


def _add_offset(shared, item):
    offset = shared if shared is not None else 0
    return item + offset


def _raise_domain_error(shared, item):
    raise InfeasiblePlacementError(f"workload {item} fits nowhere")


def _no_sleep(_delay):
    return None


def _config(**overrides):
    overrides.setdefault("sleep", _no_sleep)
    overrides.setdefault("backoff_base_seconds", 0.0)
    return ResilienceConfig(**overrides)


def _instrumented(executor):
    instrumentation = Instrumentation()
    executor.attach_instrumentation(instrumentation)
    return instrumentation


class TestConfig:
    def test_defaults_valid(self):
        ResilienceConfig()

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(task_timeout_seconds=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(backoff_jitter=1.5)

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigurationError):
            ResilientExecutor(workers=0)


class TestBackoff:
    def test_no_jitter_is_pure_exponential(self):
        config = ResilienceConfig(backoff_jitter=0.0)
        assert backoff_delay(config, 0) == pytest.approx(0.05)
        assert backoff_delay(config, 1) == pytest.approx(0.10)
        assert backoff_delay(config, 2) == pytest.approx(0.20)

    def test_jitter_is_deterministic_per_seed(self):
        config = ResilienceConfig(jitter_seed=3)
        replica = ResilienceConfig(jitter_seed=3)
        other = ResilienceConfig(jitter_seed=4)
        delays = [backoff_delay(config, k) for k in range(4)]
        assert delays == [backoff_delay(replica, k) for k in range(4)]
        assert delays != [backoff_delay(other, k) for k in range(4)]

    def test_jitter_bounded_by_amplitude(self):
        config = ResilienceConfig(backoff_jitter=0.25)
        for retry in range(8):
            base = 0.05 * 2.0**retry
            delay = backoff_delay(config, retry)
            assert base <= delay <= base * 1.25

    def test_injected_sleeper_records_exact_sequence(self):
        recorded = []
        config = ResilienceConfig(
            max_retries=2,
            backoff_jitter=0.0,
            fault_plan=FaultPlan.of(corrupt_result=[0, 1]),
            sleep=recorded.append,
        )
        executor = ResilientExecutor(config=config)
        assert executor.map(_double, [5]) == [10]
        assert recorded == [pytest.approx(0.05), pytest.approx(0.10)]


class TestSerialRung:
    def test_plain_map_matches_serial_semantics(self):
        executor = ResilientExecutor(config=_config())
        assert executor.map(_double, [3, 1, 2]) == [6, 2, 4]
        assert executor.map(_double, []) == []

    def test_shared_payload_reaches_work_units(self):
        executor = ResilientExecutor(config=_config())
        assert executor.map(_add_offset, [1, 2], shared=10) == [11, 12]

    def test_simulated_crash_is_retried(self):
        config = _config(fault_plan=FaultPlan.of(worker_crash=[0]))
        executor = ResilientExecutor(config=config)
        instrumentation = _instrumented(executor)
        assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]
        counters = instrumentation.counters()
        assert counters["resilience.retries"] == 1
        assert counters["resilience.faults_injected"] == 1

    def test_corrupt_result_is_detected_and_retried(self):
        config = _config(fault_plan=FaultPlan.of(corrupt_result=[1]))
        executor = ResilientExecutor(config=config)
        instrumentation = _instrumented(executor)
        assert executor.map(_double, [1, 2]) == [2, 4]
        assert instrumentation.counters()["resilience.corrupt_results"] == 1

    def test_simulated_hang_counts_deadline(self):
        config = _config(fault_plan=FaultPlan.of(worker_hang=[0]))
        executor = ResilientExecutor(config=config)
        instrumentation = _instrumented(executor)
        assert executor.map(_double, [9]) == [18]
        assert instrumentation.counters()["resilience.deadline_exceeded"] == 1

    def test_persistent_fault_exhausts_budget(self):
        # Occurrences 0..4 all crash: initial + 2 retries on one item
        # never find a clean occurrence.
        config = _config(
            max_retries=2, fault_plan=FaultPlan.of(worker_crash=range(5))
        )
        executor = ResilientExecutor(config=config)
        with pytest.raises(ResilienceError):
            executor.map(_double, [1])

    def test_domain_error_is_fatal_not_retried(self):
        config = _config()
        executor = ResilientExecutor(config=config)
        instrumentation = _instrumented(executor)
        with pytest.raises(InfeasiblePlacementError):
            executor.map(_raise_domain_error, [1])
        assert "resilience.retries" not in instrumentation.counters()

    def test_fatal_error_stops_the_batch_early(self):
        calls = []

        def fn(shared, item):
            calls.append(item)
            raise InfeasiblePlacementError("nope")

        executor = ResilientExecutor(config=_config())
        with pytest.raises(InfeasiblePlacementError):
            # In-process harness: picklability is irrelevant here.
            executor.map(fn, [1, 2, 3])  # ropus: ignore[ROP004]
        # map() discards partial results on a fatal error, so the rest
        # of the batch is never evaluated.
        assert calls == [1]

    def test_keyboard_interrupt_propagates_immediately(self):
        calls = []

        def fn(shared, item):
            calls.append(item)
            raise KeyboardInterrupt

        executor = ResilientExecutor(config=_config())
        with pytest.raises(KeyboardInterrupt):
            # In-process harness: picklability is irrelevant here.
            executor.map(fn, [1, 2, 3])  # ropus: ignore[ROP004]
        assert calls == [1]

    def test_retries_draw_fresh_occurrences(self):
        # One map of three items takes occurrences 0-2; the retry of the
        # faulted item takes occurrence 3; a plan scheduling 3 as well
        # must therefore fault the retry too (two retries total).
        config = _config(fault_plan=FaultPlan.of(worker_crash=[1, 3]))
        executor = ResilientExecutor(config=config)
        instrumentation = _instrumented(executor)
        assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]
        assert instrumentation.counters()["resilience.retries"] == 2


class TestParallelRung:
    def test_plain_parallel_map(self):
        executor = ResilientExecutor(workers=2, config=_config())
        with executor.session(shared=100) as session:
            assert session.map(_add_offset, [1, 2, 3]) == [101, 102, 103]
            assert session.broadcast_mode in {"shared_memory", "pickle"}

    def test_sigkilled_worker_is_respawned_and_retried(self):
        # Occurrence 0 dies with os._exit in the pool: the driver sees
        # BrokenProcessPool, respawns, and retries every unfinished item.
        config = _config(fault_plan=FaultPlan.of(worker_crash=[0]))
        executor = ResilientExecutor(workers=2, config=config)
        instrumentation = _instrumented(executor)
        assert executor.map(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]
        counters = instrumentation.counters()
        assert counters["resilience.pool_respawns"] >= 1
        assert counters["resilience.retries"] >= 1

    def test_wedged_worker_trips_deadline(self):
        # The injected hang (10s) never finishes inside the 0.5s task
        # deadline; the pool is killed, respawned, and the retry's fresh
        # occurrence runs clean.
        config = _config(
            task_timeout_seconds=0.5,
            fault_plan=FaultPlan.of(worker_hang=[0], hang_seconds=10.0),
        )
        executor = ResilientExecutor(workers=2, config=config)
        instrumentation = _instrumented(executor)
        assert executor.map(_double, [7]) == [14]
        counters = instrumentation.counters()
        assert counters["resilience.deadline_exceeded"] >= 1
        assert counters["resilience.pool_respawns"] >= 1

    def test_broadcast_failure_degrades_to_pickle(self):
        config = _config(fault_plan=FaultPlan.of(broadcast_failure=[0]))
        executor = ResilientExecutor(workers=2, config=config)
        instrumentation = _instrumented(executor)
        with executor.session(shared=5) as session:
            assert session.broadcast_mode == "pickle"
            assert session.map(_add_offset, [1, 2]) == [6, 7]
        assert instrumentation.counters()[
            "resilience.broadcast_fallbacks"
        ] == 1

    def test_corrupt_result_retried_in_pool(self):
        config = _config(fault_plan=FaultPlan.of(corrupt_result=[0]))
        executor = ResilientExecutor(workers=2, config=config)
        instrumentation = _instrumented(executor)
        assert executor.map(_double, [5, 6]) == [10, 12]
        assert instrumentation.counters()["resilience.corrupt_results"] == 1

    def test_ladder_degrades_to_serial_and_completes(self):
        # Crashes at occurrences 0-2 defeat the pool's whole retry
        # budget (initial + 1 retry) and the first serial attempt; the
        # serial retry's occurrence 3 is clean, so the map still
        # completes — one rung down, zero results lost.
        config = _config(
            max_retries=1, fault_plan=FaultPlan.of(worker_crash=range(3))
        )
        executor = ResilientExecutor(workers=2, config=config)
        instrumentation = _instrumented(executor)
        assert executor.map(_double, [8]) == [16]
        counters = instrumentation.counters()
        assert counters["resilience.serial_fallbacks"] == 1

    def test_domain_error_propagates_from_pool(self):
        executor = ResilientExecutor(workers=2, config=_config())
        with pytest.raises(InfeasiblePlacementError):
            executor.map(_raise_domain_error, [1])

    def test_pool_broken_on_submit_recovers_without_waiting(self):
        # A pool that breaks while accepting work: the attempt must
        # hand the whole batch back as retryable and respawn — never
        # wait on futures the dead pool already cancelled.
        class _BrokenAtSubmission:
            def submit(self, *args, **kwargs):
                raise BrokenProcessPool("worker died before submission")

            def shutdown(self, *args, **kwargs):
                return None

        executor = ResilientExecutor(workers=2, config=_config())
        instrumentation = _instrumented(executor)
        with executor.session() as session:
            session._kill_pool()
            session._pool = _BrokenAtSubmission()
            assert session.map(_double, [1, 2, 3]) == [2, 4, 6]
        counters = instrumentation.counters()
        assert counters["resilience.pool_respawns"] == 1
        assert counters["resilience.retries"] == 1


class TestEngineIntegration:
    def test_resilient_engine_wires_instrumentation(self):
        config = _config(fault_plan=FaultPlan.of(corrupt_result=[0]))
        with ExecutionEngine.resilient(config=config) as engine:
            assert engine.executor.name == "resilient"
            with engine.session() as session:
                assert session.map(_double, [4]) == [8]
        assert engine.instrumentation.counters()[
            "resilience.corrupt_results"
        ] == 1

    def test_make_resilient_executor(self):
        executor = make_resilient_executor(2)
        assert isinstance(executor, ResilientExecutor)
        assert executor.workers == 2
