"""Serial and parallel backends must produce identical plans.

The engine contract: work units are pure functions, seeded RNG stays in
the driver, so the executor backend must never change a planning result.
These tests run the full translate -> place -> failure pipeline under
both backends and require identical outputs.
"""

import pytest

from repro.core.cos import PoolCommitments
from repro.core.framework import ROpus
from repro.core.qos import QoSPolicy, case_study_qos
from repro.core.translation import QoSTranslator
from repro.engine import ExecutionEngine
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.calendar import TraceCalendar
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

FAST_SEARCH = GeneticSearchConfig(
    seed=7, max_generations=6, stall_generations=3, population_size=8
)


@pytest.fixture(scope="module")
def demands():
    calendar = TraceCalendar(weeks=1, slot_minutes=60)
    generator = WorkloadGenerator(seed=42)
    specs = [
        WorkloadSpec(name=f"w{i}", peak_cpus=1.0 + 0.5 * i) for i in range(4)
    ]
    return generator.generate_many(specs, calendar)


@pytest.fixture
def policy():
    return QoSPolicy(
        normal=case_study_qos(m_degr_percent=0),
        failure=case_study_qos(m_degr_percent=3, t_degr_minutes=30),
    )


def make_framework(engine, **kwargs):
    return ROpus(
        PoolCommitments.of(theta=0.9),
        ResourcePool(homogeneous_servers(4, cpus=16)),
        search_config=FAST_SEARCH,
        engine=engine,
        **kwargs,
    )


def plan_with(engine, demands, policy, **kwargs):
    framework = make_framework(engine, **kwargs)
    try:
        return framework.plan(demands, policy, plan_failures=True)
    finally:
        engine.close()


class TestBackendEquivalence:
    def test_full_pipeline_plans_identically(self, demands, policy):
        serial_plan = plan_with(ExecutionEngine.serial(), demands, policy)
        parallel_plan = plan_with(
            ExecutionEngine.with_workers(2), demands, policy
        )

        assert (
            dict(serial_plan.consolidation.assignment)
            == dict(parallel_plan.consolidation.assignment)
        )
        assert (
            dict(serial_plan.consolidation.required_by_server)
            == dict(parallel_plan.consolidation.required_by_server)
        )
        assert (
            serial_plan.consolidation.sum_required
            == parallel_plan.consolidation.sum_required
        )

        serial_summary = serial_plan.summary()
        parallel_summary = parallel_plan.summary()
        # Wall-clock timings and execution telemetry (broadcast
        # transport, kernel batching granularity) legitimately differ
        # between backends; the planning quantities must not.
        serial_summary.pop("stage_timings")
        parallel_summary.pop("stage_timings")
        serial_counters = serial_summary.pop("counters")
        parallel_counters = parallel_summary.pop("counters")
        assert serial_summary == parallel_summary
        # Both backends account their capacity-search work.
        assert serial_counters["kernel.calls"] > 0
        assert parallel_counters["kernel.calls"] > 0
        # The parallel backend broadcast the allocation matrices
        # zero-copy for the placement session.
        assert parallel_counters.get("broadcast.bytes_shared", 0.0) > 0.0

    def test_failure_cases_identical(self, demands, policy):
        serial_plan = plan_with(ExecutionEngine.serial(), demands, policy)
        parallel_plan = plan_with(
            ExecutionEngine.with_workers(2), demands, policy
        )

        def case_view(report):
            return [
                (
                    case.label,
                    case.feasible,
                    case.affected_workloads,
                    case.servers_used,
                )
                for case in report.cases
            ]

        assert case_view(serial_plan.failure_report) == case_view(
            parallel_plan.failure_report
        )

    def test_translation_identical(self, demands, policy):
        commitments = PoolCommitments.of(theta=0.9)
        with ExecutionEngine.with_workers(2) as parallel_engine:
            serial = QoSTranslator(commitments).translate_many(
                demands, policy.normal
            )
            parallel = QoSTranslator(
                commitments, engine=parallel_engine
            ).translate_many(demands, policy.normal)
        assert set(serial) == set(parallel)
        for name in serial:
            assert serial[name].d_new_max == parallel[name].d_new_max
            assert serial[name].breakpoint == parallel[name].breakpoint
            assert (
                serial[name].pair.cos1.values
                == parallel[name].pair.cos1.values
            ).all()
            assert (
                serial[name].pair.cos2.values
                == parallel[name].pair.cos2.values
            ).all()

    def test_batch_kernel_parallel_matches_scalar_serial(
        self, demands, policy
    ):
        """The strongest cross-cutting check: scalar serial vs batched
        parallel (the default production path) — identical plans."""
        scalar_plan = plan_with(
            ExecutionEngine.serial(),
            demands,
            policy,
            kernel="scalar",
            share_sweep_cache=False,
        )
        batch_plan = plan_with(
            ExecutionEngine.with_workers(2), demands, policy, kernel="batch"
        )
        assert dict(scalar_plan.consolidation.assignment) == dict(
            batch_plan.consolidation.assignment
        )
        assert dict(scalar_plan.consolidation.required_by_server) == dict(
            batch_plan.consolidation.required_by_server
        )

    def test_plan_records_stage_timings(self, demands, policy):
        plan = plan_with(ExecutionEngine.serial(), demands, policy)
        assert set(plan.timings) >= {
            "translation",
            "placement",
            "failure_planning",
        }
        assert all(value >= 0.0 for value in plan.timings.values())
        assert plan.summary()["stage_timings"] == dict(plan.timings)
