"""Tests for the instrumentation facility."""

import pytest

from repro.engine import Instrumentation


def make_instrumentation():
    """Instrumentation with a deterministic clock ticking 1.0 per call."""
    ticks = iter(float(i) for i in range(1000))
    return Instrumentation(clock=lambda: next(ticks))


class TestStages:
    def test_stage_records_elapsed(self):
        instr = make_instrumentation()
        with instr.stage("translation"):
            pass
        assert instr.timings() == {"translation": 1.0}

    def test_stage_accumulates_across_calls(self):
        instr = make_instrumentation()
        for _ in range(3):
            with instr.stage("placement"):
                pass
        stats = {s.name: s for s in instr.stage_stats()}["placement"]
        assert stats.calls == 3
        assert stats.total_seconds == 3.0
        assert stats.last_seconds == 1.0
        assert stats.mean_seconds == pytest.approx(1.0)

    def test_stage_records_on_exception(self):
        instr = make_instrumentation()
        with pytest.raises(ValueError):
            with instr.stage("placement"):
                raise ValueError("boom")
        assert instr.timings()["placement"] == 1.0

    def test_record_stage_folds_external_duration(self):
        instr = make_instrumentation()
        instr.record_stage("failure_planning", 2.5)
        instr.record_stage("failure_planning", 0.5)
        stats = instr.stage_stats()[0]
        assert stats.total_seconds == 3.0
        assert stats.last_seconds == 0.5

    def test_stage_stats_in_first_recorded_order(self):
        instr = make_instrumentation()
        instr.record_stage("b", 1.0)
        instr.record_stage("a", 1.0)
        instr.record_stage("b", 1.0)
        assert [s.name for s in instr.stage_stats()] == ["b", "a"]


class TestCounters:
    def test_count_defaults_to_one(self):
        instr = make_instrumentation()
        instr.count("translation.workloads")
        instr.count("translation.workloads", 4)
        assert instr.counters() == {"translation.workloads": 5.0}

    def test_counters_is_a_copy(self):
        instr = make_instrumentation()
        instr.count("x")
        instr.counters()["x"] = 99.0
        assert instr.counters() == {"x": 1.0}

    def test_counters_since_keeps_new_zero_counters(self):
        """Counters created after the snapshot survive at a zero delta.

        A kernel mode that records its full counter set with some zero
        values (e.g. no bracket iterations) must still surface those
        names in the run's delta — only *pre-existing* counters that did
        not advance are omitted.
        """
        instr = make_instrumentation()
        instr.count("kernel.calls", 2)
        instr.count("kernel.stale", 1)
        snapshot = instr.counters()
        instr.count("kernel.calls", 3)
        instr.count("kernel.bracket_iterations", 0)
        assert instr.counters_since(snapshot) == {
            "kernel.calls": 3.0,
            "kernel.bracket_iterations": 0.0,
        }


class TestEvents:
    def test_event_log_preserves_order_and_fields(self):
        instr = make_instrumentation()
        instr.event("plan.start", workloads=5)
        instr.event("plan.end")
        events = instr.events()
        assert [e.name for e in events] == ["plan.start", "plan.end"]
        assert events[0].fields == {"workloads": 5}
        assert events[0].timestamp < events[1].timestamp


class TestDeltas:
    def test_timings_since_reports_only_advanced_stages(self):
        instr = make_instrumentation()
        with instr.stage("translation"):
            pass
        snapshot = instr.snapshot()
        with instr.stage("placement"):
            pass
        deltas = instr.timings_since(snapshot)
        assert deltas == {"placement": 1.0}

    def test_timings_since_accumulating_stage(self):
        instr = make_instrumentation()
        with instr.stage("translation"):
            pass
        snapshot = instr.snapshot()
        with instr.stage("translation"):
            pass
        assert instr.timings_since(snapshot) == {"translation": 1.0}
