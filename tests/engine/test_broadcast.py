"""Tests for the shared-memory payload broadcast.

:func:`publish`/:func:`resolve` must be exact inverses for array-bearing
dataclass payloads, must degrade to the pickle path (payload returned
verbatim, no segment) whenever shared memory cannot help, and must hand
workers *read-only* views so a mutation faults instead of corrupting
sibling processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.engine.broadcast import (
    _ATTACHED,
    _PUBLISHED,
    _release_all_published,
    SharedMemoryHandle,
    publish,
    release,
    resolve,
)


@dataclass(frozen=True)
class _Inner:
    matrix: np.ndarray
    label: str


@dataclass(frozen=True)
class _Payload:
    inner: _Inner
    vector: np.ndarray
    scale: float


@pytest.fixture
def payload():
    return _Payload(
        inner=_Inner(matrix=np.arange(12.0).reshape(3, 4), label="m"),
        vector=np.linspace(0.0, 1.0, 7),
        scale=2.5,
    )


def _cleanup(segment):
    """Release driver and worker sides of a published segment."""
    name = segment.name
    attached = _ATTACHED.pop(name, None)
    if attached is not None:
        attached.close()
    segment.close()
    segment.unlink()


class TestPublish:
    def test_strips_arrays_into_one_segment(self, payload):
        shared, segment, nbytes = publish(payload)
        try:
            assert isinstance(shared, SharedMemoryHandle)
            assert nbytes == (
                payload.inner.matrix.nbytes + payload.vector.nbytes
            )
            assert len(shared.specs) == 2
            # Non-array fields ride along in the template untouched.
            assert shared.template.inner.label == "m"
            assert shared.template.scale == 2.5
        finally:
            _cleanup(segment)

    @pytest.mark.parametrize(
        "value",
        [
            None,
            {"not": "a dataclass"},
            _Inner(matrix=np.empty(0), label="empty"),
        ],
    )
    def test_falls_back_to_pickle_when_nothing_to_share(self, value):
        # Nothing shareable: publish returns segment=None, so there is
        # no resource to release on this path.
        shared, segment, nbytes = publish(value)  # ropus: ignore[ROP017]
        assert shared is value
        assert segment is None
        assert nbytes == 0


class TestResolve:
    def test_roundtrip_restores_equal_arrays(self, payload):
        shared, segment, _ = publish(payload)
        try:
            restored = resolve(shared)
            np.testing.assert_array_equal(
                restored.inner.matrix, payload.inner.matrix
            )
            np.testing.assert_array_equal(restored.vector, payload.vector)
            assert restored.inner.label == "m"
            assert restored.scale == 2.5
        finally:
            _cleanup(segment)

    def test_restored_views_are_read_only(self, payload):
        shared, segment, _ = publish(payload)
        try:
            restored = resolve(shared)
            with pytest.raises(ValueError):
                restored.vector[0] = 99.0
            with pytest.raises(ValueError):
                restored.inner.matrix[0, 0] = 99.0
        finally:
            _cleanup(segment)

    def test_views_are_zero_copy(self, payload):
        """The restored arrays map the segment's physical memory.

        A write through the driver's own mapping must be visible through
        the worker-side view — proof the view borrows the shared buffer
        rather than holding a deserialised copy.
        """
        shared, segment, _ = publish(payload)
        try:
            restored = resolve(shared)
            offset = shared.specs[1][0]
            driver_view = np.ndarray(
                payload.vector.shape,
                dtype=payload.vector.dtype,
                buffer=segment.buf,
                offset=offset,
            )
            driver_view[0] = 123.0
            assert restored.vector[0] == 123.0
        finally:
            _cleanup(segment)

    def test_non_handle_payloads_pass_through(self, payload):
        assert resolve(payload) is payload
        assert resolve(None) is None

    def test_segment_attached_once_per_process(self, payload):
        shared, segment, _ = publish(payload)
        try:
            resolve(shared)
            first = _ATTACHED[shared.segment_name]
            resolve(shared)
            assert _ATTACHED[shared.segment_name] is first
        finally:
            _cleanup(segment)


class TestSegmentLifecycle:
    """The leak-prevention registry: nothing may outlive its session."""

    def test_publish_registers_segment(self, payload):
        shared, segment, _ = publish(payload)
        try:
            assert _PUBLISHED[segment.name] is segment
        finally:
            _cleanup(segment)
            _PUBLISHED.pop(segment.name, None)

    def test_release_unlinks_and_is_idempotent(self, payload):
        shared, segment, _ = publish(payload)
        name = segment.name
        release(name)
        assert name not in _PUBLISHED
        # A second release of the same name is a no-op, not an error.
        release(name)
        # The name is gone from /dev/shm: re-attaching must fail.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_atexit_sweep_releases_leftovers(self, payload):
        # Deliberately leave the segment to the registry sweep — the
        # sweep being exercised *is* the release.
        shared, segment, _ = publish(payload)  # ropus: ignore[ROP017]
        name = segment.name
        assert name in _PUBLISHED
        _release_all_published()
        assert name not in _PUBLISHED

    def test_session_close_releases_segment(self, payload):
        from repro.engine.executor import ParallelExecutor

        executor = ParallelExecutor(workers=2)
        try:
            with executor.session(shared=payload) as session:
                names = set(_PUBLISHED)
                if session.broadcast_bytes:
                    assert names
        finally:
            executor.close()
        assert not (names & set(_PUBLISHED))
