"""Runtime determinism-sanitizer coverage.

Static analysis (ROP013) and the sanitizer police the same contract
from opposite sides; the last test here closes the loop by driving a
violating work unit through a real process pool and asserting the
violation surfaces as :class:`DeterminismViolation`, not as silent
nondeterminism.
"""

from __future__ import annotations

import random
import time

import numpy as np
import pytest

from repro.analysis import sanitizer
from repro.engine.executor import make_executor
from repro.exceptions import DeterminismViolation, ROpusError


@pytest.fixture()
def armed():
    sanitizer.install()
    try:
        yield
    finally:
        sanitizer.uninstall()


def _clean_worker(shared, item):
    rng = np.random.default_rng(shared + item)
    return float(rng.random())


def _wall_clock_worker(shared, item):
    return time.time() + item


def _ambient_rng_worker(shared, item):
    return random.random() + item


class TestInstallUninstall:
    def test_install_blocks_ambient_entry_points(self, armed):
        with pytest.raises(DeterminismViolation):
            time.time()
        with pytest.raises(DeterminismViolation):
            random.random()
        with pytest.raises(DeterminismViolation):
            np.random.rand()
        with pytest.raises(DeterminismViolation):
            np.random.default_rng()

    def test_sanctioned_paths_stay_open(self, armed):
        assert time.perf_counter() > 0
        assert time.monotonic() > 0
        rng = np.random.default_rng(42)
        assert 0.0 <= rng.random() < 1.0
        assert 0.0 <= random.Random(7).random() < 1.0
        rng_from_seq = np.random.default_rng(np.random.SeedSequence(3))
        assert 0.0 <= rng_from_seq.random() < 1.0

    def test_install_is_idempotent(self, armed):
        sanitizer.install()
        sanitizer.uninstall()
        assert not sanitizer.installed()
        # A second uninstall is a no-op, and the originals are back.
        sanitizer.uninstall()
        assert time.time() > 0
        assert 0.0 <= random.random() < 1.0

    def test_uninstall_restores_originals(self):
        before = time.time
        sanitizer.install()
        sanitizer.uninstall()
        assert time.time is before

    def test_violation_is_a_library_error(self, armed):
        with pytest.raises(ROpusError):
            time.time()

    def test_maybe_install_respects_env(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_FLAG, raising=False)
        assert sanitizer.maybe_install() is False
        assert not sanitizer.installed()
        monkeypatch.setenv(sanitizer.ENV_FLAG, "1")
        try:
            assert sanitizer.maybe_install() is True
            assert sanitizer.installed()
        finally:
            sanitizer.uninstall()


class TestPoolWiring:
    """ROPUS_SANITIZE=1 arms every worker through the pool initializer."""

    @pytest.fixture()
    def sanitized_env(self, monkeypatch):
        monkeypatch.setenv(sanitizer.ENV_FLAG, "1")

    def test_clean_work_runs_sanitized(self, sanitized_env):
        executor = make_executor(workers=2)
        with executor.session(100) as session:
            parallel = list(session.map(_clean_worker, [1, 2, 3]))
        serial = [_clean_worker(100, item) for item in [1, 2, 3]]
        assert parallel == serial

    def test_wall_clock_worker_raises(self, sanitized_env):
        executor = make_executor(workers=2)
        with pytest.raises(DeterminismViolation):
            with executor.session(0) as session:
                # The impure worker is the point: the sanitizer must
                # catch at runtime what ROP013 catches statically.
                list(session.map(_wall_clock_worker, [1]))  # ropus: ignore[ROP013]

    def test_ambient_rng_worker_raises(self, sanitized_env):
        executor = make_executor(workers=2)
        with pytest.raises(DeterminismViolation):
            with executor.session(0) as session:
                # The impure worker is the point (see above).
                list(session.map(_ambient_rng_worker, [1]))  # ropus: ignore[ROP013]

    def test_driver_process_stays_unpatched(self, sanitized_env):
        executor = make_executor(workers=2)
        with executor.session(0) as session:
            list(session.map(_clean_worker, [1]))
        # The sanitizer armed the workers, never the driver.
        assert not sanitizer.installed()
        assert time.time() > 0
