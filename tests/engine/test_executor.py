"""Tests for the pluggable execution backends."""

import pytest

from repro.engine import (
    ExecutionEngine,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.exceptions import ConfigurationError


def _add_offset(shared, item):
    """Module-level work unit so the parallel backend can pickle it."""
    offset = shared if shared is not None else 0
    return item + offset


def _square(shared, item):
    return item * item


class TestSerialExecutor:
    def test_map_preserves_order(self):
        executor = SerialExecutor()
        assert executor.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_shared_payload_reaches_work_units(self):
        executor = SerialExecutor()
        assert executor.map(_add_offset, [1, 2], shared=10) == [11, 12]

    def test_empty_items(self):
        assert SerialExecutor().map(_square, []) == []

    def test_session_reuse(self):
        with SerialExecutor().session(shared=100) as session:
            assert session.map(_add_offset, [1]) == [101]
            assert session.map(_add_offset, [2]) == [102]


class TestParallelExecutor:
    def test_map_matches_serial(self):
        items = list(range(17))
        executor = ParallelExecutor(workers=2)
        try:
            assert executor.map(_square, items) == [i * i for i in items]
        finally:
            executor.close()

    def test_shared_payload_broadcast(self):
        executor = ParallelExecutor(workers=2)
        assert executor.map(_add_offset, [1, 2, 3], shared=5) == [6, 7, 8]

    def test_session_amortises_broadcast(self):
        executor = ParallelExecutor(workers=2)
        with executor.session(shared=1000) as session:
            assert session.map(_add_offset, [1]) == [1001]
            assert session.map(_add_offset, [2, 3]) == [1002, 1003]

    def test_empty_items(self):
        executor = ParallelExecutor(workers=2)
        with executor.session() as session:
            assert session.map(_square, []) == []

    def test_explicit_chunksize(self):
        executor = ParallelExecutor(workers=2, chunksize=2)
        assert executor.map(_square, [1, 2, 3, 4, 5]) == [1, 4, 9, 16, 25]

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(workers=0)


class TestMakeExecutor:
    def test_none_is_serial(self):
        assert isinstance(make_executor(None), SerialExecutor)

    def test_one_is_serial(self):
        assert isinstance(make_executor(1), SerialExecutor)

    def test_many_is_parallel(self):
        executor = make_executor(3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            make_executor(0)
        with pytest.raises(ConfigurationError):
            make_executor(-2)


class TestExecutionEngine:
    def test_default_engine_is_serial(self):
        engine = ExecutionEngine()
        assert engine.executor.name == "serial"
        assert engine.instrumentation.timings() == {}

    def test_with_workers_selects_backend(self):
        with ExecutionEngine.with_workers(None) as engine:
            assert engine.executor.name == "serial"
        with ExecutionEngine.with_workers(1) as engine:
            assert engine.executor.name == "serial"
        with ExecutionEngine.with_workers(2) as engine:
            assert engine.executor.name == "parallel"

    def test_repr_names_backend(self):
        assert "serial" in repr(ExecutionEngine.serial())
