"""Tests for the journaling checkpoint store."""

import json

import pytest

from repro.engine.checkpoint import Checkpointer
from repro.engine.faults import InjectedCheckpointFailure
from repro.engine.instrumentation import Instrumentation
from repro.exceptions import ConfigurationError


@pytest.fixture
def store(tmp_path):
    return Checkpointer(tmp_path / "ckpt")


class TestRoundTrip:
    def test_save_then_load(self, store):
        payload = {"generation": 3, "values": [1.0, 2.5], "nested": {"a": 1}}
        assert store.save("genetic", payload) is True
        assert store.load("genetic") == payload

    def test_missing_key_reads_absent(self, store):
        assert store.load("never-written") is None
        assert not store.exists("never-written")

    def test_overwrite_replaces_whole_document(self, store):
        store.save("k", {"v": 1})
        store.save("k", {"w": 2})
        assert store.load("k") == {"w": 2}

    def test_delete(self, store):
        store.save("k", {"v": 1})
        store.delete("k")
        assert store.load("k") is None

    def test_hierarchical_keys_stay_inside_directory(self, store):
        store.save("failure/web+db", {"feasible": True})
        assert store.load("failure/web+db") == {"feasible": True}
        files = list(store.directory.iterdir())
        assert all(entry.parent == store.directory for entry in files)
        assert store.keys() == ["failure/web+db"]

    def test_lookalike_keys_get_distinct_documents(self, store):
        # Keys whose readable forms collide ("a/b" vs "a_b" vs "a__b")
        # must never share a file: the digest suffix keeps them apart.
        lookalikes = ["failure/a__b", "failure/a/b", "failure/a_b", "failure_a_b"]
        for position, key in enumerate(lookalikes):
            store.save(key, {"position": position})
        for position, key in enumerate(lookalikes):
            assert store.load(key) == {"position": position}
        assert store.keys() == sorted(lookalikes)

    def test_load_rejects_document_with_foreign_key(self, store):
        # A document whose stored raw key disagrees with the requested
        # key (a file planted under the wrong name) reads as absent.
        store.save("original", {"v": 1})
        source = store._path("original")
        source.rename(store._path("imposter"))
        instrumentation = Instrumentation()
        store.instrumentation = instrumentation
        assert store.load("imposter") is None
        assert instrumentation.counters()["checkpoint.key_mismatches"] == 1

    def test_rejects_empty_key(self, store):
        with pytest.raises(ConfigurationError):
            store.save("", {})

    def test_clear_removes_every_document(self, store):
        store.save("genetic", {"generation": 2})
        store.save("failure/web", {"feasible": True})
        store.clear()
        assert store.keys() == []
        assert store.load("genetic") is None
        assert list(store.directory.glob("*.ckpt.*")) == []


class TestFingerprint:
    def test_matching_fingerprint_round_trips(self, tmp_path):
        store = Checkpointer(tmp_path, fingerprint="abc123")
        store.save("genetic", {"generation": 1})
        assert store.load("genetic") == {"generation": 1}

    def test_changed_inputs_read_as_absent(self, tmp_path):
        instrumentation = Instrumentation()
        first = Checkpointer(tmp_path, fingerprint="inputs-v1")
        first.save("genetic", {"generation": 5})
        second = Checkpointer(
            tmp_path, fingerprint="inputs-v2", instrumentation=instrumentation
        )
        assert second.load("genetic") is None
        assert (
            instrumentation.counters()["checkpoint.fingerprint_mismatches"]
            == 1
        )

    def test_unstamped_document_rejected_by_stamped_store(self, tmp_path):
        Checkpointer(tmp_path).save("genetic", {"generation": 5})
        stamped = Checkpointer(tmp_path, fingerprint="inputs-v1")
        assert stamped.load("genetic") is None

    def test_store_without_fingerprint_skips_the_check(self, tmp_path):
        Checkpointer(tmp_path, fingerprint="inputs-v1").save("k", {"v": 1})
        assert Checkpointer(tmp_path).load("k") == {"v": 1}


class TestDegradedPaths:
    def test_corrupt_document_reads_absent(self, store):
        store.save("k", {"v": 1})
        path = next(store.directory.glob("*.ckpt.json"))
        path.write_text("{ torn mid-write")
        instrumentation = Instrumentation()
        store.instrumentation = instrumentation
        assert store.load("k") is None
        assert instrumentation.counters()["checkpoint.corrupt_reads"] == 1

    def test_wrong_shape_document_reads_absent(self, store):
        path = store.directory / "k.ckpt.json"
        path.write_text(json.dumps({"payload": [1, 2, 3]}))
        assert store.load("k") is None

    def test_unjsonable_payload_fails_softly(self, store):
        instrumentation = Instrumentation()
        store.instrumentation = instrumentation
        assert store.save("k", {"bad": object()}) is False
        assert store.load("k") is None
        assert instrumentation.counters()["checkpoint.write_failures"] == 1

    def test_injected_write_failure_counts_and_degrades(self, tmp_path):
        instrumentation = Instrumentation()
        fires = iter([True, False])

        def hook():
            if next(fires):
                raise InjectedCheckpointFailure("disk full (injected)")

        store = Checkpointer(
            tmp_path, instrumentation=instrumentation, fault_hook=hook
        )
        assert store.save("k", {"v": 1}) is False
        assert store.load("k") is None
        # The next save (fault not scheduled) sticks.
        assert store.save("k", {"v": 2}) is True
        assert store.load("k") == {"v": 2}
        counters = instrumentation.counters()
        assert counters["checkpoint.write_failures"] == 1
        assert counters["checkpoint.writes"] == 1

    def test_failed_write_leaves_previous_document(self, tmp_path):
        state = {"fail": False}

        def hook():
            if state["fail"]:
                raise InjectedCheckpointFailure("injected")

        store = Checkpointer(tmp_path, fault_hook=hook)
        store.save("k", {"v": "original"})
        state["fail"] = True
        assert store.save("k", {"v": "lost"}) is False
        assert store.load("k") == {"v": "original"}

    def test_no_temp_files_survive_failure(self, tmp_path):
        def hook():
            raise InjectedCheckpointFailure("injected")

        store = Checkpointer(tmp_path, fault_hook=hook)
        store.save("k", {"v": 1})
        assert list(store.directory.glob("*.ckpt.tmp")) == []
