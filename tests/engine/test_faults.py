"""Tests for the deterministic fault-injection primitives."""

import pytest

from repro.engine.faults import (
    CorruptedResult,
    FaultClock,
    FaultKind,
    FaultPlan,
    seeded_occurrences,
)
from repro.exceptions import ROpusError


class TestSeededOccurrences:
    def test_same_seed_same_schedule(self):
        first = seeded_occurrences(7, "crash", 0.2, 100)
        second = seeded_occurrences(7, "crash", 0.2, 100)
        assert first == second

    def test_labels_give_independent_streams(self):
        crash = seeded_occurrences(7, "crash", 0.5, 200)
        hang = seeded_occurrences(7, "hang", 0.5, 200)
        assert crash != hang

    def test_zero_rate_or_horizon_is_empty(self):
        assert seeded_occurrences(1, "x", 0.0, 100) == frozenset()
        assert seeded_occurrences(1, "x", 0.5, 0) == frozenset()

    def test_rate_one_fires_everywhere(self):
        assert seeded_occurrences(1, "x", 1.0, 10) == frozenset(range(10))

    def test_occurrences_within_horizon(self):
        occurrences = seeded_occurrences(3, "x", 0.3, 50)
        assert all(0 <= index < 50 for index in occurrences)

    def test_rejects_bad_rate_and_horizon(self):
        with pytest.raises(ROpusError):
            # Out-of-domain on purpose: rejection is what's asserted.
            seeded_occurrences(0, "x", 1.5, 10)  # ropus: ignore[ROP009]
        with pytest.raises(ROpusError):
            seeded_occurrences(0, "x", -0.1, 10)  # ropus: ignore[ROP009]
        with pytest.raises(ROpusError):
            seeded_occurrences(0, "x", 0.5, -1)


class TestFaultPlan:
    def test_none_is_empty(self):
        plan = FaultPlan.none()
        assert plan.empty
        assert not plan.fires(FaultKind.WORKER_CRASH, 0)

    def test_of_builds_by_kind_value(self):
        plan = FaultPlan.of(worker_crash=[0, 3], broadcast_failure=[1])
        assert plan.fires(FaultKind.WORKER_CRASH, 0)
        assert plan.fires(FaultKind.WORKER_CRASH, 3)
        assert not plan.fires(FaultKind.WORKER_CRASH, 1)
        assert plan.fires(FaultKind.BROADCAST_FAILURE, 1)
        assert not plan.empty

    def test_of_rejects_unknown_kind(self):
        with pytest.raises(ROpusError):
            FaultPlan.of(gamma_ray=[0])

    def test_rejects_negative_occurrence(self):
        with pytest.raises(ROpusError):
            FaultPlan.of(worker_crash=[-1])

    def test_rejects_nonpositive_hang(self):
        with pytest.raises(ROpusError):
            FaultPlan.of(hang_seconds=0.0)

    def test_seeded_is_reproducible(self):
        kwargs = dict(horizon=128, crash_rate=0.1, corrupt_rate=0.1)
        assert FaultPlan.seeded(5, **kwargs) == FaultPlan.seeded(5, **kwargs)
        assert FaultPlan.seeded(5, **kwargs) != FaultPlan.seeded(6, **kwargs)

    def test_seeded_zero_rates_is_empty(self):
        assert FaultPlan.seeded(5, horizon=64).empty

    def test_plan_is_picklable_and_hashable(self):
        import pickle

        plan = FaultPlan.of(worker_crash=[2])
        assert pickle.loads(pickle.dumps(plan)) == plan
        hash(plan.occurrences(FaultKind.WORKER_CRASH))

    def test_worker_faults_beyond(self):
        plan = FaultPlan.of(worker_crash=[4], broadcast_failure=[100])
        assert plan.worker_faults_beyond(0)
        assert plan.worker_faults_beyond(4)
        # Broadcast occurrences live on another site's clock.
        assert not plan.worker_faults_beyond(5)


class TestFaultClock:
    def test_take_advances_monotonically(self):
        clock = FaultClock()
        assert list(clock.take("worker", 3)) == [0, 1, 2]
        assert list(clock.take("worker", 2)) == [3, 4]
        assert clock.peek("worker") == 5

    def test_sites_are_independent(self):
        clock = FaultClock()
        clock.take("worker", 10)
        assert list(clock.take("broadcast")) == [0]

    def test_corrupted_result_is_inert_marker(self):
        marker = CorruptedResult(occurrence=7)
        assert marker.occurrence == 7
