"""Golden-file coverage for the SARIF 2.1.0 reporter.

The golden log pins the full schema shape — run/tool/driver layout,
the reporting descriptor for every registered rule (so adding a rule
without metadata, or perturbing existing metadata, shows up as a
golden diff), region offsets, and the baseline-suppressed run
property. A second test exercises the ``# ropus: ignore`` interplay:
suppressed findings must vanish from the SARIF results entirely
rather than appear with a suppression marker.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import analyze_paths, render_sarif
from repro.analysis.findings import Finding, Severity

GOLDEN = Path(__file__).parent / "golden" / "expected.sarif"


def _sample_findings() -> list[Finding]:
    """Deterministic findings with fixed paths, lines, and severities."""
    return [
        Finding(
            path="src/repro/sample/worker.py",
            line=42,
            column=7,
            rule="ROP013",
            message=(
                "'draw_worker' is submitted to an executor but is "
                "transitively impure: ambient-rng."
            ),
            hint="thread a derived generator through the arguments",
            severity=Severity.ERROR,
        ),
        Finding(
            path="src/repro/sample/report.py",
            line=7,
            column=1,
            rule="ROP002",
            message="wall-clock read time.time() in library code",
            hint="accept an injectable clock",
            severity=Severity.WARNING,
        ),
    ]


class TestGoldenLog:
    def test_sarif_matches_golden_file(self):
        rendered = render_sarif(_sample_findings(), suppressed=2)
        assert rendered == GOLDEN.read_text(encoding="utf-8")

    def test_golden_log_shape(self):
        """Structural assertions, so a regenerated golden stays honest."""
        log = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert "sarif-2.1.0" in log["$schema"]
        assert log["version"] == "2.1.0"
        run = log["runs"][0]

        rules = run["tool"]["driver"]["rules"]
        rule_ids = [rule["id"] for rule in rules]
        assert rule_ids == sorted(rule_ids)
        assert {"ROP013", "ROP014", "ROP015", "ROP016"} <= set(rule_ids)
        for rule in rules:
            assert rule["name"]
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in {
                "error",
                "warning",
            }

        assert run["properties"]["baselineSuppressed"] == 2
        first, second = run["results"]
        # Findings are ordered by (path, line, column, rule).
        assert first["ruleId"] == "ROP002"
        assert first["level"] == "warning"
        region = first["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 7, "startColumn": 1}
        location = second["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert location["artifactLocation"]["uri"] == (
            "src/repro/sample/worker.py"
        )
        assert location["region"] == {"startLine": 42, "startColumn": 7}


class TestInlineSuppressionInterplay:
    def test_ignored_findings_never_reach_the_log(self, tmp_path):
        subject = tmp_path / "subject.py"
        subject.write_text(
            "import time\n"
            "\n"
            "def stamped():\n"
            "    return time.time()\n"
            "\n"
            "def sanctioned():\n"
            "    return time.time()  # ropus: ignore[ROP002]\n",
            encoding="utf-8",
        )
        result = analyze_paths([subject])
        log = json.loads(
            render_sarif(
                result.findings, suppressed=result.suppressed_baseline
            )
        )
        results = log["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["ROP002"]
        assert (
            results[0]["locations"][0]["physicalLocation"]["region"][
                "startLine"
            ]
            == 4
        )
        assert result.suppressed_inline == 1

    def test_ignore_of_other_rule_does_not_suppress(self, tmp_path):
        subject = tmp_path / "subject.py"
        subject.write_text(
            "import time\n"
            "\n"
            "def stamped():\n"
            "    return time.time()  # ropus: ignore[ROP001]\n",
            encoding="utf-8",
        )
        result = analyze_paths([subject])
        assert [finding.rule for finding in result.findings] == ["ROP002"]
