"""Tests for the exception-edge CFG and the typestate checker.

Three layers: structural assertions about exception edges on the CFG
itself (raise-in-try, raise-in-handler, finally ordering, nested try,
``with contextlib.suppress``), a hypothesis property that generated
function bodies never lose statements to unreachable blocks, and
behavioural coverage of the path-sensitive resource checker — leak
shapes, sanctioned ownership transfers, interprocedural release
helpers, and the None-guard refinement.
"""

from __future__ import annotations

import ast
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dataflow import build_cfg
from repro.analysis.effects import build_project
from repro.analysis.rules.base import ModuleContext
from repro.analysis.typestate import check_project
from repro.analysis.typestate.escape import (
    RELEASES,
    RETURNS,
    STORES,
    build_escape_index,
)


def _context(source: str, name: str = "sample.py") -> ModuleContext:
    path = Path(name)
    return ModuleContext(
        path=path,
        display_path=path.as_posix(),
        tree=ast.parse(source),
        source_lines=source.splitlines(),
    )


def _typestate(source: str):
    return check_project(build_project([_context(source)]))


def _categories(source: str) -> list[str]:
    return [finding.category for finding in _typestate(source)]


def _cfg(source: str):
    tree = ast.parse(source)
    function = next(
        node for node in tree.body if isinstance(node, ast.FunctionDef)
    )
    return build_cfg(function)


def _blocks_with(cfg, predicate) -> list[int]:
    return [
        block.index
        for block in cfg.blocks
        if any(predicate(stmt) for stmt in block.statements)
    ]


def _reachable(cfg) -> set[int]:
    seen = {0}
    frontier = [0]
    while frontier:
        index = frontier.pop()
        for edge in cfg.successors(index):
            if edge.target not in seen:
                seen.add(edge.target)
                frontier.append(edge.target)
    return seen


def _is_call_named(stmt: ast.stmt, name: str) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Name)
        and stmt.value.func.id == name
    )


class TestExceptionEdges:
    def test_raise_in_try_reaches_the_handler_not_the_exit(self):
        cfg = _cfg(
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except Exception:\n"
            "        recover()\n"
        )
        [source] = _blocks_with(cfg, lambda s: _is_call_named(s, "risky"))
        handler_blocks = _blocks_with(
            cfg, lambda s: _is_call_named(s, "recover")
        )
        exception_targets = {
            edge.target
            for edge in cfg.successors(source)
            if edge.kind == "exception"
        }
        assert exception_targets & set(handler_blocks)
        # The catch-all handler intercepts: nothing escapes to the
        # implicit exception exit from inside this try.
        assert cfg.exception_exit not in exception_targets

    def test_narrow_handler_still_lets_the_exception_escape(self):
        cfg = _cfg(
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except ValueError:\n"
            "        recover()\n"
        )
        [source] = _blocks_with(cfg, lambda s: _is_call_named(s, "risky"))
        exception_targets = {
            edge.target
            for edge in cfg.successors(source)
            if edge.kind == "exception"
        }
        assert cfg.exception_exit in exception_targets

    def test_raise_in_handler_escapes_to_the_exception_exit(self):
        cfg = _cfg(
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except Exception:\n"
            "        raise RuntimeError('boom')\n"
        )
        [raise_block] = _blocks_with(
            cfg, lambda s: isinstance(s, ast.Raise)
        )
        targets = {
            edge.target
            for edge in cfg.successors(raise_block)
            if edge.kind == "exception"
        }
        assert cfg.exception_exit in targets

    def test_finally_sits_between_the_raise_and_the_exit(self):
        cfg = _cfg(
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        [source] = _blocks_with(cfg, lambda s: _is_call_named(s, "risky"))
        cleanup_blocks = set(
            _blocks_with(cfg, lambda s: _is_call_named(s, "cleanup"))
        )
        exception_targets = {
            edge.target
            for edge in cfg.successors(source)
            if edge.kind == "exception"
        }
        # The raise routes into (a copy of) the final body, never
        # straight to the exception exit ...
        assert exception_targets <= cleanup_blocks
        # ... and the exceptional copy re-raises outward afterwards.
        assert any(
            edge.target == cfg.exception_exit
            for block in exception_targets
            for edge in cfg.successors(block)
        )

    def test_nested_try_routes_inner_raise_through_both_rings(self):
        cfg = _cfg(
            "def f():\n"
            "    try:\n"
            "        try:\n"
            "            risky()\n"
            "        except ValueError:\n"
            "            inner()\n"
            "    except Exception:\n"
            "        outer()\n"
        )
        [source] = _blocks_with(cfg, lambda s: _is_call_named(s, "risky"))
        inner_blocks = set(
            _blocks_with(cfg, lambda s: _is_call_named(s, "inner"))
        )
        outer_blocks = set(
            _blocks_with(cfg, lambda s: _is_call_named(s, "outer"))
        )
        exception_targets = {
            edge.target
            for edge in cfg.successors(source)
            if edge.kind == "exception"
        }
        assert exception_targets & inner_blocks
        assert exception_targets & outer_blocks
        assert cfg.exception_exit not in exception_targets

    def test_with_suppress_resumes_after_the_statement(self):
        cfg = _cfg(
            "import contextlib\n"
            "def f():\n"
            "    with contextlib.suppress(ValueError):\n"
            "        risky()\n"
            "    after()\n"
        )
        [source] = _blocks_with(cfg, lambda s: _is_call_named(s, "risky"))
        after_blocks = set(
            _blocks_with(cfg, lambda s: _is_call_named(s, "after"))
        )
        exception_targets = {
            edge.target
            for edge in cfg.successors(source)
            if edge.kind == "exception"
        }
        assert exception_targets & after_blocks


# -- hypothesis: generated bodies never lose statements ----------------

_SIMPLE = st.sampled_from(
    ["x = 1", "x = helper(x)", "sink(x)", "x = x + 1"]
)


@st.composite
def _body(draw, depth: int = 0) -> list:
    """A function body as indented source lines.

    Terminators are only ever generated as the final line of a
    ``try``-with-catch-all body, so the grammar itself never produces
    dead code — which is what lets the property demand that every
    placed statement stays reachable.
    """
    kinds = ["simple"]
    if depth < 2:
        kinds += ["if", "ifelse", "while", "for", "tryexc", "tryfin", "with"]
    lines: list[str] = []
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.sampled_from(kinds))
        indent = lambda body: ["    " + line for line in body]
        if kind == "simple":
            lines.append(draw(_SIMPLE))
        elif kind == "if":
            lines += ["if x:", *indent(draw(_body(depth + 1)))]
        elif kind == "ifelse":
            lines += [
                "if x:",
                *indent(draw(_body(depth + 1))),
                "else:",
                *indent(draw(_body(depth + 1))),
            ]
        elif kind == "while":
            lines += ["while x:", *indent(draw(_body(depth + 1)))]
        elif kind == "for":
            lines += ["for i in items:", *indent(draw(_body(depth + 1)))]
        elif kind == "tryexc":
            # The try body must end in a may-raise statement (a call or
            # an explicit raise): a handler guarding a body that cannot
            # raise is genuinely unreachable in the CFG, by design.
            try_body = draw(_body(depth + 1))
            if draw(st.booleans()):
                try_body = try_body + ["raise ValueError('x')"]
            else:
                try_body = try_body + ["sink(x)"]
            lines += [
                "try:",
                *indent(try_body),
                "except Exception:",
                *indent(draw(_body(depth + 1))),
            ]
        elif kind == "tryfin":
            lines += [
                "try:",
                *indent(draw(_body(depth + 1))),
                "finally:",
                *indent(draw(_body(depth + 1))),
            ]
        else:
            lines += ["with ctx() as c:", *indent(draw(_body(depth + 1)))]
    return lines


class TestReachabilityProperty:
    @settings(max_examples=60, deadline=None)
    @given(_body())
    def test_every_placed_statement_is_reachable(self, lines):
        source = "def f(x, items):\n" + "\n".join(
            "    " + line for line in lines
        )
        cfg = _cfg(source)
        reachable = _reachable(cfg)
        placement: dict[int, list[int]] = {}
        for block in cfg.blocks:
            for stmt in block.statements:
                placement.setdefault(id(stmt), []).append(block.index)
        for blocks in placement.values():
            assert any(index in reachable for index in blocks)


# -- the checker itself ------------------------------------------------


class TestLeakDetection:
    def test_normal_path_leak(self):
        findings = _typestate(
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run(items):\n"
            "    pool = ProcessPoolExecutor(max_workers=2)\n"
            "    return list(pool.map(str, items))\n"
        )
        assert [f.category for f in findings] == ["leak"]
        assert "normal path" in findings[0].message

    def test_exception_path_leak(self):
        findings = _typestate(
            "def run(path, data):\n"
            "    handle = open(path, 'w')\n"
            "    handle.write(data)\n"
            "    handle.close()\n"
        )
        assert [f.category for f in findings] == ["leak"]
        assert "exception path" in findings[0].message

    def test_try_finally_is_clean(self):
        assert (
            _categories(
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def run(items):\n"
                "    pool = ProcessPoolExecutor(max_workers=2)\n"
                "    try:\n"
                "        return list(pool.map(str, items))\n"
                "    finally:\n"
                "        pool.shutdown()\n"
            )
            == []
        )

    def test_with_statement_is_clean(self):
        assert (
            _categories(
                "def run(path, data):\n"
                "    with open(path, 'w') as handle:\n"
                "        handle.write(data)\n"
            )
            == []
        )

    def test_ownership_transfer_by_return_is_clean(self):
        assert (
            _categories(
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def make(workers):\n"
                "    return ProcessPoolExecutor(max_workers=workers)\n"
            )
            == []
        )

    def test_store_into_registry_is_clean(self):
        assert (
            _categories(
                "from multiprocessing.shared_memory import SharedMemory\n"
                "_LIVE = {}\n"
                "def publish(size):\n"
                "    segment = SharedMemory(create=True, size=size)\n"
                "    _LIVE[segment.name] = segment\n"
                "    return segment.name\n"
            )
            == []
        )

    def test_attaching_without_create_is_not_an_acquisition(self):
        assert (
            _categories(
                "from multiprocessing.shared_memory import SharedMemory\n"
                "def attach(name):\n"
                "    segment = SharedMemory(name=name)\n"
                "    return bytes(segment.buf)\n"
            )
            == []
        )

    def test_none_guard_refinement_keeps_conditional_cleanup_clean(self):
        assert (
            _categories(
                "from multiprocessing.shared_memory import SharedMemory\n"
                "def run(size):\n"
                "    segment = None\n"
                "    try:\n"
                "        segment = SharedMemory(create=True, size=size)\n"
                "        return segment.size\n"
                "    finally:\n"
                "        if segment is not None:\n"
                "            segment.unlink()\n"
            )
            == []
        )


class TestInterproceduralRelease:
    SOURCE = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "def quiet_shutdown(pool):\n"
        "    pool.shutdown()\n"
        "def forwarding_shutdown(pool):\n"
        "    quiet_shutdown(pool)\n"
        "def run(items):\n"
        "    pool = ProcessPoolExecutor(max_workers=2)\n"
        "    try:\n"
        "        return list(pool.map(str, items))\n"
        "    finally:\n"
        "        forwarding_shutdown(pool)\n"
    )

    def test_release_through_helpers_is_clean(self):
        assert check_project(build_project([_context(self.SOURCE)])) == []

    def test_escape_index_sees_the_transitive_release(self):
        project = build_project([_context(self.SOURCE)])
        index = build_escape_index(project)
        assert RELEASES in index["sample.quiet_shutdown"]["pool"]
        assert RELEASES in index["sample.forwarding_shutdown"]["pool"]

    def test_escape_index_records_stores_and_returns(self):
        project = build_project(
            [
                _context(
                    "class Owner:\n"
                    "    def __init__(self, pool):\n"
                    "        self._pool = pool\n"
                    "def passthrough(handle):\n"
                    "    return handle\n"
                )
            ]
        )
        index = build_escape_index(project)
        assert STORES in index["sample.Owner.__init__"]["pool"]
        assert RETURNS in index["sample.passthrough"]["handle"]


class TestUseAfterRelease:
    def test_must_released_use_fires(self):
        findings = _typestate(
            "def run(path):\n"
            "    handle = open(path)\n"
            "    handle.close()\n"
            "    return handle.read()\n"
        )
        assert "use-after-release" in [f.category for f in findings]

    def test_may_released_use_stays_quiet(self):
        assert (
            _categories(
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def run(items, eager):\n"
                "    pool = ProcessPoolExecutor(max_workers=2)\n"
                "    try:\n"
                "        if eager:\n"
                "            pool.shutdown()\n"
                "        return list(pool.map(str, items))\n"
                "    finally:\n"
                "        pool.shutdown()\n"
            )
            == []
        )


class TestDoubleRelease:
    def test_non_idempotent_double_release_fires(self):
        findings = _typestate(
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def run(size):\n"
            "    segment = SharedMemory(create=True, size=size)\n"
            "    segment.unlink()\n"
            "    segment.unlink()\n"
        )
        assert "double-release" in [f.category for f in findings]

    def test_idempotent_double_release_stays_quiet(self):
        findings = _typestate(
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run(items):\n"
            "    pool = ProcessPoolExecutor(max_workers=2)\n"
            "    try:\n"
            "        return list(pool.map(str, items))\n"
            "    finally:\n"
            "        pool.shutdown()\n"
            "        pool.shutdown()\n"
        )
        assert "double-release" not in [f.category for f in findings]


class TestUnownedResource:
    def test_anonymous_handoff_fires(self):
        findings = _typestate(
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run(registry):\n"
            "    registry.attach(ProcessPoolExecutor(max_workers=2))\n"
        )
        assert [f.category for f in findings] == ["unowned"]

    def test_bound_handoff_is_an_ordinary_escape(self):
        findings = _typestate(
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run(registry):\n"
            "    pool = ProcessPoolExecutor(max_workers=2)\n"
            "    try:\n"
            "        registry.attach(pool)\n"
            "    except BaseException:\n"
            "        pool.shutdown()\n"
            "        raise\n"
        )
        assert findings == []


class TestTupleResult:
    def test_publish_tuple_binds_the_segment_element(self):
        findings = _typestate(
            "from repro.engine.broadcast import publish, release\n"
            "def run(payload):\n"
            "    handle, segment, nbytes = publish(payload)\n"
            "    return handle\n"
        )
        assert [f.category for f in findings] == ["leak"]
        assert "broadcast segment" in findings[0].message

    def test_released_publish_tuple_is_clean(self):
        assert (
            _categories(
                "from repro.engine.broadcast import publish, release\n"
                "def run(payload):\n"
                "    handle, segment, nbytes = publish(payload)\n"
                "    try:\n"
                "        return handle\n"
                "    finally:\n"
                "        if segment is not None:\n"
                "            release(segment.name)\n"
            )
            == []
        )
