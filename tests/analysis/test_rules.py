"""Per-rule positive/negative coverage against the fixture files.

Every rule must fire on its ``bad_*`` fixture and stay silent on its
``good_*`` fixture; the good fixtures double as regression tests for
the false-positive traps each rule deliberately avoids (local names
shadowing modules, sort-key lambdas, injectable clock defaults, ...).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_paths, registered_rules

FIXTURES = Path(__file__).parent / "fixtures"

RULE_FIXTURES = [
    ("ROP001", "bad_naked_rng.py", "good_naked_rng.py"),
    ("ROP002", "bad_wall_clock.py", "good_wall_clock.py"),
    ("ROP003", "bad_float_equality.py", "good_float_equality.py"),
    ("ROP004", "bad_executor_submission.py", "good_executor_submission.py"),
    ("ROP005", "bad_bare_assert.py", "good_bare_assert.py"),
    ("ROP006", "bad_mutable_default.py", "good_mutable_default.py"),
    ("ROP007", "bad_shared_mutation.py", "good_shared_mutation.py"),
    ("ROP008", "bad_unit_confusion.py", "good_unit_confusion.py"),
    ("ROP009", "bad_interval_violation.py", "good_interval_violation.py"),
    ("ROP010", "bad_unconverted_return.py", "good_unconverted_return.py"),
    ("ROP011", "bad_unvalidated_boundary.py", "good_unvalidated_boundary.py"),
    ("ROP012", "bad_swallowed_failure.py", "good_swallowed_failure.py"),
    ("ROP013", "bad_impure_submission.py", "good_impure_submission.py"),
    ("ROP014", "bad_nondet_order.py", "good_nondet_order.py"),
    ("ROP015", "bad_seed_discipline.py", "good_seed_discipline.py"),
    ("ROP016", "bad_checkpoint_payload.py", "good_checkpoint_payload.py"),
    ("ROP017", "bad_resource_leak.py", "good_resource_leak.py"),
    ("ROP018", "bad_use_after_release.py", "good_use_after_release.py"),
    ("ROP019", "bad_double_release.py", "good_double_release.py"),
    ("ROP020", "bad_unowned_resource.py", "good_unowned_resource.py"),
]


class TestRegistry:
    def test_every_domain_rule_registered(self):
        ids = set(registered_rules())
        assert {case[0] for case in RULE_FIXTURES} <= ids

    def test_rules_carry_metadata(self):
        for rule_id, rule_class in registered_rules().items():
            assert rule_class.rule_id == rule_id
            assert rule_class.name
            assert rule_class.description
            assert rule_class.hint
            # --explain renders these; every rule must supply them.
            assert rule_class.rationale
            assert rule_class.example_bad
            assert rule_class.example_good


@pytest.mark.parametrize(
    "rule_id,bad_fixture,good_fixture", RULE_FIXTURES
)
class TestRuleFixtures:
    def test_bad_fixture_is_flagged(self, rule_id, bad_fixture, good_fixture):
        result = analyze_paths([FIXTURES / bad_fixture])
        fired = {finding.rule for finding in result.findings}
        assert rule_id in fired
        assert not result.clean

    def test_good_fixture_is_clean(self, rule_id, bad_fixture, good_fixture):
        result = analyze_paths([FIXTURES / good_fixture])
        assert result.findings == ()
        assert result.clean

    def test_findings_carry_location_and_hint(
        self, rule_id, bad_fixture, good_fixture
    ):
        result = analyze_paths([FIXTURES / bad_fixture])
        for finding in result.findings:
            assert finding.line >= 1
            assert finding.column >= 1
            assert bad_fixture in finding.path
            assert finding.hint


class TestSpecificDetections:
    def test_lambda_and_closure_both_flagged(self):
        result = analyze_paths([FIXTURES / "bad_executor_submission.py"])
        messages = [finding.message for finding in result.findings]
        assert any("lambda" in message for message in messages)
        assert any("nested function" in message for message in messages)

    def test_both_mutation_forms_flagged(self):
        result = analyze_paths([FIXTURES / "bad_shared_mutation.py"])
        assert len(result.findings) == 2

    def test_float_equality_counts_each_comparison(self):
        result = analyze_paths([FIXTURES / "bad_float_equality.py"])
        assert len(result.findings) == 3

    def test_unit_confusion_flags_every_mix_site(self):
        result = analyze_paths([FIXTURES / "bad_unit_confusion.py"])
        assert len(result.findings) == 4
        assert {finding.rule for finding in result.findings} == {"ROP008"}

    def test_swallowed_failure_flags_each_shape(self):
        result = analyze_paths([FIXTURES / "bad_swallowed_failure.py"])
        rop012 = [f for f in result.findings if f.rule == "ROP012"]
        assert len(rop012) == 3
        messages = " ".join(finding.message for finding in rop012)
        assert "bare except" in messages
        assert "Exception" in messages
        assert "while True" in messages

    def test_unvalidated_boundary_names_each_field(self):
        result = analyze_paths([FIXTURES / "bad_unvalidated_boundary.py"])
        messages = [finding.message for finding in result.findings]
        assert len(messages) == 3
        assert any("'u_low'" in message for message in messages)
        assert any("'m_degr_percent'" in message for message in messages)
        assert any("'u_high'" in message for message in messages)


class TestSeededRegression:
    """The missing-``/100`` defect the dataflow pass was built to catch."""

    def test_missing_div100_on_m_degr_percent_is_flagged(self):
        result = analyze_paths([FIXTURES / "regression_missing_div100.py"])
        rop008 = [f for f in result.findings if f.rule == "ROP008"]
        assert len(rop008) == 1
        finding = rop008[0]
        assert finding.line == 16
        assert "Percent" in finding.message
        assert "Fraction01" in finding.message


class TestShmPublishLeakRegression:
    """The pre-fault-tolerance ``broadcast.publish`` shm leak.

    The segment used to be created and populated before any owner knew
    about it; a view copy raising mid-loop stranded the ``/dev/shm``
    segment. ROP017 flags the historical shape on its exception paths,
    and the fixed shape (registry store immediately after creation)
    passes clean — the retroactive proof the typestate pass would have
    caught the bug.
    """

    def test_historical_publish_shape_is_flagged(self):
        result = analyze_paths(
            [FIXTURES / "regression_shm_publish_leak.py"]
        )
        rop017 = [f for f in result.findings if f.rule == "ROP017"]
        assert len(rop017) == 1
        assert "SharedMemory segment" in rop017[0].message
        assert "exception path" in rop017[0].message

    def test_fixed_publish_shape_is_clean(self):
        result = analyze_paths(
            [FIXTURES / "regression_shm_publish_fixed.py"]
        )
        assert result.findings == ()
