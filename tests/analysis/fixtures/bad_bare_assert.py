"""ROP005 fixture: runtime invariant guarded by a bare assert."""


def ensure_positive(value):
    assert value > 0
    return value
