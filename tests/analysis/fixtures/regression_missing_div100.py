"""Seeded regression: the missing ``/100`` bug the dataflow pass exists for.

Mirrors the budget clause of
:func:`repro.metrics.compliance.check_compliance` with the percent →
fraction conversion dropped — the exact defect class a one-line edit
could introduce. ROP008 must flag the comparison.
"""

from repro.units import Fraction01, Percent


def meets_band_budget(
    degraded_fraction: Fraction01, m_degr_percent: Percent
) -> bool:
    budget = m_degr_percent  # BUG: should be m_degr_percent / 100.0
    return degraded_fraction <= budget
