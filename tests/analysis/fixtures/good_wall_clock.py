"""ROP002 negative fixture: time is injected, never read directly."""

import time


def stamp(clock=time.perf_counter):
    # Referencing a clock as an injectable default is fine; only call
    # sites that read the wall clock directly are banned.
    return clock()
