"""ROP014 positive fixture: set iteration order flowing into sinks."""

import hashlib
import json


def plan_fingerprint(names):
    unique = set(names)
    # Iteration order of a set is not reproducible across runs, and it
    # lands verbatim in the hash input.
    ordered = [name for name in unique]
    return hashlib.sha256(json.dumps(ordered).encode("utf-8")).hexdigest()


def persist_assignments(checkpointer, assignments):
    placed = []
    for server in {server for server, _ in assignments}:
        placed.append(server)
    checkpointer.save("servers", {"servers": placed})
