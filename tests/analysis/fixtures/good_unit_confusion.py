"""ROP008 good fixture: explicit conversions and legitimate mixing."""

from repro.units import Fraction01, Percent, Probability


def band_budget_met(
    degraded_fraction: Fraction01, m_degr_percent: Percent
) -> bool:
    budget = m_degr_percent / 100.0  # sanctioned conversion
    return degraded_fraction <= budget


def as_percent(fraction: Fraction01) -> Percent:
    return fraction * 100.0  # sanctioned conversion


def cos2_sufficient(ratio: Fraction01, theta: Probability) -> bool:
    # Fraction01 and Probability share dimension and scale: fine.
    return ratio <= theta


def headroom(m_degr_percent: Percent) -> Percent:
    # Percent plus a plain number keeps the percent unit.
    return 100.0 - m_degr_percent


def scaled_demand(demand_cap: float, breakpoint_fraction: Fraction01) -> float:
    # Multiplying amounts by fractions is ordinary arithmetic.
    return demand_cap * breakpoint_fraction
