"""ROP014 negative fixture: orders are materialized before the sinks."""

import hashlib
import json


def plan_fingerprint(names):
    ordered = sorted(set(names))
    return hashlib.sha256(json.dumps(ordered).encode("utf-8")).hexdigest()


def persist_assignments(checkpointer, assignments):
    placed = sorted({server for server, _ in assignments})
    checkpointer.save("servers", {"servers": placed})


def membership_only(names, candidates):
    # Sets used purely for membership never iterate, so they are fine
    # even in a hashing function.
    allowed = set(names)
    kept = [name for name in candidates if name in allowed]
    return hashlib.sha256("".join(kept).encode("utf-8")).hexdigest()
