"""ROP011 good fixture: every unit-annotated field is validated."""

from dataclasses import dataclass

from repro.units import Fraction01, Percent, Probability
from repro.util.validation import require_fraction, require_probability


@dataclass(frozen=True)
class Requirement:
    u_low: Fraction01
    m_degr_percent: Percent
    theta: Probability

    def __post_init__(self) -> None:
        require_fraction(self.u_low, "u_low")
        require_probability(self.theta, "theta")
        if not 0.0 <= self.m_degr_percent < 100.0:
            raise ValueError(
                f"M_degr must be in [0, 100), got {self.m_degr_percent}"
            )


@dataclass(frozen=True)
class Unitless:
    # Fields without unit markers are outside the rule's scope.
    name: str
    weight: float
