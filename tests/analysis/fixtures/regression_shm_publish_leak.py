"""The shared-memory publish leak ROP017 exists to catch.

This mirrors ``repro.engine.broadcast.publish`` as it stood before the
fault-tolerance PR fixed it: the segment was created and populated
*before* any owner knew about it, so an ``np.ndarray`` construction or
view copy that raised mid-loop stranded the ``/dev/shm`` segment until
interpreter exit. The fixed shape (see
``regression_shm_publish_fixed.py``) registers the segment in the
module registry immediately after creation.
"""

import numpy as np
from multiprocessing import shared_memory

_PUBLISHED = {}


def publish(arrays):
    total = sum(array.nbytes for array in arrays)
    segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
    specs = []
    offset = 0
    for array in arrays:
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf, offset=offset
        )
        view[...] = array
        specs.append((offset, array.shape, array.dtype.str))
        offset += array.nbytes
    handle = {"segment_name": segment.name, "specs": tuple(specs)}
    _PUBLISHED[segment.name] = segment
    return handle, segment, total
