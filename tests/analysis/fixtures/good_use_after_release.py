"""ROP018 negative fixture: rebinding and may-released joins stay quiet.

A name rebound to a fresh resource is a new resource, and a use that
is only *possibly* after release (one branch released, one did not)
must not fire — ROP018 reports must-facts only.
"""

from concurrent.futures import ProcessPoolExecutor


def close_then_reopen(path):
    handle = open(path)
    try:
        first = handle.read()
    finally:
        handle.close()
    handle = open(path)
    try:
        return first + handle.read()
    finally:
        handle.close()


def maybe_released(items, eager):
    pool = ProcessPoolExecutor(max_workers=2)
    try:
        if eager:
            pool.shutdown()
        return list(pool.map(str, items))
    finally:
        pool.shutdown()
