"""Fixture: failure handling the swallowed-failure rule must flag."""


def ingest(rows):
    parsed = []
    for row in rows:
        try:
            parsed.append(float(row))
        except:  # noqa: E722 — the bare except is the point
            parsed.append(0.0)
    return parsed


def probe(connection):
    try:
        connection.ping()
    except Exception:
        pass


def drain(queue):
    while True:
        try:
            return queue.pop()
        except IndexError:
            continue
