"""ROP001 negative fixture: randomness arrives as a seeded generator."""

from repro.util.rng import derive_rng


def jitter(seed, scale):
    rng = derive_rng(seed)
    # Drawing from a passed-in generator is the sanctioned pattern; the
    # local name ``rng`` must not be mistaken for the random module.
    return rng.random() * scale
