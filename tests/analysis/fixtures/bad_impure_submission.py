"""ROP013 positive fixture: transitively impure executor work units.

The impurity is deliberately buried one call deep — the submitted
callable itself looks innocent, which is exactly the case the
module-local ROP004 heuristics cannot see and the interprocedural
effect engine can.
"""

import random
import time

_COMPLETED = 0


def _draw():
    # Ambient RNG two frames below the submission site.
    return random.random()


def rng_worker(shared, item):
    return _draw() + item


def clock_worker(shared, item):
    return time.time() + item


def counting_worker(shared, item):
    global _COMPLETED
    _COMPLETED += 1
    return item


def fan_out(executor, items):
    with executor.session(0) as session:
        first = list(session.map(rng_worker, items))
        second = list(session.map(clock_worker, items))
        third = list(session.map(counting_worker, items))
    return first, second, third
