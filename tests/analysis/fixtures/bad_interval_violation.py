"""ROP009 bad fixture: values provably outside their declared domain."""

from repro.units import Fraction01, Probability


def impossible_guard(theta: Probability) -> bool:
    return theta > 1.5  # a probability can never exceed 1


def overflow() -> None:
    theta: Probability = 1.5  # assigned outside [0, 1]
    del theta


def takes_fraction(value: Fraction01) -> Fraction01:
    return value


def out_of_domain_argument() -> Fraction01:
    return takes_fraction(250.0)  # argument provably outside [0, 1]
