"""ROP004 fixture: unpicklable work units handed to an executor."""


def fan_out_lambda(executor, items):
    return executor.map(lambda shared, item: item, items)


def fan_out_closure(session, items):
    def work(shared, item):
        return item

    return session.map(work, items)
