"""ROP002 fixture: reads the wall clock in library-style code."""

import time
from datetime import datetime


def stamp():
    return time.time()


def today():
    return datetime.now()
