"""ROP007 fixture: a work unit mutating its broadcast payload."""


def tally_worker(shared, item):
    shared["seen"] += 1
    shared.results.append(item)
    return item
