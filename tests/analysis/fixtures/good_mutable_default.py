"""ROP006 negative fixture: None default, container built per call."""


def collect(item, acc=None):
    if acc is None:
        acc = []
    acc.append(item)
    return acc
