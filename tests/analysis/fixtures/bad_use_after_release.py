"""ROP018 positive fixture: operations on already-released resources."""

from concurrent.futures import ProcessPoolExecutor


def map_after_shutdown(items):
    pool = ProcessPoolExecutor(max_workers=2)
    pool.shutdown()
    return list(pool.map(str, items))


def read_after_close(path):
    handle = open(path)
    handle.close()
    return handle.read()
