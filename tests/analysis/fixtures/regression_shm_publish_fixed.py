"""The post-fix publish shape: ownership established before any risk.

Identical to ``regression_shm_publish_leak.py`` except the segment is
stored in the module registry immediately after creation — every
raise site after that point finds the segment already owned, so a
failed copy no longer strands it.
"""

import numpy as np
from multiprocessing import shared_memory

_PUBLISHED = {}


def publish(arrays):
    total = sum(array.nbytes for array in arrays)
    segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
    _PUBLISHED[segment.name] = segment
    specs = []
    offset = 0
    for array in arrays:
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf, offset=offset
        )
        view[...] = array
        specs.append((offset, array.shape, array.dtype.str))
        offset += array.nbytes
    handle = {"segment_name": segment.name, "specs": tuple(specs)}
    return handle, segment, total
