"""ROP015 positive fixture: RNG objects crossing boundaries."""

import numpy as np

from repro.util.rng import derive_rng


def worker(shared, item):
    rng, value = item
    return float(rng.normal()) + value


def fan_out(executor, items, seed):
    rng = derive_rng(seed)
    # Every worker unpickles a copy of the same generator: the streams
    # collide instead of being independent.
    with executor.session(0) as session:
        return list(session.map(worker, [(rng, item) for item in items]))


def persist(checkpointer, rng: np.random.Generator) -> None:
    # Generators are not JSON values; checkpoint their state, not them.
    checkpointer.save("rng", {"rng": rng})
