"""ROP016 negative fixture: payloads built from stable values only."""


def save_progress(checkpointer, generation, scores, tags):
    payload = {
        "generation": generation,
        "scores": list(scores),
        "tags": sorted(set(tags)),
        "best": max(scores),
    }
    checkpointer.save("progress", payload)


def _build_summary(best, elapsed_seconds):
    # Timing measured by the driver arrives as a plain float argument.
    return {"best": best, "elapsed_seconds": elapsed_seconds}


def save_summary(checkpointer, best, elapsed_seconds):
    checkpointer.save("summary", _build_summary(best, elapsed_seconds))
