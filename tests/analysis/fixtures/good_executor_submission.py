"""ROP004 negative fixture: module-level work unit; lambdas stay local."""


def work(shared, item):
    return item


def fan_out(executor, items):
    return executor.map(work, items)


def rank(items):
    # Sort-key lambdas never leave the driver process.
    return sorted(items, key=lambda item: item[1])
