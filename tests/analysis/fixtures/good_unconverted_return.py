"""ROP010 good fixture: conversions applied before returning."""

from repro.units import Fraction01, Percent


def compliance_target(m_degr_percent: Percent) -> Fraction01:
    return (100.0 - m_degr_percent) / 100.0


def compliance_percent(m_degr_percent: Percent) -> Percent:
    return 100.0 - m_degr_percent


def budget_from(qos: object) -> Fraction01:
    return qos.m_degr_fraction  # type: ignore[attr-defined]
