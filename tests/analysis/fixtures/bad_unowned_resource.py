"""ROP020 positive fixture: fresh resources handed off anonymously.

Passing a just-acquired resource straight into an unknown callee
without ever binding it means no code in this function *can* release
it — ownership silently depends on the callee doing the right thing.
"""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing.shared_memory import SharedMemory


def attach_anonymous_pool(registry):
    registry.attach(ProcessPoolExecutor(max_workers=2))


def log_anonymous_segment(sink, size):
    sink.record(SharedMemory(create=True, size=size))
