"""ROP007 negative fixture: the payload is read; results are returned."""


def tally_worker(shared, item):
    limit = shared["limit"]
    local = dict(shared)
    local["seen"] = item
    return (item, limit, local)
