"""ROP009 good fixture: comparisons and flows that stay in-domain."""

from repro.units import Fraction01, Probability


def plausible_guard(theta: Probability) -> bool:
    return theta > 0.95  # inside [0, 1]


def boundary_guard(theta: Probability) -> bool:
    return theta >= 1.0  # the endpoint itself belongs to the domain


def takes_fraction(value: Fraction01) -> Fraction01:
    return value


def in_domain_argument() -> Fraction01:
    return takes_fraction(0.5)


def refined_by_branch(utilization: float) -> Probability:
    # The branch proves the value is in [0, 1] before it is used.
    if 0.0 <= utilization <= 1.0:
        result: Probability = utilization
        return result
    return 1.0
