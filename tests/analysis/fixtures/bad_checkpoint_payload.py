"""ROP016 positive fixture: payloads that break bit-stable round-trips."""

import time


def save_progress(checkpointer, generation, scores):
    payload = {
        "generation": generation,
        "scores": list(scores),
        "saved_at": time.time(),
        "tags": {"elite", "mutated"},
    }
    checkpointer.save("progress", payload)


def _build_summary(best):
    return {"best": best, "sentinel": float("nan")}


def save_summary(checkpointer, best):
    checkpointer.save("summary", _build_summary(best))
