"""ROP011 bad fixture: unit-annotated fields nobody range-checks."""

from dataclasses import dataclass

from repro.units import Fraction01, Percent, Probability


@dataclass(frozen=True)
class Requirement:
    u_low: Fraction01  # no __post_init__ at all
    m_degr_percent: Percent


@dataclass
class Partial:
    theta: Probability
    u_high: Fraction01

    def __post_init__(self) -> None:
        if not 0.0 <= self.theta <= 1.0:
            raise ValueError(f"theta must be in [0, 1], got {self.theta}")
        # u_high is never checked.
