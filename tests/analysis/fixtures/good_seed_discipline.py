"""ROP015 negative fixture: integer seeds cross, generators do not."""

import numpy as np

from repro.util.rng import derive_rng


def worker(shared, item):
    seed, value = item
    rng = derive_rng(seed)
    return float(rng.normal()) + value


def fan_out(executor, items, base_seed):
    pairs = [(base_seed + index, item) for index, item in enumerate(items)]
    with executor.session(0) as session:
        return list(session.map(worker, pairs))


def persist(checkpointer, rng: np.random.Generator) -> None:
    # Explicit state extraction is the sanctioned checkpoint form.
    checkpointer.save("rng", {"state": rng.bit_generator.state})
