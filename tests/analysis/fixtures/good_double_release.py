"""ROP019 negative fixture: idempotent and single releases stay quiet."""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing.shared_memory import SharedMemory


def shutdown_twice(items):
    pool = ProcessPoolExecutor(max_workers=2)
    try:
        return list(pool.map(str, items))
    finally:
        pool.shutdown()
        pool.shutdown()


def close_is_neutral(size):
    segment = SharedMemory(create=True, size=size)
    try:
        return segment.size
    finally:
        segment.close()
        segment.unlink()
