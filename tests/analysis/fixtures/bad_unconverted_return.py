"""ROP010 bad fixture: returning one unit under another's annotation."""

from repro.units import Fraction01, Percent


def compliance_target(m_degr_percent: Percent) -> Fraction01:
    return 100.0 - m_degr_percent  # still a Percent


def budget_from(qos: object) -> Fraction01:
    # Paper-symbol attributes carry their conventional unit.
    return qos.m_degr_percent  # type: ignore[attr-defined]
