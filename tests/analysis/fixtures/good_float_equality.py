"""ROP003 negative fixture: tolerance helpers and exact int equality."""

from repro.util.floats import is_zero, isclose


def meets_ceiling(violation_fraction):
    return is_zero(violation_fraction)


def is_hard_guarantee(theta):
    return isclose(theta, 1.0)


def exactly_empty(count):
    # Integer equality is exact and allowed.
    return count == 0
