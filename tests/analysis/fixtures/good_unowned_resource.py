"""ROP020 negative fixture: bind before handing off, or transfer clearly.

Once the resource has a local name the function retains a handle, the
hand-off reads as an ordinary optimistic ownership escape, and the
except-release-reraise guard keeps the exception paths leak-free.
"""

from concurrent.futures import ProcessPoolExecutor


def attach_bound_pool(registry):
    pool = ProcessPoolExecutor(max_workers=2)
    try:
        registry.attach(pool)
    except BaseException:
        pool.shutdown()
        raise


def construct_and_return(workers):
    return ProcessPoolExecutor(max_workers=workers)
