"""ROP005 negative fixture: invariants raise a library error."""

from repro.exceptions import InvariantError


def ensure_positive(value):
    if value <= 0:
        raise InvariantError(f"value must be positive, got {value}")
    return value
