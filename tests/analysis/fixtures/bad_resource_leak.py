"""ROP017 positive fixture: resources that can leak on some path.

Three shapes: a segment that is never unlinked (normal-path leak), a
pool that is never shut down, and a file handle closed only on the
success path (exception-path leak — the ``write`` can raise first).
"""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing.shared_memory import SharedMemory


def leaky_segment(payload):
    segment = SharedMemory(create=True, size=len(payload))
    segment.buf[: len(payload)] = payload
    return len(payload)


def leaky_pool(items):
    pool = ProcessPoolExecutor(max_workers=2)
    return list(pool.map(str, items))


def leak_on_error_only(path, data):
    handle = open(path, "w")
    handle.write(data)
    handle.close()
    return True
