"""ROP008 bad fixture: Percent values meeting fractions unconverted."""

from repro.units import Fraction01, Percent, Probability


def band_budget_met(
    degraded_fraction: Fraction01, m_degr_percent: Percent
) -> bool:
    budget = m_degr_percent  # forgot / 100.0
    return degraded_fraction <= budget  # comparison mixes units


def slack(m_degr_percent: Percent, acceptable_fraction: Fraction01) -> float:
    return acceptable_fraction + m_degr_percent  # arithmetic mixes units


def fraction_budget(budget: Fraction01) -> Fraction01:
    return budget


def wire(m_degr_percent: Percent) -> Fraction01:
    return fraction_budget(m_degr_percent)  # Percent into Fraction01 param


def mislabel(m_degr_percent: Percent) -> None:
    threshold: Probability = m_degr_percent  # annotated assignment mixes
    del threshold
