"""ROP013 negative fixture: determinism threaded through arguments.

Workers draw only from generators derived from explicit per-item
seeds, and all timing happens in the driver.
"""

from repro.util.rng import derive_rng


def _scale(value, factor):
    return value * factor


def seeded_worker(shared, item):
    seed, value = item
    rng = derive_rng(seed)
    return float(rng.normal()) + _scale(value, shared)


def pure_worker(shared, item):
    return _scale(item, shared)


def fan_out(executor, items, base_seed):
    pairs = [(base_seed + index, item) for index, item in enumerate(items)]
    with executor.session(2) as session:
        drawn = list(session.map(seeded_worker, pairs))
        scaled = list(session.map(pure_worker, items))
    return drawn, scaled
