"""ROP019 positive fixture: double-unlink of a shared-memory segment.

``SharedMemory.unlink`` raises ``FileNotFoundError`` the second time —
unlike ``Executor.shutdown`` or ``file.close``, which are idempotent
and deliberately exempt.
"""

from multiprocessing.shared_memory import SharedMemory


def unlink_twice(size):
    segment = SharedMemory(create=True, size=size)
    segment.close()
    segment.unlink()
    segment.unlink()
