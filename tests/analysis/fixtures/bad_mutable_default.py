"""ROP006 fixture: mutable default arguments."""


def collect(item, acc=[]):
    acc.append(item)
    return acc


def tally(item, counts=dict()):
    counts[item] = counts.get(item, 0) + 1
    return counts
