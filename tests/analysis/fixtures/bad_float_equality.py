"""ROP003 fixture: exact equality against float literals."""


def meets_ceiling(violation_fraction):
    return violation_fraction == 0.0


def is_hard_guarantee(theta):
    return 1.0 == theta


def differs(value):
    return value != -2.5
