"""ROP017 negative fixture: every sanctioned ownership shape.

try/finally release, ``with``-managed handles, ownership transfer by
return, and ownership transfer into a module registry (the pattern
``repro.engine.broadcast`` uses) must all read as non-leaking.
"""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing.shared_memory import SharedMemory

_REGISTRY = {}


def released_in_finally(payload):
    segment = SharedMemory(create=True, size=len(payload))
    try:
        segment.buf[: len(payload)] = payload
        return len(payload)
    finally:
        segment.close()
        segment.unlink()


def pooled(items):
    pool = ProcessPoolExecutor(max_workers=2)
    try:
        return list(pool.map(str, items))
    finally:
        pool.shutdown()


def context_managed(items):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return list(pool.map(str, items))


def stored_in_registry(payload):
    segment = SharedMemory(create=True, size=len(payload))
    _REGISTRY[segment.name] = segment
    return segment.name


def transferred_to_caller(workers):
    return ProcessPoolExecutor(max_workers=workers)


def with_managed_file(path, lines):
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line)
