"""Fixture: disciplined failure handling the rule must stay quiet on."""

from repro.exceptions import TraceError


def parse(cell):
    try:
        return float(cell)
    except ValueError as error:
        raise TraceError(f"unparsable cell {cell!r}") from error


def cleanup(segment):
    # Narrow and deliberate: the buffer may already be gone, and that is
    # the one outcome cleanup is allowed to ignore.
    try:
        segment.close()
    except OSError:
        pass


def classify(callback, failures):
    try:
        callback()
    except Exception as error:
        failures.append(error)


def reraise(callback):
    try:
        callback()
    except BaseException:
        raise


def drain(queue, budget):
    for _ in range(budget):
        try:
            return queue.pop()
        except IndexError:
            continue
    raise TraceError("queue stayed empty after bounded retries")
