"""ROP001 fixture: draws randomness outside repro/util/rng.py."""

import random

import numpy as np


def jitter(scale):
    return random.random() * scale


def make_generator(seed):
    return np.random.default_rng(seed)
