"""Baseline workflow: record findings once, fail only on new ones."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    analyze_paths,
    load_baseline,
    write_baseline,
)
from repro.analysis.runner import main
from repro.exceptions import ConfigurationError

FIXTURES = Path(__file__).parent / "fixtures"


class TestBaselineApi:
    def test_baseline_suppresses_recorded_findings(self, tmp_path):
        target = FIXTURES / "bad_float_equality.py"
        initial = analyze_paths([target])
        assert initial.findings

        baseline_path = tmp_path / "baseline.json"
        count = write_baseline(initial.findings, baseline_path)
        assert count == len(initial.findings)

        rerun = analyze_paths(
            [target], AnalysisConfig(baseline=baseline_path)
        )
        assert rerun.findings == ()
        assert rerun.suppressed_baseline == count
        assert rerun.clean

    def test_new_findings_survive_baseline(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(
            analyze_paths([FIXTURES / "bad_float_equality.py"]).findings,
            baseline_path,
        )
        # A different file's findings are not in the baseline.
        result = analyze_paths(
            [FIXTURES / "bad_bare_assert.py"],
            AnalysisConfig(baseline=baseline_path),
        )
        assert result.findings
        assert not result.clean

    def test_round_trip_through_loader(self, tmp_path):
        findings = analyze_paths([FIXTURES / "bad_naked_rng.py"]).findings
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings, baseline_path)
        fingerprints = load_baseline(baseline_path)
        assert fingerprints == {
            finding.fingerprint() for finding in findings
        }

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{'nope")
        with pytest.raises(ConfigurationError):
            load_baseline(path)


class TestBaselineCli:
    def test_write_then_enforce(self, tmp_path, capsys):
        target = str(FIXTURES / "bad_mutable_default.py")
        baseline_path = tmp_path / "baseline.json"

        code = main(
            [
                target,
                "--baseline",
                str(baseline_path),
                "--write-baseline",
                "--no-config",
            ]
        )
        assert code == 0
        assert baseline_path.exists()
        assert "wrote" in capsys.readouterr().out

        code = main(
            [target, "--baseline", str(baseline_path), "--no-config"]
        )
        assert code == 0

    def test_write_baseline_requires_path(self, capsys):
        target = str(FIXTURES / "bad_mutable_default.py")
        assert main([target, "--write-baseline", "--no-config"]) == 2
