"""Runner behaviour: tree walking, suppression layers, exit codes."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis import AnalysisConfig, analyze_paths, resolve_config
from repro.analysis.findings import Severity
from repro.analysis.runner import main
from repro.cli import main as cli_main
from repro.exceptions import ConfigurationError

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


class TestShippedTreeClean:
    def test_src_tree_has_no_findings(self):
        """The invariants hold over the library we actually ship."""
        package_dir = Path(repro.__file__).parent
        result = analyze_paths([package_dir])
        assert result.findings == (), [
            finding.location + " " + finding.rule
            for finding in result.findings
        ]
        assert result.files_analyzed > 50

    def test_fixture_directory_is_dirty(self):
        """Sanity check: the analyzer is not trivially green."""
        result = analyze_paths([FIXTURES])
        fired = {finding.rule for finding in result.findings}
        assert len(fired) >= 7


class TestInlineSuppression:
    def test_scoped_ignore_silences_one_rule(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "def check(x):\n"
            "    return x == 0.0  # ropus: ignore[ROP003]\n"
        )
        result = analyze_paths([path])
        assert result.findings == ()
        assert result.suppressed_inline == 1

    def test_scoped_ignore_keeps_other_rules(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "def check(x):\n"
            "    assert x == 0.0  # ropus: ignore[ROP003]\n"
        )
        result = analyze_paths([path])
        assert {finding.rule for finding in result.findings} == {"ROP005"}
        assert result.suppressed_inline == 1

    def test_unscoped_ignore_silences_everything_on_line(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "def check(x):\n"
            "    assert x == 0.0  # ropus: ignore\n"
        )
        result = analyze_paths([path])
        assert result.findings == ()
        assert result.suppressed_inline == 2


class TestConfig:
    def test_select_restricts_rules(self):
        config = AnalysisConfig(select=frozenset({"ROP001"}))
        result = analyze_paths([FIXTURES / "bad_float_equality.py"], config)
        assert result.findings == ()

    def test_ignore_drops_rules(self):
        config = AnalysisConfig(ignore=frozenset({"ROP003"}))
        result = analyze_paths([FIXTURES / "bad_float_equality.py"], config)
        assert result.findings == ()

    def test_exclude_skips_paths(self):
        config = AnalysisConfig(exclude=("fixtures",))
        result = analyze_paths([FIXTURES], config)
        assert result.files_analyzed == 0

    def test_severity_override_downgrades_to_warning(self):
        config = resolve_config(
            pyproject={"severity": {"ROP003": "warning"}}
        )
        result = analyze_paths([FIXTURES / "bad_float_equality.py"], config)
        assert result.findings
        assert all(
            finding.severity is Severity.WARNING
            for finding in result.findings
        )
        assert result.clean  # warnings do not fail the run

    def test_pyproject_table_flows_into_config(self):
        config = resolve_config(
            pyproject={"select": "ROP001,ROP002", "exclude": ["fixtures"]}
        )
        assert config.select == frozenset({"ROP001", "ROP002"})
        assert config.exclude == ("fixtures",)


class TestPytestModuleExemption:
    """ROP005 stays silent in pytest files (benchmarks are pytest-run)."""

    @pytest.mark.parametrize("name", ["test_fig9.py", "conftest.py"])
    def test_assert_allowed_in_pytest_modules(self, tmp_path, name):
        path = tmp_path / name
        path.write_text("def check(flag):\n    assert flag\n")
        result = analyze_paths([path])
        assert result.findings == ()

    def test_assert_still_flagged_elsewhere(self, tmp_path):
        path = tmp_path / "pipeline.py"
        path.write_text("def check(flag):\n    assert flag\n")
        result = analyze_paths([path])
        assert {finding.rule for finding in result.findings} == {"ROP005"}


class TestRuleIdValidation:
    def test_unknown_select_id_is_rejected(self):
        with pytest.raises(ConfigurationError, match="ROP999"):
            resolve_config(select="ROP999")

    def test_unknown_ignore_id_is_rejected(self):
        with pytest.raises(ConfigurationError, match="ignore"):
            resolve_config(ignore="ROP001,ROP424")

    def test_unknown_pyproject_select_is_rejected(self):
        with pytest.raises(ConfigurationError, match="ROP999"):
            resolve_config(pyproject={"select": ["ROP999"]})

    def test_cli_reports_usage_error_for_unknown_rule(self, capsys):
        code = main(
            [str(FIXTURES / "good_naked_rng.py"), "--select", "ROP999"]
        )
        assert code == 2
        assert "ROP999" in capsys.readouterr().err


class TestCliPrecedence:
    """CLI ``--select``/``--ignore`` beat ``[tool.repro-analysis]``."""

    @staticmethod
    def _project(tmp_path: Path) -> Path:
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-analysis]\nselect = [\"ROP005\"]\n"
        )
        module = tmp_path / "module.py"
        module.write_text(
            (FIXTURES / "bad_float_equality.py").read_text()
        )
        return module

    def test_resolve_config_prefers_cli_values(self):
        config = resolve_config(
            select="ROP003", pyproject={"select": "ROP001"}
        )
        assert config.select == frozenset({"ROP003"})
        config = resolve_config(
            ignore="ROP003", pyproject={"ignore": "ROP001"}
        )
        assert config.ignore == frozenset({"ROP003"})

    def test_module_entry_pyproject_applies_without_flags(self, tmp_path):
        module = self._project(tmp_path)
        # Table selects ROP005 only; the file only violates ROP003.
        assert main([str(module)]) == 0

    def test_module_entry_cli_select_overrides_table(self, tmp_path, capsys):
        module = self._project(tmp_path)
        assert main([str(module), "--select", "ROP003"]) == 1
        assert "ROP003" in capsys.readouterr().out

    def test_ropus_lint_cli_select_overrides_table(self, tmp_path, capsys):
        module = self._project(tmp_path)
        assert cli_main(["lint", str(module)]) == 0
        assert cli_main(["lint", str(module), "--select", "ROP003"]) == 1
        assert "ROP003" in capsys.readouterr().out


class TestSyntaxErrors:
    def test_unparsable_file_reports_rop000(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        result = analyze_paths([path])
        assert [finding.rule for finding in result.findings] == ["ROP000"]
        assert not result.clean


class TestExitCodes:
    def test_main_clean_returns_zero(self):
        assert main([str(FIXTURES / "good_naked_rng.py"), "--no-config"]) == 0

    def test_main_findings_return_one(self, capsys):
        code = main([str(FIXTURES / "bad_naked_rng.py"), "--no-config"])
        assert code == 1
        out = capsys.readouterr().out
        assert "ROP001" in out

    def test_main_missing_path_returns_two(self, capsys):
        assert main(["definitely/not/a/path.py"]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("ROP001", "ROP004", "ROP007"):
            assert rule_id in out

    def test_module_entry_point(self):
        """``python -m repro.analysis`` is the CI gate — must exit 0/1."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        clean = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr
        dirty = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis",
                str(FIXTURES / "bad_bare_assert.py"),
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        assert dirty.returncode == 1, dirty.stdout + dirty.stderr


class TestUpdateBaseline:
    _VIOLATING = "import time\n\n\ndef stamped():\n    return time.time()\n"
    _CLEAN = "def stamped(now):\n    return now\n"

    def test_prunes_stale_entries_with_warning(self, tmp_path, capsys):
        subject = tmp_path / "subject.py"
        subject.write_text(self._VIOLATING, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert main(
            [
                str(subject),
                "--baseline",
                str(baseline),
                "--write-baseline",
                "--no-config",
            ]
        ) == 0
        # Pay the debt: the baselined finding no longer exists.
        subject.write_text(self._CLEAN, encoding="utf-8")
        assert main(
            [
                str(subject),
                "--baseline",
                str(baseline),
                "--update-baseline",
                "--no-config",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "stale suppression pruned" in captured.err
        assert "ROP002" in captured.err
        assert "pruned 1 stale" in captured.out

        from repro.analysis import load_baseline

        assert load_baseline(baseline) == set()

    def test_keeps_live_entries_and_never_adds(self, tmp_path, capsys):
        subject = tmp_path / "subject.py"
        subject.write_text(self._VIOLATING, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert main(
            [
                str(subject),
                "--baseline",
                str(baseline),
                "--write-baseline",
                "--no-config",
            ]
        ) == 0
        # Introduce a *new* violation alongside the baselined one.
        subject.write_text(
            self._VIOLATING + "\n\ndef drawn():\n    import random\n"
            "    return random.random()\n",
            encoding="utf-8",
        )
        assert main(
            [
                str(subject),
                "--baseline",
                str(baseline),
                "--update-baseline",
                "--no-config",
            ]
        ) == 0
        assert "pruned 0 stale" in capsys.readouterr().out

        from repro.analysis import load_baseline

        kept = load_baseline(baseline)
        assert {rule for rule, _, _ in kept} == {"ROP002"}
        # The run with the pruned baseline still fails on the new debt.
        code = main(
            [str(subject), "--baseline", str(baseline), "--no-config"]
        )
        assert code == 1

    def test_update_requires_baseline_path(self, tmp_path, capsys):
        subject = tmp_path / "subject.py"
        subject.write_text(self._CLEAN, encoding="utf-8")
        assert main([str(subject), "--update-baseline", "--no-config"]) == 2
        assert "--baseline" in capsys.readouterr().err


class TestChangedMode:
    @staticmethod
    def _git(repo: Path, *args: str) -> None:
        subprocess.run(
            [
                "git",
                "-c",
                "user.email=test@example.com",
                "-c",
                "user.name=test",
                *args,
            ],
            cwd=repo,
            check=True,
            capture_output=True,
        )

    def test_changed_scopes_to_modified_files(
        self, tmp_path, capsys, monkeypatch
    ):
        repo = tmp_path / "repo"
        repo.mkdir()
        self._git(repo, "init", "-q")
        committed = repo / "committed.py"
        committed.write_text(
            "import time\n\n\ndef old():\n    return time.time()\n",
            encoding="utf-8",
        )
        self._git(repo, "add", "committed.py")
        self._git(repo, "commit", "-q", "-m", "seed")

        fresh = repo / "fresh.py"
        fresh.write_text(
            "import random\n\n\ndef draw():\n    return random.random()\n",
            encoding="utf-8",
        )
        monkeypatch.chdir(repo)
        # Only the untracked file is analyzed: the committed violation
        # stays invisible to --changed.
        assert main([".", "--changed", "--no-config"]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out
        assert "committed.py" not in out

    def test_changed_with_clean_tree_is_a_noop(
        self, tmp_path, capsys, monkeypatch
    ):
        repo = tmp_path / "repo"
        repo.mkdir()
        self._git(repo, "init", "-q")
        module = repo / "module.py"
        module.write_text("def identity(x):\n    return x\n", encoding="utf-8")
        self._git(repo, "add", "module.py")
        self._git(repo, "commit", "-q", "-m", "seed")
        monkeypatch.chdir(repo)
        assert main([".", "--changed", "--no-config"]) == 0
        assert "no changed Python files" in capsys.readouterr().out


LEAKY_SOURCE = (
    "from multiprocessing import shared_memory\n"
    "\n"
    "\n"
    "def publish(payload, n):\n"
    "    segment = shared_memory.SharedMemory(create=True, size=n)\n"
    "    payload.copy_into(segment)\n"
    "    segment.unlink()\n"
)


class TestProjectFindingsCache:
    """The .ropus_cache/ memoisation of project-scope findings."""

    def _config(self, tmp_path):
        return AnalysisConfig(cache_dir=tmp_path / ".ropus_cache")

    def test_run_writes_one_cache_entry(self, tmp_path):
        module = tmp_path / "leak.py"
        module.write_text(LEAKY_SOURCE, encoding="utf-8")
        config = self._config(tmp_path)
        result = analyze_paths([module], config)
        assert {finding.rule for finding in result.findings} == {"ROP017"}
        entries = list((tmp_path / ".ropus_cache").glob("project-*.json"))
        assert len(entries) == 1

    def test_hit_replays_stored_findings(self, tmp_path):
        """The second run reads the entry instead of re-analyzing.

        Proven by tampering with the stored message: if the cache were
        bypassed the recomputed finding would not carry the marker.
        """
        module = tmp_path / "leak.py"
        module.write_text(LEAKY_SOURCE, encoding="utf-8")
        config = self._config(tmp_path)
        first = analyze_paths([module], config)

        [entry] = (tmp_path / ".ropus_cache").glob("project-*.json")
        document = entry.read_text(encoding="utf-8")
        entry.write_text(
            document.replace("may never be released", "CACHED-MARKER"),
            encoding="utf-8",
        )
        second = analyze_paths([module], config)
        assert len(second.findings) == len(first.findings) == 1
        assert "CACHED-MARKER" in second.findings[0].message

    def test_editing_the_file_invalidates(self, tmp_path):
        module = tmp_path / "leak.py"
        module.write_text(LEAKY_SOURCE, encoding="utf-8")
        config = self._config(tmp_path)
        assert len(analyze_paths([module], config).findings) == 1

        fixed = LEAKY_SOURCE.replace(
            "    payload.copy_into(segment)\n    segment.unlink()\n",
            "    try:\n"
            "        payload.copy_into(segment)\n"
            "    finally:\n"
            "        segment.unlink()\n",
        )
        assert fixed != LEAKY_SOURCE
        module.write_text(fixed, encoding="utf-8")
        result = analyze_paths([module], config)
        assert result.findings == ()
        entries = list((tmp_path / ".ropus_cache").glob("project-*.json"))
        assert len(entries) == 2  # old key untouched, new key added

    def test_rule_selection_changes_the_key(self, tmp_path):
        module = tmp_path / "leak.py"
        module.write_text(LEAKY_SOURCE, encoding="utf-8")
        cache_dir = tmp_path / ".ropus_cache"
        analyze_paths(
            [module], AnalysisConfig(cache_dir=cache_dir)
        )
        analyze_paths(
            [module],
            AnalysisConfig(
                cache_dir=cache_dir, select=frozenset({"ROP017"})
            ),
        )
        assert len(list(cache_dir.glob("project-*.json"))) == 2

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        module = tmp_path / "leak.py"
        module.write_text(LEAKY_SOURCE, encoding="utf-8")
        config = self._config(tmp_path)
        analyze_paths([module], config)
        [entry] = (tmp_path / ".ropus_cache").glob("project-*.json")
        entry.write_text("{not json", encoding="utf-8")
        result = analyze_paths([module], config)
        assert len(result.findings) == 1  # recomputed, then re-stored
        assert "not json" not in entry.read_text(encoding="utf-8")

    def test_no_cache_flag_disables_writes(self, tmp_path, monkeypatch):
        module = tmp_path / "leak.py"
        module.write_text(LEAKY_SOURCE, encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main([str(module), "--no-config", "--no-cache"]) == 1
        assert not (tmp_path / ".ropus_cache").exists()

    def test_cli_run_populates_default_directory(
        self, tmp_path, monkeypatch
    ):
        module = tmp_path / "leak.py"
        module.write_text(LEAKY_SOURCE, encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main([str(module), "--no-config"]) == 1
        assert list((tmp_path / ".ropus_cache").glob("project-*.json"))


class TestExplain:
    def test_explain_prints_the_rule_card(self, capsys):
        assert main(["--explain", "ROP017"]) == 0
        out = capsys.readouterr().out
        assert "ROP017: resource-leak-on-path [error]" in out
        assert "Why it matters:" in out
        assert "Flagged:" in out
        assert "Sanctioned:" in out
        assert "Hint:" in out

    def test_explain_unknown_rule_exits_2(self, capsys):
        assert main(["--explain", "ROP999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_every_rule_renders_a_full_card(self):
        from repro.analysis.rules import registered_rules
        from repro.analysis.runner import explain_rule

        for rule_id in registered_rules():
            card = explain_rule(rule_id)
            assert "Why it matters:" in card, rule_id
            assert "Flagged:" in card, rule_id
            assert "Sanctioned:" in card, rule_id


class TestReadmeRuleTable:
    def test_readme_table_matches_registry(self):
        """README's rule table is the registry's, verbatim.

        Regenerate with:
        PYTHONPATH=src python -c "from repro.analysis.runner import \
rule_table_markdown; print(rule_table_markdown(), end='')"
        """
        from repro.analysis.runner import rule_table_markdown

        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        begin = "<!-- rule-table:begin -->\n"
        end = "<!-- rule-table:end -->"
        assert begin in readme and end in readme
        table = readme.split(begin, 1)[1].split(end, 1)[0]
        assert table == rule_table_markdown()
