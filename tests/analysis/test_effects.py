"""Tests for the interprocedural effect engine.

Covers the lattice algebra, the project scanner, the SCC fixpoint,
and — most importantly — the self-hosting contract: run over the
shipped ``src/`` tree, every :data:`KNOWN_EFFECTS` override and every
:data:`KNOWN_SIGNATURES` entry must resolve to a real function, and
every override's declared ``inferred`` set must equal what the engine
actually derives (so the hand-maintained tables cannot rot).
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.dataflow.signatures import KNOWN_SIGNATURES
from repro.analysis.effects import (
    Effect,
    EffectSummary,
    KNOWN_EFFECTS,
    Origin,
    build_project,
    infer_effects,
    verify_overrides,
)
from repro.analysis.effects.lattice import TASK_UNSAFE
from repro.analysis.rules.base import ModuleContext

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def _context(source: str, name: str = "sample.py") -> ModuleContext:
    path = Path(name)
    return ModuleContext(
        path=path,
        display_path=path.as_posix(),
        tree=ast.parse(source),
        source_lines=source.splitlines(),
    )


def _project_for(source: str, name: str = "sample.py"):
    project = build_project([_context(source, name)])
    return infer_effects(project)


def _effects_of(project, qualified: str) -> tuple[str, ...]:
    summary = project.summaries[qualified]
    return summary.names()


class TestLattice:
    def test_empty_summary_is_pure(self):
        assert EffectSummary.empty().pure
        assert EffectSummary.empty().names() == ()

    def test_join_unions_effects(self):
        origin = Origin(path="a.py", line=1, detail="x")
        left = EffectSummary.of([(Effect.IO, origin)])
        right = EffectSummary.of([(Effect.AMBIENT_RNG, origin)])
        joined = left.join(right)
        assert joined.effects == {Effect.IO, Effect.AMBIENT_RNG}

    def test_join_keeps_first_origin(self):
        first = Origin(path="a.py", line=1, detail="first")
        second = Origin(path="b.py", line=9, detail="second")
        left = EffectSummary.of([(Effect.IO, first)])
        right = EffectSummary.of([(Effect.IO, second)])
        assert left.join(right).origin(Effect.IO) is first

    def test_join_is_idempotent_object(self):
        origin = Origin(path="a.py", line=1, detail="x")
        summary = EffectSummary.of([(Effect.IO, origin)])
        assert summary.join(EffectSummary.empty()) is summary

    def test_task_unsafe_members(self):
        assert TASK_UNSAFE == {
            Effect.AMBIENT_RNG,
            Effect.WALL_CLOCK,
            Effect.MUTATES_GLOBAL,
        }


class TestScanner:
    def test_functions_indexed_by_qualified_name(self):
        project = _project_for(
            "def top():\n"
            "    def inner():\n"
            "        return 1\n"
            "    return inner()\n"
            "class Box:\n"
            "    def method(self):\n"
            "        return 2\n"
        )
        assert "sample.top" in project.functions
        assert "sample.top.<locals>.inner" in project.functions
        assert "sample.Box.method" in project.functions

    def test_ambient_rng_call_detected(self):
        project = _project_for(
            "import random\n"
            "def draw():\n"
            "    return random.random()\n"
        )
        assert _effects_of(project, "sample.draw") == ("ambient-rng",)

    def test_seeded_default_rng_is_clean(self):
        project = _project_for(
            "import numpy as np\n"
            "def make(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert _effects_of(project, "sample.make") == ()

    def test_unseeded_default_rng_is_ambient(self):
        project = _project_for(
            "import numpy as np\n"
            "def make():\n"
            "    return np.random.default_rng()\n"
        )
        assert _effects_of(project, "sample.make") == ("ambient-rng",)

    def test_set_iteration_flagged(self):
        project = _project_for(
            "def collect(names):\n"
            "    unique = set(names)\n"
            "    return [n for n in unique]\n"
        )
        assert "nondet-iteration" in _effects_of(project, "sample.collect")

    def test_sorted_set_is_sanctioned(self):
        project = _project_for(
            "def collect(names):\n"
            "    return sorted(set(names))\n"
        )
        assert _effects_of(project, "sample.collect") == ()

    def test_membership_test_is_clean(self):
        project = _project_for(
            "def keep(names, candidates):\n"
            "    allowed = set(names)\n"
            "    return [c for c in candidates if c in allowed]\n"
        )
        assert _effects_of(project, "sample.keep") == ()

    def test_global_mutation_detected(self):
        project = _project_for(
            "_COUNT = 0\n"
            "def bump():\n"
            "    global _COUNT\n"
            "    _COUNT += 1\n"
        )
        assert "mutates-global" in _effects_of(project, "sample.bump")

    def test_module_global_method_mutation_detected(self):
        project = _project_for(
            "_CACHE = {}\n"
            "def remember(key, value):\n"
            "    _CACHE[key] = value\n"
        )
        assert "mutates-global" in _effects_of(project, "sample.remember")

    def test_local_shadowing_global_name_is_clean(self):
        project = _project_for(
            "_CACHE = {}\n"
            "def local_only():\n"
            "    _CACHE = {}\n"
            "    _CACHE['k'] = 1\n"
            "    return _CACHE\n"
        )
        assert _effects_of(project, "sample.local_only") == ()

    def test_monotonic_clocks_are_not_wall_clock(self):
        project = _project_for(
            "import time\n"
            "def measure():\n"
            "    return time.perf_counter()\n"
        )
        assert _effects_of(project, "sample.measure") == ()

    def test_wall_clock_detected(self):
        project = _project_for(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        assert _effects_of(project, "sample.stamp") == ("wall-clock",)

    def test_env_read_detected(self):
        project = _project_for(
            "import os\n"
            "def flag():\n"
            "    return os.environ['X']\n"
        )
        assert "env" in _effects_of(project, "sample.flag")

    def test_listing_call_is_nondet_and_io(self):
        project = _project_for(
            "import os\n"
            "def entries(root):\n"
            "    return os.listdir(root)\n"
        )
        assert _effects_of(project, "sample.entries") == (
            "io",
            "nondet-iteration",
        )

    def test_sorted_listing_is_io_only(self):
        project = _project_for(
            "import os\n"
            "def entries(root):\n"
            "    return sorted(os.listdir(root))\n"
        )
        assert _effects_of(project, "sample.entries") == ("io",)


class TestInference:
    def test_effects_propagate_up_call_chain(self):
        project = _project_for(
            "import random\n"
            "def leaf():\n"
            "    return random.random()\n"
            "def mid():\n"
            "    return leaf()\n"
            "def top():\n"
            "    return mid()\n"
        )
        for name in ("sample.leaf", "sample.mid", "sample.top"):
            assert _effects_of(project, name) == ("ambient-rng",)
        origin = project.summaries["sample.top"].origin(Effect.AMBIENT_RNG)
        assert origin is not None and origin.line == 3

    def test_mutual_recursion_shares_summary(self):
        project = _project_for(
            "import time\n"
            "def ping(n):\n"
            "    return pong(n - 1) if n else time.time()\n"
            "def pong(n):\n"
            "    return ping(n - 1) if n else 0\n"
        )
        assert _effects_of(project, "sample.ping") == ("wall-clock",)
        assert _effects_of(project, "sample.pong") == ("wall-clock",)

    def test_override_stops_propagation_to_callers(self):
        source = (
            "from repro.util.rng import derive_rng\n"
            "def caller(seed):\n"
            "    return derive_rng(seed).normal()\n"
        )
        project = _project_for(source)
        # derive_rng carries inferred={ambient-rng} but exports {} —
        # the caller inherits the exported contract.
        assert _effects_of(project, "sample.caller") == ()

    def test_unknown_externals_are_optimistic(self):
        project = _project_for(
            "import somelib\n"
            "def call():\n"
            "    return somelib.anything()\n"
        )
        assert _effects_of(project, "sample.call") == ()

    def test_reaches_sink_propagates_through_calls(self):
        project = _project_for(
            "import hashlib\n"
            "def digest(data):\n"
            "    return hashlib.sha256(data).hexdigest()\n"
            "def outer(data):\n"
            "    return digest(data)\n"
        )
        assert project.reaches_sink["sample.outer"] == {"hash"}

    def test_checkpoint_sink_kind(self):
        project = _project_for(
            "def save(checkpointer, payload):\n"
            "    checkpointer.save('k', payload)\n"
            "def outer(checkpointer, payload):\n"
            "    save(checkpointer, payload)\n"
        )
        assert project.reaches_sink["sample.outer"] == {"checkpoint"}


class TestSelfHosting:
    """The engine run over the shipped tree, tables included."""

    @pytest.fixture(scope="class")
    def src_project(self):
        contexts = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            contexts.append(
                ModuleContext(
                    path=path,
                    display_path=path.as_posix(),
                    tree=ast.parse(source),
                    source_lines=source.splitlines(),
                )
            )
        return infer_effects(build_project(contexts))

    def test_every_effect_override_resolves(self, src_project):
        missing = [
            qualified
            for qualified in KNOWN_EFFECTS
            if qualified not in src_project.functions
        ]
        assert missing == []

    def test_every_effect_override_matches_inference(self, src_project):
        assert [str(m) for m in verify_overrides(src_project)] == []

    def test_every_dataflow_signature_resolves(self, src_project):
        missing = [
            qualified
            for qualified in KNOWN_SIGNATURES
            if qualified not in src_project.functions
        ]
        assert missing == []

    def test_shipped_tree_has_no_task_unsafe_submissions(self, src_project):
        violations = []
        for info in src_project.functions.values():
            for site in info.submissions:
                if site.work_target is None:
                    continue
                override = KNOWN_EFFECTS.get(site.work_target)
                if override is not None:
                    unsafe = override.exported & TASK_UNSAFE
                else:
                    summary = src_project.summaries.get(site.work_target)
                    if summary is None:
                        continue
                    unsafe = summary.effects & TASK_UNSAFE
                if unsafe:
                    violations.append(
                        (info.qualified, site.work_repr, sorted(unsafe))
                    )
        assert violations == []
