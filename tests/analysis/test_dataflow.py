"""Engine-level tests for the intraprocedural dataflow analysis.

Covers the abstract domain (intervals, units, environments), CFG
construction, flow-sensitive refinement, and — critically — the
consistency of :data:`~repro.analysis.dataflow.signatures.KNOWN_SIGNATURES`
and :data:`~repro.analysis.dataflow.signatures.ATTRIBUTE_UNITS` with
the *live* annotations they mirror, so the tables cannot drift.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import math
import types
import typing
from pathlib import Path

import pytest

from repro.analysis.dataflow import (
    AbstractValue,
    Interval,
    analyze_module,
    build_cfg,
)
from repro.analysis.dataflow.signatures import (
    ATTRIBUTE_UNITS,
    KNOWN_SIGNATURES,
)
from repro.analysis.rules.base import ModuleContext
from repro.units import FRACTION_01, PERCENT, PROBABILITY, Unit


def analyze_source(source: str) -> "object":
    """Run the module analysis over an inline source string."""
    tree = ast.parse(source)
    context = ModuleContext(
        path=Path("inline_fixture.py"),
        display_path="inline_fixture.py",
        tree=tree,
        source_lines=source.splitlines(),
    )
    return analyze_module(context)


def function_cfg(source: str) -> "object":
    tree = ast.parse(source)
    function = next(
        node for node in tree.body if isinstance(node, ast.FunctionDef)
    )
    return build_cfg(function)


class TestInterval:
    def test_join_is_the_hull(self):
        assert Interval.point(1.0).join(Interval.point(3.0)) == Interval(1.0, 3.0)

    def test_meet_of_disjoint_intervals_is_empty(self):
        assert Interval(0.0, 1.0).meet(Interval(2.0, 3.0)).is_empty

    def test_widening_blows_moving_bounds_to_infinity(self):
        widened = Interval(0.0, 1.0).widen(Interval(0.0, 2.0))
        assert widened.low == 0.0
        assert math.isinf(widened.high)

    def test_widening_is_stable_on_equal_intervals(self):
        assert Interval(0.0, 1.0).widen(Interval(0.0, 1.0)) == Interval(0.0, 1.0)

    def test_multiplication_takes_the_corner_extremes(self):
        assert Interval(-1.0, 2.0).mul(Interval(3.0, 4.0)) == Interval(-4.0, 8.0)

    def test_division_by_interval_containing_zero_is_top(self):
        assert Interval(1.0, 2.0).div(Interval(-1.0, 1.0)).is_top

    def test_entirely_outside_respects_tolerance(self):
        barely_above = Interval.point(1.0 + 1e-12)
        assert not barely_above.entirely_outside(FRACTION_01, atol=1e-9)
        assert Interval.point(1.5).entirely_outside(FRACTION_01, atol=1e-9)

    def test_top_is_never_outside_any_unit(self):
        assert not Interval.top().entirely_outside(PROBABILITY)


class TestAbstractValue:
    def test_join_of_same_unit_keeps_the_unit(self):
        value = AbstractValue.of_unit(FRACTION_01)
        assert value.join(AbstractValue.of_unit(FRACTION_01)).unit is FRACTION_01

    def test_join_of_differing_units_forgets_the_unit(self):
        fraction = AbstractValue.of_unit(FRACTION_01)
        percent = AbstractValue.of_unit(PERCENT)
        assert fraction.join(percent).unit is None

    def test_constant_carries_a_point_interval(self):
        assert AbstractValue.constant(0.5).interval == Interval.point(0.5)


class TestControlFlowGraph:
    def test_if_else_produces_guarded_edges(self):
        cfg = function_cfg(
            "def f(x):\n"
            "    if x > 0:\n"
            "        y = 1\n"
            "    else:\n"
            "        y = 2\n"
            "    return y\n"
        )
        guards = [edge for edge in cfg.edges if edge.guard is not None]
        assert {edge.guard_value for edge in guards} == {True, False}
        assert all(isinstance(edge.guard, ast.Compare) for edge in guards)

    def test_while_loop_has_a_back_edge(self):
        cfg = function_cfg(
            "def f(n):\n"
            "    while n > 0:\n"
            "        n = n - 1\n"
            "    return n\n"
        )
        assert any(edge.target <= edge.source for edge in cfg.edges)

    def test_return_terminates_its_block(self):
        cfg = function_cfg(
            "def f(x):\n"
            "    if x:\n"
            "        return 1\n"
            "    return 2\n"
        )
        for block in cfg.blocks:
            for statement in block.statements[:-1]:
                assert not isinstance(statement, ast.Return)


class TestFlowSensitivity:
    def test_branch_refinement_proves_the_domain(self):
        analysis = analyze_source(
            "from repro.units import Probability\n"
            "def clamp(x: float) -> Probability:\n"
            "    if 0.0 <= x <= 1.0:\n"
            "        return x\n"
            "    return 0.0\n"
        )
        assert analysis.diagnostics("interval") == []
        assert analysis.diagnostics("return") == []

    def test_unrefined_constant_outside_the_domain_is_flagged(self):
        analysis = analyze_source(
            "from repro.units import Probability\n"
            "def bad() -> Probability:\n"
            "    return 2.5\n"
        )
        assert analysis.diagnostics("interval")

    def test_validator_call_proves_the_unit(self):
        analysis = analyze_source(
            "from repro.units import Fraction01\n"
            "from repro.util.validation import require_fraction\n"
            "def f(x: float) -> Fraction01:\n"
            "    y = require_fraction(x, 'x')\n"
            "    return y\n"
        )
        assert analysis.diagnostics("return") == []
        assert analysis.diagnostics("unit-mix") == []

    def test_loop_widening_terminates(self):
        analysis = analyze_source(
            "def count() -> float:\n"
            "    total = 0.0\n"
            "    while total < 1e9:\n"
            "        total = total + 1.0\n"
            "    return total\n"
        )
        assert analysis.diagnostics("interval") == []

    def test_sanctioned_conversion_changes_the_unit(self):
        analysis = analyze_source(
            "from repro.units import Fraction01, Percent\n"
            "def f(m_degr_percent: Percent) -> Fraction01:\n"
            "    return m_degr_percent / 100.0\n"
        )
        assert analysis.diagnostics("return") == []

    def test_unconverted_percent_is_diagnosed_once(self):
        analysis = analyze_source(
            "from repro.units import Fraction01, Percent\n"
            "def f(m_degr_percent: Percent) -> Fraction01:\n"
            "    return m_degr_percent\n"
        )
        assert len(analysis.diagnostics("return")) == 1


def _live_unit_name(hint: object) -> str | None:
    """Unit marker name carried by a live annotation, if any."""
    origin = typing.get_origin(hint)
    if origin is typing.Union or origin is types.UnionType:
        for arg in typing.get_args(hint):
            name = _live_unit_name(arg)
            if name is not None:
                return name
        return None
    for meta in getattr(hint, "__metadata__", ()):
        if isinstance(meta, Unit):
            return meta.name
    return None


def _resolve(qualname: str):
    module_name, _, attribute = qualname.rpartition(".")
    return getattr(importlib.import_module(module_name), attribute)


class TestSignatureTableConsistency:
    """KNOWN_SIGNATURES must agree with the functions it describes."""

    @pytest.mark.parametrize("qualname", sorted(KNOWN_SIGNATURES))
    def test_parameter_names_and_order_match(self, qualname):
        function = _resolve(qualname)
        live_names = list(inspect.signature(function).parameters)
        table_names = [name for name, _ in KNOWN_SIGNATURES[qualname].params]
        assert live_names[: len(table_names)] == table_names

    @pytest.mark.parametrize("qualname", sorted(KNOWN_SIGNATURES))
    def test_parameter_units_match_live_annotations(self, qualname):
        function = _resolve(qualname)
        hints = typing.get_type_hints(function, include_extras=True)
        for name, unit_name in KNOWN_SIGNATURES[qualname].params:
            assert _live_unit_name(hints.get(name)) == unit_name, name

    @pytest.mark.parametrize("qualname", sorted(KNOWN_SIGNATURES))
    def test_return_units_match_live_annotations(self, qualname):
        function = _resolve(qualname)
        hints = typing.get_type_hints(function, include_extras=True)
        expected = KNOWN_SIGNATURES[qualname].returns
        assert _live_unit_name(hints.get("return")) == expected


class TestAttributeConventionConsistency:
    """Spot-check ATTRIBUTE_UNITS against the live dataclasses."""

    @pytest.mark.parametrize(
        "qualname,attribute",
        [
            ("repro.core.qos.QoSRange", "u_low"),
            ("repro.core.qos.QoSRange", "u_high"),
            ("repro.core.qos.DegradedSpec", "m_degr_percent"),
            ("repro.core.qos.DegradedSpec", "u_degr"),
            ("repro.core.translation.TranslationResult", "breakpoint"),
            ("repro.core.translation.TranslationResult", "degraded_fraction"),
            (
                "repro.metrics.compliance.ComplianceReport",
                "acceptable_fraction",
            ),
            (
                "repro.metrics.compliance.ComplianceReport",
                "longest_degraded_run_slots",
            ),
        ],
    )
    def test_field_annotation_matches_the_convention(self, qualname, attribute):
        owner = _resolve(qualname)
        hints = typing.get_type_hints(owner, include_extras=True)
        assert _live_unit_name(hints[attribute]) == ATTRIBUTE_UNITS[attribute]

    def test_every_convention_entry_names_a_real_unit_or_none(self):
        from repro.units import UNITS_BY_NAME

        for attribute, unit_name in ATTRIBUTE_UNITS.items():
            assert unit_name is None or unit_name in UNITS_BY_NAME, attribute
