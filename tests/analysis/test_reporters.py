"""Reporter contracts: JSON round-trips, text stays human-readable."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (
    analyze_paths,
    parse_json,
    registered_rules,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.findings import Finding, Severity
from repro.exceptions import ConfigurationError

FIXTURES = Path(__file__).parent / "fixtures"


def _sample_findings() -> list[Finding]:
    result = analyze_paths([FIXTURES / "bad_float_equality.py"])
    assert result.findings
    return list(result.findings)


class TestJsonReporter:
    def test_round_trip_preserves_findings(self):
        findings = _sample_findings()
        assert parse_json(render_json(findings)) == findings

    def test_round_trip_of_hand_built_finding(self):
        finding = Finding(
            path="src/x.py",
            line=3,
            column=7,
            rule="ROP999",
            message="synthetic",
            hint="none",
            severity=Severity.WARNING,
        )
        (recovered,) = parse_json(render_json([finding]))
        assert recovered == finding
        assert recovered.severity is Severity.WARNING

    def test_suppressed_count_serialized(self):
        import json

        payload = json.loads(render_json([], suppressed=4))
        assert payload["suppressed"] == 4
        assert payload["findings"] == []

    def test_rejects_malformed_text(self):
        with pytest.raises(ConfigurationError):
            parse_json("not json at all")

    def test_rejects_unknown_version(self):
        with pytest.raises(ConfigurationError):
            parse_json('{"version": 99, "findings": []}')


class TestSarifReporter:
    def test_emits_valid_sarif_2_1_0(self):
        import json

        log = json.loads(render_sarif(_sample_findings()))
        assert log["version"] == "2.1.0"
        assert "sarif-2.1.0" in log["$schema"]
        assert len(log["runs"]) == 1

    def test_results_carry_rule_level_and_location(self):
        import json

        findings = _sample_findings()
        results = json.loads(render_sarif(findings))["runs"][0]["results"]
        assert len(results) == len(findings)
        first, finding = results[0], findings[0]
        assert first["ruleId"] == finding.rule
        assert first["level"] == "error"
        region = first["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == finding.line
        assert region["startColumn"] == finding.column
        artifact = first["locations"][0]["physicalLocation"][
            "artifactLocation"
        ]
        assert artifact["uri"] == finding.path

    def test_driver_describes_every_registered_rule(self):
        import json

        driver = json.loads(render_sarif([]))["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-analysis"
        described = {rule["id"] for rule in driver["rules"]}
        assert described == set(registered_rules())

    def test_empty_run_has_no_results(self):
        import json

        run = json.loads(render_sarif([], suppressed=3))["runs"][0]
        assert run["results"] == []
        assert run["properties"]["baselineSuppressed"] == 3

    def test_runner_format_sarif_end_to_end(self, capsys):
        import json

        from repro.analysis.runner import main

        code = main(
            [
                str(FIXTURES / "bad_naked_rng.py"),
                "--no-config",
                "--format",
                "sarif",
            ]
        )
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        assert any(
            result["ruleId"] == "ROP001"
            for result in log["runs"][0]["results"]
        )


class TestTextReporter:
    def test_lists_location_rule_and_hint(self):
        findings = _sample_findings()
        text = render_text(findings)
        first = findings[0]
        assert first.location in text
        assert first.rule in text
        assert "hint:" in text

    def test_clean_report(self):
        assert "clean" in render_text([])

    def test_summary_counts(self):
        findings = _sample_findings()
        text = render_text(findings, suppressed=2)
        assert f"{len(findings)} error(s)" in text
        assert "2 baseline-suppressed" in text
