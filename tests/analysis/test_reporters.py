"""Reporter contracts: JSON round-trips, text stays human-readable."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_paths, parse_json, render_json, render_text
from repro.analysis.findings import Finding, Severity
from repro.exceptions import ConfigurationError

FIXTURES = Path(__file__).parent / "fixtures"


def _sample_findings() -> list[Finding]:
    result = analyze_paths([FIXTURES / "bad_float_equality.py"])
    assert result.findings
    return list(result.findings)


class TestJsonReporter:
    def test_round_trip_preserves_findings(self):
        findings = _sample_findings()
        assert parse_json(render_json(findings)) == findings

    def test_round_trip_of_hand_built_finding(self):
        finding = Finding(
            path="src/x.py",
            line=3,
            column=7,
            rule="ROP999",
            message="synthetic",
            hint="none",
            severity=Severity.WARNING,
        )
        (recovered,) = parse_json(render_json([finding]))
        assert recovered == finding
        assert recovered.severity is Severity.WARNING

    def test_suppressed_count_serialized(self):
        import json

        payload = json.loads(render_json([], suppressed=4))
        assert payload["suppressed"] == 4
        assert payload["findings"] == []

    def test_rejects_malformed_text(self):
        with pytest.raises(ConfigurationError):
            parse_json("not json at all")

    def test_rejects_unknown_version(self):
        with pytest.raises(ConfigurationError):
            parse_json('{"version": 99, "findings": []}')


class TestTextReporter:
    def test_lists_location_rule_and_hint(self):
        findings = _sample_findings()
        text = render_text(findings)
        first = findings[0]
        assert first.location in text
        assert first.rule in text
        assert "hint:" in text

    def test_clean_report(self):
        assert "clean" in render_text([])

    def test_summary_counts(self):
        findings = _sample_findings()
        text = render_text(findings, suppressed=2)
        assert f"{len(findings)} error(s)" in text
        assert "2 baseline-suppressed" in text
