"""Tests for the runtime resource-leak tracker (``ROPUS_LEAKTRACK``)."""

from __future__ import annotations

import io
import tempfile
from multiprocessing import shared_memory

import pytest

from repro.analysis import leaktrack


@pytest.fixture()
def armed():
    """Install the tracker for one test, restoring originals after.

    Skipped when the whole session runs under ``ROPUS_LEAKTRACK=1``
    (the CI smoke job): uninstalling here would disarm the session-wide
    tracker these tests exist to exercise.
    """
    if leaktrack.installed():
        pytest.skip("tracker armed session-wide; not toggling it")
    leaktrack.install()
    try:
        yield
    finally:
        leaktrack.uninstall()


class TestInstall:
    def test_install_uninstall_restores_originals(self):
        if leaktrack.installed():
            pytest.skip("tracker armed session-wide; not toggling it")
        original = tempfile.TemporaryDirectory.__init__
        leaktrack.install()
        assert leaktrack.installed()
        leaktrack.install()  # idempotent
        leaktrack.uninstall()
        assert not leaktrack.installed()
        assert tempfile.TemporaryDirectory.__init__ is original

    def test_maybe_install_respects_the_flag(self, monkeypatch):
        if leaktrack.installed():
            pytest.skip("tracker armed session-wide; not toggling it")
        monkeypatch.delenv(leaktrack.ENV_FLAG, raising=False)
        assert leaktrack.maybe_install() is False
        assert not leaktrack.installed()
        monkeypatch.setenv(leaktrack.ENV_FLAG, "1")
        try:
            assert leaktrack.maybe_install() is True
            assert leaktrack.installed()
        finally:
            leaktrack.uninstall()


class TestTracking:
    def test_temp_directory_tracked_until_cleanup(self, armed):
        before = len(leaktrack.live_resources())
        tmpdir = tempfile.TemporaryDirectory()
        try:
            records = leaktrack.live_resources()
            assert len(records) == before + 1
            newest = records[-1]
            assert newest.kind == "temporary directory"
            assert newest.label == tmpdir.name
            assert newest.stack  # acquisition stack was captured
        finally:
            tmpdir.cleanup()
        assert len(leaktrack.live_resources()) == before

    def test_shared_memory_create_tracked_attach_not(self, armed):
        before = len(leaktrack.live_resources())
        segment = shared_memory.SharedMemory(create=True, size=16)
        try:
            assert len(leaktrack.live_resources()) == before + 1
            attached = shared_memory.SharedMemory(name=segment.name)
            # Attaching is not an acquisition.
            assert len(leaktrack.live_resources()) == before + 1
            attached.close()
        finally:
            segment.close()
            segment.unlink()
        assert len(leaktrack.live_resources()) == before

    def test_report_lists_open_resources(self, armed):
        tmpdir = tempfile.TemporaryDirectory()
        try:
            sink = io.StringIO()
            count = leaktrack.report(sink)
            assert count >= 1
            text = sink.getvalue()
            assert "still open" in text
            assert tmpdir.name in text
        finally:
            tmpdir.cleanup()

    def test_quiet_when_nothing_open(self, armed):
        for record in list(leaktrack.live_resources()):
            pass  # nothing acquired by this test itself
        sink = io.StringIO()
        if leaktrack.live_resources():
            pytest.skip("other live resources in this process")
        assert leaktrack.report(sink) == 0
        assert sink.getvalue() == ""

    def test_counters_accumulate(self, armed):
        acquired = leaktrack.counters["acquired"]
        released = leaktrack.counters["released"]
        tmpdir = tempfile.TemporaryDirectory()
        tmpdir.cleanup()
        assert leaktrack.counters["acquired"] == acquired + 1
        assert leaktrack.counters["released"] == released + 1
