"""Run the doctests embedded in module and API docstrings.

Documentation examples that silently rot are worse than none; every
``>>>`` block in the library must keep executing.
"""

import doctest
import importlib

import pytest

MODULES_WITH_DOCTESTS = [
    "repro.analysis.rules.base",
    "repro.core.partition",
    "repro.core.degradation",
    "repro.core.qos",
    "repro.engine.core",
    "repro.engine.instrumentation",
    "repro.resources.server",
    "repro.resources.pool",
    "repro.resources.workload_manager",
    "repro.traces.calendar",
    "repro.traces.ops",
    "repro.util.floats",
    "repro.util.rng",
    "repro.util.tables",
    "repro.workloads.generator",
]


@pytest.mark.parametrize("module_name", MODULES_WITH_DOCTESTS)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )
    assert results.attempted > 0, (
        f"expected at least one doctest in {module_name}"
    )
