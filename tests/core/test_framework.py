"""Tests for the ROpus facade."""

import pytest

from repro.core.cos import PoolCommitments
from repro.core.framework import ROpus
from repro.core.qos import QoSPolicy, case_study_qos
from repro.exceptions import ConfigurationError
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.calendar import TraceCalendar
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

FAST_SEARCH = GeneticSearchConfig(
    seed=0, max_generations=8, stall_generations=3, population_size=8
)


@pytest.fixture
def demands():
    calendar = TraceCalendar(weeks=1, slot_minutes=60)
    generator = WorkloadGenerator(seed=13)
    specs = [
        WorkloadSpec(name=f"w{i}", peak_cpus=1.0 + 0.4 * i) for i in range(5)
    ]
    return generator.generate_many(specs, calendar)


@pytest.fixture
def framework():
    return ROpus(
        PoolCommitments.of(theta=0.9),
        ResourcePool(homogeneous_servers(5, cpus=16)),
        search_config=FAST_SEARCH,
    )


@pytest.fixture
def policy():
    return QoSPolicy(
        normal=case_study_qos(m_degr_percent=0),
        failure=case_study_qos(m_degr_percent=3),
    )


class TestTranslate:
    def test_all_workloads_translated(self, framework, demands, policy):
        results = framework.translate(demands, policy)
        assert set(results) == {f"w{i}" for i in range(5)}

    def test_failure_mode_uses_failure_qos(self, framework, demands, policy):
        normal = framework.translate(demands, policy)
        failure = framework.translate(demands, policy, failure_mode=True)
        for name in normal:
            assert failure[name].d_new_max <= normal[name].d_new_max + 1e-12

    def test_per_workload_policies(self, framework, demands, policy):
        policies = {demand.name: policy for demand in demands}
        results = framework.translate(demands, policies)
        assert len(results) == 5

    def test_missing_policy_rejected(self, framework, demands, policy):
        with pytest.raises(ConfigurationError):
            framework.translate(demands, {"w0": policy})

    def test_duplicate_names_rejected(self, framework, demands, policy):
        with pytest.raises(ConfigurationError):
            framework.translate([demands[0], demands[0]], policy)


class TestPlan:
    def test_full_plan(self, framework, demands, policy):
        plan = framework.plan(demands, policy)
        assert plan.servers_used >= 1
        assert plan.failure_report is not None
        assert plan.spare_server_needed in (True, False)
        summary = plan.summary()
        assert summary["workloads"] == 5
        assert 0.0 <= summary["sharing_savings"] < 1.0

    def test_plan_without_failures(self, framework, demands, policy):
        plan = framework.plan(demands, policy, plan_failures=False)
        assert plan.failure_report is None
        assert plan.spare_server_needed is None

    def test_greedy_algorithm_plan(self, framework, demands, policy):
        plan = framework.plan(
            demands, policy, plan_failures=False, algorithm="first_fit"
        )
        assert plan.consolidation.algorithm == "first_fit"

    def test_all_workloads_placed(self, framework, demands, policy):
        plan = framework.plan(demands, policy, plan_failures=False)
        placed = sorted(
            name
            for names in plan.consolidation.assignment.values()
            for name in names
        )
        assert placed == sorted(demand.name for demand in demands)
