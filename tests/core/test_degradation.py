"""Tests for the M_degr percentile relaxation (formulas 2-5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degradation import (
    degraded_fraction,
    max_cap_reduction_bound,
    new_max_demand,
    realized_cap_reduction,
)
from repro.core.qos import ApplicationQoS, DegradedSpec, QoSRange
from repro.exceptions import QoSSpecificationError
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=5)


def make_trace(cal, values):
    return DemandTrace("w", values, cal)


def qos(m=3.0, u_degr=0.9, u_low=0.5, u_high=0.66):
    degraded = DegradedSpec(m, u_degr) if m > 0 else None
    return ApplicationQoS(QoSRange(u_low, u_high), degraded)


class TestNewMaxDemand:
    def test_no_degraded_spec_returns_peak(self, cal):
        values = np.linspace(0, 10, cal.n_observations)
        trace = make_trace(cal, values)
        assert new_max_demand(trace, qos(m=0)) == trace.peak()

    def test_spiky_trace_uses_percentile(self, cal):
        """A_ok >= A_degr case: D_new_max = D_M% (formula 2)."""
        values = np.ones(cal.n_observations)
        values[:5] = 100.0  # 0.25% of points are huge
        trace = make_trace(cal, values)
        requirement = qos(m=3.0)
        cap = new_max_demand(trace, requirement)
        # D_97% = 1 and A_ok = 1/0.66 = 1.51 < A_degr = 100/0.9 -> the
        # degraded ceiling binds instead.
        assert cap == pytest.approx(100.0 * 0.66 / 0.9)

    def test_moderate_trace_percentile_binds(self, cal):
        """When the percentile allocation covers the degraded tail."""
        values = np.full(cal.n_observations, 9.0)
        values[: cal.n_observations // 2] = 10.0
        trace = make_trace(cal, values)
        # D_97% = 10 (more than 3% at 10), A_ok = 10/0.66 > A_degr = 10/0.9
        cap = new_max_demand(trace, qos(m=3.0))
        assert cap == pytest.approx(10.0)

    def test_formula3_when_degraded_ceiling_binds(self, cal):
        values = np.ones(cal.n_observations)
        values[-1] = 50.0
        trace = make_trace(cal, values)
        cap = new_max_demand(trace, qos(m=3.0, u_degr=0.9, u_high=0.66))
        assert cap == pytest.approx(50.0 * 0.66 / 0.9)

    def test_cap_never_exceeds_peak(self, cal):
        rng = np.random.default_rng(0)
        trace = make_trace(cal, rng.lognormal(0, 1, cal.n_observations))
        cap = new_max_demand(trace, qos(m=3.0))
        assert cap <= trace.peak() + 1e-12

    def test_degraded_budget_respected(self, cal):
        """At most M_degr% of observations sit strictly above the cap."""
        rng = np.random.default_rng(1)
        trace = make_trace(cal, rng.lognormal(0, 1.5, cal.n_observations))
        requirement = qos(m=3.0)
        cap = new_max_demand(trace, requirement)
        above = np.count_nonzero(trace.values > cap)
        assert above / len(trace) <= 0.03

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_budget_property(self, seed):
        calendar = TraceCalendar(weeks=1, slot_minutes=5)
        rng = np.random.default_rng(seed)
        trace = make_trace(calendar, rng.lognormal(0, 1.0, calendar.n_observations))
        cap = new_max_demand(trace, qos(m=3.0))
        above = np.count_nonzero(trace.values > cap)
        assert above / len(trace) <= 0.03 + 1e-12


class TestMaxCapReductionBound:
    def test_paper_value(self):
        """U_high=0.66, U_degr=0.9 -> 26.7% (Section V)."""
        assert max_cap_reduction_bound(0.66, 0.9) == pytest.approx(
            0.2667, abs=1e-4
        )

    def test_no_reduction_when_equal(self):
        assert max_cap_reduction_bound(0.9, 0.9) == 0.0

    def test_rejects_invalid(self):
        with pytest.raises(QoSSpecificationError):
            max_cap_reduction_bound(0.9, 0.66)
        with pytest.raises(QoSSpecificationError):
            max_cap_reduction_bound(0.66, 1.0)

    def test_realized_reduction_bounded(self, cal):
        """Formula 5: realized reduction never exceeds 1 - U_high/U_degr."""
        rng = np.random.default_rng(3)
        bound = max_cap_reduction_bound(0.66, 0.9)
        for _ in range(10):
            trace = make_trace(
                cal, rng.lognormal(0, rng.uniform(0.3, 2.0), cal.n_observations)
            )
            cap = new_max_demand(trace, qos(m=3.0))
            reduction = realized_cap_reduction(trace, cap)
            assert reduction <= bound + 1e-9


class TestRealizedCapReduction:
    def test_basic(self, cal):
        values = np.ones(cal.n_observations)
        values[0] = 10.0
        trace = make_trace(cal, values)
        assert realized_cap_reduction(trace, 8.0) == pytest.approx(0.2)

    def test_zero_trace(self, cal):
        trace = make_trace(cal, np.zeros(cal.n_observations))
        assert realized_cap_reduction(trace, 0.0) == 0.0

    def test_clamped_at_zero_when_cap_above_peak(self, cal):
        trace = make_trace(cal, np.ones(cal.n_observations))
        assert realized_cap_reduction(trace, 2.0) == 0.0

    def test_rejects_negative_cap(self, cal):
        trace = make_trace(cal, np.ones(cal.n_observations))
        with pytest.raises(QoSSpecificationError):
            realized_cap_reduction(trace, -1.0)


class TestDegradedFraction:
    def test_counts_only_active_slots(self):
        demand = np.array([0.0, 1.0, 1.0, 1.0])
        utilization = np.array([0.9, 0.9, 0.5, 0.7])
        assert degraded_fraction(demand, utilization, 0.66) == pytest.approx(
            2 / 4
        )

    def test_empty(self):
        assert degraded_fraction(np.empty(0), np.empty(0), 0.66) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(QoSSpecificationError):
            degraded_fraction(np.ones(3), np.ones(4), 0.66)
