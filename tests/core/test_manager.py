"""Tests for the ongoing capacity-management loops."""

import numpy as np
import pytest

from repro.core.cos import PoolCommitments
from repro.core.framework import ROpus
from repro.core.manager import CapacityManager
from repro.core.qos import QoSPolicy, case_study_qos
from repro.exceptions import ConfigurationError
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.calendar import TraceCalendar
from repro.traces.ops import slice_weeks
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

SEARCH = GeneticSearchConfig(
    seed=0, max_generations=6, stall_generations=2, population_size=6
)


@pytest.fixture(scope="module")
def demands():
    calendar = TraceCalendar(weeks=4, slot_minutes=60)
    generator = WorkloadGenerator(seed=37)
    specs = [
        WorkloadSpec(name=f"w{i}", peak_cpus=1.5 + 0.4 * i) for i in range(5)
    ]
    return generator.generate_many(specs, calendar)


@pytest.fixture(scope="module")
def manager():
    framework = ROpus(
        PoolCommitments.of(theta=0.9),
        ResourcePool(homogeneous_servers(6, cpus=16)),
        search_config=SEARCH,
    )
    return CapacityManager(framework)


@pytest.fixture(scope="module")
def policy():
    return QoSPolicy(normal=case_study_qos(m_degr_percent=3))


class TestSliceWeeks:
    def test_extracts_window(self, demands):
        window = slice_weeks(demands[0], 1, 2)
        assert window.calendar.weeks == 2
        slots = demands[0].calendar.slots_per_week
        np.testing.assert_array_equal(
            window.values, demands[0].values[slots : 3 * slots]
        )

    def test_rejects_out_of_range(self, demands):
        from repro.exceptions import TraceError

        with pytest.raises(TraceError):
            slice_weeks(demands[0], 3, 2)
        with pytest.raises(TraceError):
            slice_weeks(demands[0], 0, 0)


class TestRollingPlan:
    def test_steps_cover_history(self, manager, demands, policy):
        report = manager.rolling_plan(
            demands, policy, window_weeks=2, step_weeks=1
        )
        assert [step.start_week for step in report.steps] == [0, 1, 2]
        assert all(
            step.end_week - step.start_week == 2 for step in report.steps
        )

    def test_first_step_has_no_migrations(self, manager, demands, policy):
        report = manager.rolling_plan(
            demands, policy, window_weeks=2, step_weeks=2
        )
        assert report.steps[0].migrations == ()

    def test_every_plan_covers_all_workloads(self, manager, demands, policy):
        report = manager.rolling_plan(
            demands, policy, window_weeks=2, step_weeks=2
        )
        for step in report.steps:
            placed = sorted(
                name
                for names in step.result.assignment.values()
                for name in names
            )
            assert placed == sorted(demand.name for demand in demands)

    def test_migration_accounting(self, manager, demands, policy):
        report = manager.rolling_plan(
            demands, policy, window_weeks=2, step_weeks=1
        )
        assert report.total_migrations == sum(
            step.n_migrations for step in report.steps
        )
        assert report.max_servers_used >= 1
        assert len(report.servers_used_series()) == len(report.steps)

    def test_sticky_replanning_no_worse_migrations(self, manager, demands, policy):
        """Seeding each re-plan with the previous assignment keeps
        migrations at or below the fresh-search count."""
        sticky = manager.rolling_plan(
            demands, policy, window_weeks=2, step_weeks=1, sticky=True
        )
        fresh = manager.rolling_plan(
            demands, policy, window_weeks=2, step_weeks=1, sticky=False
        )
        assert sticky.total_migrations <= fresh.total_migrations
        # Stickiness must not cost servers: each sticky plan uses no
        # more than the fresh plan at the same step (the GA keeps the
        # best feasible candidate, and both runs share greedy seeds).
        for sticky_step, fresh_step in zip(sticky.steps, fresh.steps):
            assert (
                sticky_step.result.servers_used
                <= fresh_step.result.servers_used + 1
            )

    def test_previous_plan_seeding_direct(self, manager, demands, policy):
        """framework.plan(previous=...) accepts and uses an earlier plan."""
        windowed = demands
        first = manager.framework.plan(
            windowed, policy, plan_failures=False
        )
        second = manager.framework.plan(
            windowed, policy, plan_failures=False,
            previous=first.consolidation,
        )
        # Same inputs, seeded with the previous plan: the assignment
        # should be reachable and at least as good.
        assert second.consolidation.score >= first.consolidation.score - 1e-9

    def test_rejects_bad_windows(self, manager, demands, policy):
        with pytest.raises(ConfigurationError):
            manager.rolling_plan(demands, policy, window_weeks=0)
        with pytest.raises(ConfigurationError):
            manager.rolling_plan(demands, policy, window_weeks=9)
        with pytest.raises(ConfigurationError):
            manager.rolling_plan(
                demands, policy, window_weeks=2, step_weeks=0
            )
        with pytest.raises(ConfigurationError):
            manager.rolling_plan([], policy, window_weeks=1)


class TestCapacityOutlook:
    def test_flat_growth_never_exhausts(self, manager, demands, policy):
        growth = {demand.name: 1.0 for demand in demands}
        outlook = manager.capacity_outlook(
            demands,
            policy,
            horizon_weeks=8,
            step_weeks=4,
            growth_by_name=growth,
        )
        assert outlook.weeks_until_exhausted is None
        assert all(step.feasible for step in outlook.steps)

    def test_aggressive_growth_exhausts_pool(self, demands, policy):
        # A tiny pool plus 30%/week growth must run out within 16 weeks.
        framework = ROpus(
            PoolCommitments.of(theta=0.9),
            ResourcePool(homogeneous_servers(2, cpus=16)),
            search_config=SEARCH,
        )
        manager = CapacityManager(framework)
        growth = {demand.name: 1.3 for demand in demands}
        outlook = manager.capacity_outlook(
            demands,
            policy,
            horizon_weeks=16,
            step_weeks=4,
            growth_by_name=growth,
        )
        assert outlook.weeks_until_exhausted is not None
        assert outlook.weeks_until_exhausted <= 16

    def test_required_capacity_grows_with_horizon(self, manager, demands, policy):
        growth = {demand.name: 1.1 for demand in demands}
        outlook = manager.capacity_outlook(
            demands,
            policy,
            horizon_weeks=8,
            step_weeks=4,
            growth_by_name=growth,
        )
        requireds = [
            step.sum_required
            for step in outlook.steps
            if step.sum_required is not None
        ]
        assert requireds == sorted(requireds)

    def test_growth_estimated_by_default(self, manager, demands, policy):
        outlook = manager.capacity_outlook(
            demands, policy, horizon_weeks=4, step_weeks=4
        )
        assert set(outlook.growth_by_name) == {
            demand.name for demand in demands
        }

    def test_rejects_bad_parameters(self, manager, demands, policy):
        with pytest.raises(ConfigurationError):
            manager.capacity_outlook(demands, policy, horizon_weeks=0)
        with pytest.raises(ConfigurationError):
            manager.capacity_outlook(
                demands, policy, horizon_weeks=4, step_weeks=0
            )
