"""Tests for the end-to-end QoS translation."""

import numpy as np
import pytest

from repro.core.cos import PoolCommitments
from repro.core.qos import case_study_qos
from repro.core.translation import QoSTranslator
from repro.exceptions import TranslationError
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=5)


@pytest.fixture
def translator_60():
    return QoSTranslator(PoolCommitments.of(theta=0.6))


@pytest.fixture
def translator_95():
    return QoSTranslator(PoolCommitments.of(theta=0.95))


def spiky_trace(cal, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.lognormal(0, 0.4, cal.n_observations)
    spikes = rng.random(cal.n_observations) < 0.01
    values[spikes] *= 6.0
    return DemandTrace("spiky", values, cal)


class TestBasicTranslation:
    def test_constant_trace_strict_qos(self, cal, translator_60):
        demand = DemandTrace("c", np.full(cal.n_observations, 2.0), cal)
        result = translator_60.translate(demand, case_study_qos(m_degr_percent=0))
        # Everything below the cap: total allocation = demand / U_low.
        total = result.pair.total().values
        assert np.allclose(total, 4.0)
        assert result.d_new_max == 2.0
        assert result.cap_reduction == 0.0

    def test_partition_respects_breakpoint(self, cal, translator_60):
        demand = spiky_trace(cal)
        result = translator_60.translate(demand, case_study_qos(m_degr_percent=0))
        p = result.breakpoint
        cap = result.d_new_max
        burst = 2.0  # 1 / U_low
        assert result.pair.cos1.peak() <= p * cap * burst + 1e-9

    def test_high_theta_all_in_cos2(self, cal, translator_95):
        demand = spiky_trace(cal)
        result = translator_95.translate(demand, case_study_qos(m_degr_percent=0))
        assert result.breakpoint == 0.0
        assert result.pair.cos1.peak() == 0.0
        assert result.pair.cos2.peak() > 0.0

    def test_total_allocation_equals_capped_demand_over_u_low(
        self, cal, translator_60
    ):
        demand = spiky_trace(cal)
        result = translator_60.translate(demand, case_study_qos())
        expected = np.minimum(demand.values, result.d_new_max) / 0.5
        np.testing.assert_allclose(result.pair.total().values, expected)

    def test_max_allocation_property(self, cal, translator_60):
        demand = spiky_trace(cal)
        result = translator_60.translate(demand, case_study_qos())
        assert result.max_allocation == pytest.approx(result.d_new_max / 0.5)


class TestDegradationBudget:
    def test_m_degr_reduces_cap(self, cal, translator_60):
        demand = spiky_trace(cal)
        strict = translator_60.translate(demand, case_study_qos(m_degr_percent=0))
        relaxed = translator_60.translate(demand, case_study_qos(m_degr_percent=3))
        assert relaxed.d_new_max <= strict.d_new_max
        assert relaxed.cap_reduction >= strict.cap_reduction

    def test_degraded_fraction_within_budget(self, cal, translator_60):
        demand = spiky_trace(cal)
        result = translator_60.translate(demand, case_study_qos(m_degr_percent=3))
        assert result.degraded_fraction <= 0.03 + 1e-12

    def test_strict_qos_no_degradation(self, cal, translator_60):
        demand = spiky_trace(cal)
        result = translator_60.translate(demand, case_study_qos(m_degr_percent=0))
        assert result.degraded_fraction == 0.0


class TestTimeLimit:
    def test_t_degr_limits_runs(self, cal, translator_60):
        # A trace engineered with a long high plateau.
        values = np.ones(cal.n_observations)
        values[100:150] = 5.0
        demand = DemandTrace("plateau", values, cal)
        no_limit = translator_60.translate(demand, case_study_qos(m_degr_percent=3))
        limited = translator_60.translate(
            demand, case_study_qos(m_degr_percent=3, t_degr_minutes=30)
        )
        assert limited.longest_degraded_run_slots <= 6  # 30 min at 5-min slots
        assert limited.d_new_max >= no_limit.d_new_max
        assert limited.time_limited is not None
        assert no_limit.time_limited is None

    def test_t_degr_reduces_degraded_fraction(self, cal, translator_95):
        demand = spiky_trace(cal, seed=3)
        no_limit = translator_95.translate(demand, case_study_qos(m_degr_percent=3))
        limited = translator_95.translate(
            demand, case_study_qos(m_degr_percent=3, t_degr_minutes=30)
        )
        assert limited.degraded_fraction <= no_limit.degraded_fraction + 1e-12


class TestTranslateMany:
    def test_shared_qos(self, cal, translator_60):
        demands = [spiky_trace(cal, seed=i).renamed(f"w{i}") for i in range(3)]
        results = translator_60.translate_many(demands, case_study_qos())
        assert set(results) == {"w0", "w1", "w2"}

    def test_per_name_qos(self, cal, translator_60):
        demands = [spiky_trace(cal, seed=i).renamed(f"w{i}") for i in range(2)]
        qos_map = {
            "w0": case_study_qos(m_degr_percent=0),
            "w1": case_study_qos(m_degr_percent=3),
        }
        results = translator_60.translate_many(demands, qos_map)
        assert results["w0"].cap_reduction <= results["w1"].cap_reduction + 1e-12

    def test_missing_qos_raises(self, cal, translator_60):
        demands = [spiky_trace(cal).renamed("known")]
        with pytest.raises(TranslationError):
            translator_60.translate_many(demands, {"other": case_study_qos()})

    def test_duplicate_names_raise(self, cal, translator_60):
        demands = [spiky_trace(cal), spiky_trace(cal)]
        with pytest.raises(TranslationError):
            translator_60.translate_many(demands, case_study_qos())


class TestContainers:
    def test_translate_container(self, cal, translator_60):
        from repro.resources.container import ResourceContainer

        demand = spiky_trace(cal)
        container = ResourceContainer("spiky", demand)
        translated = translator_60.translate_container(container, case_study_qos())
        assert translated.is_translated


class TestInternalGuarantees:
    def test_worst_case_ceiling_respected_across_thetas(self, cal):
        """Utilization never exceeds U_degr under the worst-case model,
        for either theta — the translator self-checks this."""
        demand = spiky_trace(cal, seed=9)
        for theta in (0.6, 0.75, 0.95):
            translator = QoSTranslator(PoolCommitments.of(theta=theta))
            for t_degr in (None, 120.0, 30.0):
                translator.translate(
                    demand, case_study_qos(m_degr_percent=3, t_degr_minutes=t_degr)
                )

    def test_zero_trace(self, cal, translator_60):
        demand = DemandTrace("zero", np.zeros(cal.n_observations), cal)
        result = translator_60.translate(demand, case_study_qos())
        assert result.d_new_max == 0.0
        assert result.pair.total().peak() == 0.0

    def test_single_spike_trace(self, cal, translator_60):
        values = np.zeros(cal.n_observations)
        values[500] = 3.0
        demand = DemandTrace("single", values, cal)
        result = translator_60.translate(demand, case_study_qos())
        assert result.degraded_fraction <= 0.03
