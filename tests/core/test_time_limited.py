"""Tests for the T_degr time-limited degradation analysis (formulas 6-11)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import breakpoint_fraction
from repro.core.time_limited import (
    enforce_time_limited_degradation,
    expected_utilization,
)
from repro.exceptions import TranslationError
from repro.traces.ops import longest_run_above

U_LOW, U_HIGH = 0.5, 0.66


def run_analysis(values, theta, initial_cap, max_run_slots):
    p = breakpoint_fraction(U_LOW, U_HIGH, theta)
    return enforce_time_limited_degradation(
        np.asarray(values, dtype=float),
        initial_cap=initial_cap,
        breakpoint_fraction=p,
        theta=theta,
        u_low=U_LOW,
        u_high=U_HIGH,
        max_run_slots=max_run_slots,
    )


class TestExpectedUtilization:
    def test_below_breakpoint_is_u_low(self):
        p = breakpoint_fraction(U_LOW, U_HIGH, 0.6)
        values = np.array([p * 10.0 * 0.5])  # below the breakpoint demand
        utilization = expected_utilization(values, 10.0, p, 0.6, U_LOW)
        assert utilization[0] == pytest.approx(U_LOW)

    def test_at_cap_is_u_high_when_p_positive(self):
        """Demand exactly at the cap sits exactly at U_high when p > 0."""
        for theta in (0.5, 0.6, 0.7):
            p = breakpoint_fraction(U_LOW, U_HIGH, theta)
            assert p > 0
            utilization = expected_utilization(
                np.array([10.0]), 10.0, p, theta, U_LOW
            )
            assert utilization[0] == pytest.approx(U_HIGH)

    def test_at_cap_is_u_low_over_theta_when_p_zero(self):
        """With p = 0 the worst-case utilization at the cap is U_low/theta,
        which is at most U_high by the choice of p."""
        for theta in (0.8, 0.95):
            assert breakpoint_fraction(U_LOW, U_HIGH, theta) == 0.0
            utilization = expected_utilization(
                np.array([10.0]), 10.0, 0.0, theta, U_LOW
            )
            assert utilization[0] == pytest.approx(U_LOW / theta)
            assert utilization[0] <= U_HIGH

    def test_above_cap_is_degraded(self):
        p = breakpoint_fraction(U_LOW, U_HIGH, 0.6)
        utilization = expected_utilization(
            np.array([15.0]), 10.0, p, 0.6, U_LOW
        )
        assert utilization[0] > U_HIGH

    def test_monotone_in_demand(self):
        p = breakpoint_fraction(U_LOW, U_HIGH, 0.6)
        demands = np.linspace(0.01, 20.0, 100)
        utilization = expected_utilization(demands, 10.0, p, 0.6, U_LOW)
        assert (np.diff(utilization) >= -1e-12).all()

    def test_zero_demand_zero_utilization(self):
        utilization = expected_utilization(np.array([0.0]), 10.0, 0.3, 0.6, 0.5)
        assert utilization[0] == 0.0

    def test_zero_cap_positive_demand_starved(self):
        utilization = expected_utilization(np.array([1.0]), 0.0, 0.0, 0.6, 0.5)
        assert np.isinf(utilization[0])

    def test_rejects_bad_breakpoint(self):
        with pytest.raises(TranslationError):
            expected_utilization(np.ones(3), 1.0, 1.5, 0.6, 0.5)


class TestEnforcement:
    def test_no_op_when_no_long_runs(self):
        values = np.ones(100)
        values[10] = 5.0  # single degraded observation
        result = run_analysis(values, 0.6, initial_cap=2.0, max_run_slots=3)
        assert result.iterations == 0
        assert result.d_new_max == 2.0

    def test_breaks_long_run(self):
        values = np.ones(100)
        values[10:20] = 5.0  # 10 contiguous degraded observations
        result = run_analysis(values, 0.6, initial_cap=2.0, max_run_slots=3)
        assert result.iterations >= 1
        assert result.d_new_max > 2.0
        assert result.longest_degraded_run <= 3

    def test_p_positive_promotes_to_d_min_degr(self):
        """With p > 0, formula 10 collapses to D_new_max = D_min_degr."""
        values = np.ones(50)
        values[5:15] = np.linspace(4.0, 6.0, 10)
        result = run_analysis(values, 0.6, initial_cap=2.0, max_run_slots=20)
        assert result.iterations == 0  # run of 10 <= 20 allowed
        result = run_analysis(values, 0.6, initial_cap=2.0, max_run_slots=4)
        # First promotion should raise the cap to the run's min demand (4.0).
        assert result.d_new_max >= 4.0

    def test_p_zero_formula_11(self):
        """With p = 0 (high theta) the cap lands at D*U_low/(U_high*theta)."""
        theta = 0.95  # ratio 0.7576 <= 0.95 -> p = 0
        values = np.ones(50)
        values[5:10] = 4.0
        result = run_analysis(values, theta, initial_cap=2.0, max_run_slots=2)
        expected = 4.0 * U_LOW / (U_HIGH * theta)
        assert result.d_new_max == pytest.approx(expected, rel=1e-9)

    def test_higher_theta_smaller_cap(self):
        """Section V: under time limits, higher theta -> smaller D_new_max."""
        values = np.ones(100)
        values[10:30] = 5.0
        cap_low = run_analysis(values, 0.8, 2.0, 3).d_new_max
        cap_high = run_analysis(values, 0.95, 2.0, 3).d_new_max
        assert cap_high < cap_low

    def test_final_state_satisfies_constraint(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(0, 1.2, 2000)
        for theta in (0.6, 0.95):
            p = breakpoint_fraction(U_LOW, U_HIGH, theta)
            result = run_analysis(
                values, theta, initial_cap=np.percentile(values, 97), max_run_slots=6
            )
            utilization = expected_utilization(
                values, result.d_new_max, p, theta, U_LOW
            )
            degraded = (
                (utilization > U_HIGH + 1e-9) & (values > 0)
            ).astype(float)
            assert longest_run_above(degraded, 0.5) <= 6
            assert result.longest_degraded_run <= 6

    def test_cap_monotone_nondecreasing(self):
        values = np.ones(100)
        values[10:40] = 8.0
        caps = [
            run_analysis(values, 0.6, 2.0, slots).d_new_max
            for slots in (50, 10, 5, 2, 0)
        ]
        # Tighter run limits require equal-or-larger caps.
        assert all(a <= b + 1e-12 for a, b in zip(caps, caps[1:]))

    def test_zero_max_run_slots_removes_all_degradation_runs(self):
        values = np.ones(50)
        values[5:10] = 4.0
        result = run_analysis(values, 0.6, initial_cap=2.0, max_run_slots=0)
        assert result.longest_degraded_run <= 0 or result.longest_degraded_run == 0

    def test_all_zero_trace(self):
        result = run_analysis(np.zeros(20), 0.6, initial_cap=0.0, max_run_slots=3)
        assert result.iterations == 0
        assert result.degraded_fraction == 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(TranslationError):
            run_analysis(np.ones(5), 0.6, initial_cap=-1.0, max_run_slots=3)
        with pytest.raises(TranslationError):
            run_analysis(np.ones(5), 0.6, initial_cap=1.0, max_run_slots=-1)
        with pytest.raises(TranslationError):
            enforce_time_limited_degradation(
                np.ones(5), 1.0, 0.5, theta=0.6, u_low=0.7, u_high=0.66,
                max_run_slots=1,
            )

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from([0.6, 0.8, 0.95]),
        st.integers(min_value=0, max_value=8),
    )
    def test_convergence_property(self, seed, theta, max_run_slots):
        """The iteration always terminates and satisfies the constraint."""
        rng = np.random.default_rng(seed)
        values = rng.lognormal(0, 1.0, 500)
        initial_cap = float(np.percentile(values, 97))
        p = breakpoint_fraction(U_LOW, U_HIGH, theta)
        result = enforce_time_limited_degradation(
            values, initial_cap, p, theta, U_LOW, U_HIGH, max_run_slots
        )
        assert result.d_new_max >= initial_cap
        utilization = expected_utilization(
            values, result.d_new_max, p, theta, U_LOW
        )
        degraded = ((utilization > U_HIGH + 1e-9) & (values > 0)).astype(float)
        assert longest_run_above(degraded, 0.5) <= max_run_slots
