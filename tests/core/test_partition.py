"""Tests for the breakpoint formula and demand partitioning (formula 1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.partition import (
    breakpoint_fraction,
    partition_demand,
    worst_case_granted_allocation,
)
from repro.exceptions import PartitionError


class TestBreakpointFraction:
    def test_paper_figure3_parameters(self):
        """(U_low, U_high) = (0.5, 0.66): p falls to 0 at theta ~ 0.7576."""
        ratio = 0.5 / 0.66
        assert breakpoint_fraction(0.5, 0.66, 0.6) == pytest.approx(
            (ratio - 0.6) / 0.4
        )
        assert breakpoint_fraction(0.5, 0.66, ratio) == 0.0
        assert breakpoint_fraction(0.5, 0.66, 0.95) == 0.0

    def test_monotone_decreasing_in_theta(self):
        thetas = np.linspace(0.4, 0.99, 30)
        values = [breakpoint_fraction(0.5, 0.66, theta) for theta in thetas]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_equal_bounds_gives_one_at_low_theta(self):
        # U_low == U_high: ratio is 1, so p = (1 - theta)/(1 - theta) = 1.
        assert breakpoint_fraction(0.6, 0.6, 0.5) == 1.0

    def test_theta_one_gives_zero(self):
        assert breakpoint_fraction(0.5, 0.66, 1.0) == 0.0

    def test_theta_within_atol_of_one_short_circuits(self):
        # Any theta within METRIC_ATOL of 1 must take the isclose
        # branch and never reach the singular 1 - theta divisor —
        # even when U_low == U_high makes ratio == 1 > theta.
        for theta in (1.0 - 1e-12, 1.0 - 1e-10):
            assert breakpoint_fraction(0.5, 0.66, theta) == 0.0
            assert breakpoint_fraction(0.6, 0.6, theta) == 0.0

    def test_theta_just_below_the_atol_window_still_divides(self):
        # Outside the METRIC_ATOL window the formula applies normally;
        # with ratio == 1 it yields exactly p = 1 for any theta < 1.
        assert breakpoint_fraction(0.6, 0.6, 1.0 - 1e-6) == 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(PartitionError):
            breakpoint_fraction(0.7, 0.66, 0.6)
        with pytest.raises(PartitionError):
            breakpoint_fraction(0.5, 0.66, 0.0)
        with pytest.raises(PartitionError):
            # Out-of-domain on purpose: rejection is what's asserted.
            breakpoint_fraction(0.5, 0.66, 1.5)  # ropus: ignore[ROP009]
        with pytest.raises(ValueError):
            breakpoint_fraction(0.0, 0.66, 0.5)

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.0, max_value=0.94),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_always_in_unit_interval(self, u_low, gap, theta):
        u_high = min(1.0, u_low + gap * (1.0 - u_low))
        p = breakpoint_fraction(u_low, u_high, theta)
        assert 0.0 <= p <= 1.0

    @given(
        st.floats(min_value=0.1, max_value=0.6),
        st.floats(min_value=0.01, max_value=0.35),
        st.floats(min_value=0.05, max_value=0.99),
    )
    def test_allocation_identity(self, u_low, gap, theta):
        """The defining equation: A_ok = A_ideal*(p + (1-p)*theta).

        Holds whenever p is interior (not clamped at 0).
        """
        u_high = u_low + gap
        p = breakpoint_fraction(u_low, u_high, theta)
        if p > 0:
            d_max = 10.0
            a_ideal = d_max / u_low
            a_ok = d_max / u_high
            granted = a_ideal * (p + (1 - p) * theta)
            assert granted == pytest.approx(a_ok, rel=1e-9)


class TestPartitionDemand:
    def test_docstring_example(self):
        cos1, cos2 = partition_demand(np.array([1.0, 4.0, 10.0]), 8.0, 3.0)
        assert cos1.tolist() == [1.0, 3.0, 3.0]
        assert cos2.tolist() == [0.0, 1.0, 5.0]

    def test_conservation_up_to_cap(self):
        values = np.array([0.0, 2.0, 5.0, 9.0, 20.0])
        cos1, cos2 = partition_demand(values, 10.0, 4.0)
        np.testing.assert_allclose(cos1 + cos2, np.minimum(values, 10.0))

    def test_all_in_cos1_when_breakpoint_is_cap(self):
        values = np.array([1.0, 5.0, 12.0])
        cos1, cos2 = partition_demand(values, 10.0, 10.0)
        np.testing.assert_allclose(cos2, 0.0)
        np.testing.assert_allclose(cos1, np.minimum(values, 10.0))

    def test_all_in_cos2_when_breakpoint_zero(self):
        values = np.array([1.0, 5.0, 12.0])
        cos1, cos2 = partition_demand(values, 10.0, 0.0)
        np.testing.assert_allclose(cos1, 0.0)
        np.testing.assert_allclose(cos2, np.minimum(values, 10.0))

    def test_zero_cap(self):
        cos1, cos2 = partition_demand(np.array([1.0, 2.0]), 0.0, 0.0)
        assert cos1.tolist() == [0.0, 0.0]
        assert cos2.tolist() == [0.0, 0.0]

    def test_rejects_breakpoint_above_cap(self):
        with pytest.raises(PartitionError):
            partition_demand(np.ones(3), 5.0, 6.0)

    def test_rejects_negative_cap(self):
        with pytest.raises(PartitionError):
            # Out-of-domain on purpose: rejection is what's asserted.
            partition_demand(np.ones(3), -1.0, 0.0)  # ropus: ignore[ROP009]

    def test_rejects_2d(self):
        with pytest.raises(PartitionError):
            partition_demand(np.ones((2, 2)), 1.0, 0.5)

    @given(
        st.lists(
            st.floats(min_value=0, max_value=100), min_size=1, max_size=50
        ),
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_properties(self, demand, cap, break_fraction):
        values = np.array(demand)
        breakpoint = cap * break_fraction
        cos1, cos2 = partition_demand(values, cap, breakpoint)
        assert (cos1 >= 0).all() and (cos2 >= 0).all()
        assert (cos1 <= breakpoint + 1e-9).all()
        np.testing.assert_allclose(
            cos1 + cos2, np.minimum(values, cap), atol=1e-9
        )


class TestWorstCaseGrantedAllocation:
    def test_formula(self):
        cos1 = np.array([2.0])
        cos2 = np.array([4.0])
        granted = worst_case_granted_allocation(cos1, cos2, theta=0.5, u_low=0.5)
        # (2 + 4*0.5) / 0.5 = 8
        assert granted[0] == pytest.approx(8.0)

    def test_theta_one_full_grant(self):
        cos1 = np.array([1.0])
        cos2 = np.array([1.0])
        granted = worst_case_granted_allocation(cos1, cos2, 1.0, 0.5)
        assert granted[0] == pytest.approx(4.0)
