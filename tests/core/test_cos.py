"""Tests for pool CoS commitments."""

import pytest

from repro.core.cos import CoSCommitment, PoolCommitments
from repro.exceptions import CommitmentError
from repro.traces.calendar import TraceCalendar


class TestCoSCommitment:
    def test_basic(self):
        commitment = CoSCommitment(theta=0.95, deadline_minutes=60)
        assert commitment.theta == 0.95

    def test_theta_of_one_allowed(self):
        assert CoSCommitment(theta=1.0).theta == 1.0

    def test_rejects_zero_theta(self):
        with pytest.raises(CommitmentError):
            CoSCommitment(theta=0.0)

    def test_rejects_theta_above_one(self):
        with pytest.raises(CommitmentError):
            CoSCommitment(theta=1.01)

    def test_rejects_negative_deadline(self):
        with pytest.raises(CommitmentError):
            CoSCommitment(theta=0.9, deadline_minutes=-5)

    def test_deadline_slots(self):
        commitment = CoSCommitment(theta=0.9, deadline_minutes=60)
        five_minute = TraceCalendar(weeks=1, slot_minutes=5)
        hourly = TraceCalendar(weeks=1, slot_minutes=60)
        assert commitment.deadline_slots(five_minute) == 12
        assert commitment.deadline_slots(hourly) == 1

    def test_zero_deadline(self):
        commitment = CoSCommitment(theta=0.9, deadline_minutes=0)
        cal = TraceCalendar(weeks=1, slot_minutes=5)
        assert commitment.deadline_slots(cal) == 0


class TestPoolCommitments:
    def test_of_shorthand(self):
        commitments = PoolCommitments.of(0.6)
        assert commitments.theta == 0.6
        assert commitments.cos2.deadline_minutes == 60.0

    def test_custom_deadline(self):
        assert PoolCommitments.of(0.6, deadline_minutes=30).cos2.deadline_minutes == 30
