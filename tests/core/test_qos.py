"""Tests for application QoS specifications."""

import pytest

from repro.core.qos import (
    ApplicationQoS,
    DegradedSpec,
    QoSPolicy,
    QoSRange,
    case_study_qos,
)
from repro.exceptions import QoSSpecificationError


class TestQoSRange:
    def test_burst_factor_is_reciprocal_of_u_low(self):
        assert QoSRange(0.5, 0.66).burst_factor == 2.0
        assert QoSRange(0.25, 0.5).burst_factor == 4.0

    def test_contains_upper_bound_only(self):
        qos_range = QoSRange(0.5, 0.66)
        assert qos_range.contains(0.3)  # below U_low still acceptable
        assert qos_range.contains(0.66)
        assert not qos_range.contains(0.67)

    def test_rejects_inverted_band(self):
        with pytest.raises(QoSSpecificationError):
            QoSRange(0.7, 0.66)

    def test_rejects_out_of_range(self):
        with pytest.raises(QoSSpecificationError):
            QoSRange(0.0, 0.66)
        with pytest.raises(QoSSpecificationError):
            QoSRange(0.5, 1.5)

    def test_equal_bounds_allowed(self):
        assert QoSRange(0.6, 0.6).burst_factor == pytest.approx(1 / 0.6)


class TestDegradedSpec:
    def test_compliance_percent(self):
        assert DegradedSpec(3.0, 0.9).compliance_percent == 97.0

    def test_zero_budget_allowed(self):
        assert DegradedSpec(0.0, 0.9).m_degr_percent == 0.0

    def test_rejects_budget_of_100(self):
        with pytest.raises(QoSSpecificationError):
            DegradedSpec(100.0, 0.9)

    def test_rejects_u_degr_of_one(self):
        """U_degr < 1 ensures demands are met within their interval."""
        with pytest.raises(QoSSpecificationError):
            DegradedSpec(3.0, 1.0)

    def test_rejects_nonpositive_t_degr(self):
        with pytest.raises(QoSSpecificationError):
            DegradedSpec(3.0, 0.9, t_degr_minutes=0)


class TestApplicationQoS:
    def test_paper_example(self):
        qos = ApplicationQoS(
            QoSRange(0.5, 0.66),
            DegradedSpec(3.0, 0.9, t_degr_minutes=30),
        )
        assert qos.u_low == 0.5
        assert qos.u_high == 0.66
        assert qos.u_degr == 0.9
        assert qos.m_degr_percent == 3.0
        assert qos.t_degr_minutes == 30

    def test_no_degraded_spec(self):
        qos = ApplicationQoS(QoSRange(0.5, 0.66))
        assert qos.u_degr is None
        assert qos.m_degr_percent == 0.0
        assert qos.t_degr_minutes is None

    def test_rejects_u_degr_below_u_high(self):
        with pytest.raises(QoSSpecificationError):
            ApplicationQoS(QoSRange(0.5, 0.66), DegradedSpec(3.0, 0.5))

    def test_with_degraded(self):
        qos = ApplicationQoS(QoSRange(0.5, 0.66))
        relaxed = qos.with_degraded(DegradedSpec(3.0, 0.9))
        assert relaxed.m_degr_percent == 3.0
        assert qos.m_degr_percent == 0.0


class TestQoSPolicy:
    def test_mode_selection(self):
        normal = ApplicationQoS(QoSRange(0.5, 0.66))
        failure = ApplicationQoS(QoSRange(0.5, 0.66), DegradedSpec(3.0, 0.9))
        policy = QoSPolicy(normal=normal, failure=failure)
        assert policy.mode(False) is normal
        assert policy.mode(True) is failure

    def test_missing_failure_mode_falls_back_to_normal(self):
        normal = ApplicationQoS(QoSRange(0.5, 0.66))
        policy = QoSPolicy(normal=normal)
        assert policy.mode(True) is normal


class TestCaseStudyQoS:
    def test_defaults_match_paper(self):
        qos = case_study_qos()
        assert qos.u_low == 0.5
        assert qos.u_high == 0.66
        assert qos.u_degr == 0.9
        assert qos.m_degr_percent == 3.0

    def test_zero_budget_removes_degraded_spec(self):
        qos = case_study_qos(m_degr_percent=0)
        assert qos.degraded is None

    def test_t_degr_passthrough(self):
        assert case_study_qos(t_degr_minutes=30).t_degr_minutes == 30
