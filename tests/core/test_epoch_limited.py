"""Tests for the per-period degraded-epoch budget (footnote 2 extension)."""

import numpy as np
import pytest

from repro.core.epoch_limited import (
    count_epochs_per_period,
    enforce_epoch_budget,
)
from repro.core.partition import breakpoint_fraction
from repro.core.time_limited import DEGRADED_TOLERANCE, expected_utilization
from repro.exceptions import TranslationError

U_LOW, U_HIGH = 0.5, 0.66


def run_budget(values, theta, initial_cap, max_epochs, period_slots):
    p = breakpoint_fraction(U_LOW, U_HIGH, theta)
    return enforce_epoch_budget(
        np.asarray(values, dtype=float),
        initial_cap=initial_cap,
        breakpoint_fraction=p,
        theta=theta,
        u_low=U_LOW,
        u_high=U_HIGH,
        max_epochs_per_period=max_epochs,
        period_slots=period_slots,
    )


def degraded_mask(values, theta, cap):
    p = breakpoint_fraction(U_LOW, U_HIGH, theta)
    utilization = expected_utilization(values, cap, p, theta, U_LOW)
    return (utilization > U_HIGH + DEGRADED_TOLERANCE) & (values > 0)


class TestCountEpochs:
    def test_no_epochs(self):
        counts = count_epochs_per_period(np.zeros(20, dtype=bool), 10)
        assert counts == [0, 0]

    def test_counts_per_period(self):
        mask = np.zeros(20, dtype=bool)
        mask[1] = True
        mask[3:5] = True
        mask[15] = True
        counts = count_epochs_per_period(mask, 10)
        assert counts == [2, 1]

    def test_epoch_spanning_boundary_counts_in_both(self):
        mask = np.zeros(20, dtype=bool)
        mask[8:12] = True
        counts = count_epochs_per_period(mask, 10)
        assert counts == [1, 1]

    def test_trailing_partial_period(self):
        mask = np.zeros(25, dtype=bool)
        mask[24] = True
        counts = count_epochs_per_period(mask, 10)
        assert counts == [0, 0, 1]

    def test_rejects_bad_period(self):
        with pytest.raises(TranslationError):
            count_epochs_per_period(np.zeros(5, dtype=bool), 0)


class TestEnforcement:
    def test_no_op_when_within_budget(self):
        values = np.ones(100)
        values[10] = 5.0
        values[50] = 5.0
        result = run_budget(values, 0.6, initial_cap=2.0, max_epochs=2,
                            period_slots=100)
        assert result.iterations == 0
        assert result.d_new_max == 2.0
        assert result.worst_period_epochs == 2

    def test_eliminates_cheapest_epoch(self):
        values = np.ones(100)
        values[10] = 5.0   # epoch peak 5
        values[50] = 3.0   # epoch peak 3 (cheapest)
        values[80] = 6.0   # epoch peak 6
        result = run_budget(values, 0.6, initial_cap=2.0, max_epochs=2,
                            period_slots=100)
        assert result.iterations >= 1
        assert result.worst_period_epochs <= 2
        # The cheapest epoch (peak 3) is gone; the others may remain.
        mask = degraded_mask(values, 0.6, result.d_new_max)
        assert not mask[50]

    def test_zero_budget_removes_all_epochs(self):
        values = np.ones(100)
        values[10] = 5.0
        values[60:63] = 4.0
        result = run_budget(values, 0.6, initial_cap=2.0, max_epochs=0,
                            period_slots=50)
        assert result.worst_period_epochs == 0
        assert not degraded_mask(values, 0.6, result.d_new_max).any()

    def test_per_day_budget_localised(self):
        """Only the over-budget day forces promotions."""
        values = np.ones(200)
        # Day 0 (slots 0-99): three epochs; day 1: one epoch.
        values[10] = 5.0
        values[30] = 4.0
        values[50] = 6.0
        values[150] = 7.0
        result = run_budget(values, 0.6, initial_cap=2.0, max_epochs=2,
                            period_slots=100)
        mask = degraded_mask(values, 0.6, result.d_new_max)
        counts = count_epochs_per_period(mask, 100)
        assert counts[0] <= 2
        # Day 1's single epoch survives only if its demand still exceeds
        # the (raised) cap; either way it is within budget.
        assert counts[1] <= 2

    def test_cap_monotone_in_budget(self):
        rng = np.random.default_rng(3)
        values = rng.lognormal(0, 1.0, 500)
        initial = float(np.percentile(values, 97))
        caps = [
            run_budget(values, 0.6, initial, budget, 100).d_new_max
            for budget in (5, 2, 1, 0)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(caps, caps[1:]))

    def test_final_state_satisfies_budget(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(0, 1.2, 1000)
        for theta in (0.6, 0.95):
            for budget in (0, 1, 3):
                result = run_budget(
                    values, theta, float(np.percentile(values, 97)),
                    budget, 288,
                )
                mask = degraded_mask(values, theta, result.d_new_max)
                counts = count_epochs_per_period(mask, 288)
                assert max(counts, default=0) <= budget
                assert result.worst_period_epochs <= budget

    def test_rejects_bad_inputs(self):
        with pytest.raises(TranslationError):
            run_budget(np.ones(5), 0.6, -1.0, 2, 5)
        with pytest.raises(TranslationError):
            run_budget(np.ones(5), 0.6, 1.0, -1, 5)
        with pytest.raises(TranslationError):
            run_budget(np.ones(5), 0.6, 1.0, 2, 0)


class TestTranslationIntegration:
    def test_epochs_per_day_via_translator(self):
        from repro.core.cos import PoolCommitments
        from repro.core.qos import DegradedSpec, ApplicationQoS, QoSRange
        from repro.core.translation import QoSTranslator
        from repro.traces.calendar import TraceCalendar
        from repro.traces.trace import DemandTrace

        calendar = TraceCalendar(weeks=1, slot_minutes=60)
        values = np.ones(calendar.n_observations)
        # Three separate spikes within the first day.
        values[2] = 5.0
        values[8] = 4.0
        values[15] = 6.0
        demand = DemandTrace("w", values, calendar)
        translator = QoSTranslator(PoolCommitments.of(theta=0.6))

        unbudgeted = translator.translate(
            demand,
            ApplicationQoS(QoSRange(U_LOW, U_HIGH), DegradedSpec(3.0, 0.9)),
        )
        budgeted = translator.translate(
            demand,
            ApplicationQoS(
                QoSRange(U_LOW, U_HIGH),
                DegradedSpec(3.0, 0.9, epochs_per_day=1),
            ),
        )
        assert budgeted.epoch_budget is not None
        assert unbudgeted.epoch_budget is None
        assert budgeted.d_new_max >= unbudgeted.d_new_max
        assert budgeted.epoch_budget.worst_period_epochs <= 1
