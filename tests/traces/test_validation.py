"""Tests for trace quality validation."""

import numpy as np
import pytest

from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace
from repro.traces.validation import (
    IssueKind,
    validate_ensemble,
    validate_trace,
)


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=5)


def trace(cal, values, name="w"):
    return DemandTrace(name, values, cal)


class TestCleanTraces:
    def test_realistic_trace_is_clean(self, cal):
        rng = np.random.default_rng(0)
        values = rng.lognormal(0, 0.4, cal.n_observations) + 0.1
        report = validate_trace(trace(cal, values))
        assert report.clean
        assert report.workload == "w"
        assert report.n_observations == cal.n_observations

    def test_generated_ensemble_is_clean(self):
        from repro.workloads.ensemble import case_study_ensemble

        reports = validate_ensemble(case_study_ensemble(seed=2006, weeks=1))
        dirty = [name for name, report in reports.items() if not report.clean]
        assert dirty == []


class TestPathologies:
    def test_all_zero(self, cal):
        report = validate_trace(trace(cal, np.zeros(cal.n_observations)))
        assert report.has(IssueKind.ALL_ZERO)
        assert not report.clean

    def test_mostly_zero(self, cal):
        values = np.zeros(cal.n_observations)
        # Scattered nonzero values so no long zero-run dominates checks.
        values[::3] = 1.0 + 0.01 * np.arange(len(values[::3]))
        report = validate_trace(trace(cal, values))
        assert report.has(IssueKind.MOSTLY_ZERO)

    def test_constant(self, cal):
        report = validate_trace(
            trace(cal, np.full(cal.n_observations, 2.5))
        )
        assert report.has(IssueKind.CONSTANT)

    def test_stuck_value(self, cal):
        rng = np.random.default_rng(1)
        values = rng.lognormal(0, 0.3, cal.n_observations) + 0.1
        values[100:200] = 3.14  # 100 slots stuck
        report = validate_trace(trace(cal, values))
        assert report.has(IssueKind.STUCK_VALUE)
        issue = next(
            issue for issue in report.issues
            if issue.kind is IssueKind.STUCK_VALUE
        )
        assert issue.start == 100
        assert issue.stop == 200

    def test_short_repeats_not_flagged(self, cal):
        rng = np.random.default_rng(2)
        values = rng.lognormal(0, 0.3, cal.n_observations) + 0.1
        values[10:20] = 2.0  # only 10 slots
        report = validate_trace(trace(cal, values))
        assert not report.has(IssueKind.STUCK_VALUE)

    def test_extreme_outlier(self, cal):
        rng = np.random.default_rng(3)
        values = rng.uniform(0.5, 1.5, cal.n_observations)
        values[500] = 100.0
        report = validate_trace(trace(cal, values))
        assert report.has(IssueKind.EXTREME_OUTLIER)
        issue = next(
            issue for issue in report.issues
            if issue.kind is IssueKind.EXTREME_OUTLIER
        )
        assert issue.start == 500

    def test_legitimate_burstiness_not_outlier(self, cal):
        rng = np.random.default_rng(4)
        values = rng.lognormal(0, 1.0, cal.n_observations)
        report = validate_trace(trace(cal, values))
        assert not report.has(IssueKind.EXTREME_OUTLIER)

    def test_dead_collector(self, cal):
        rng = np.random.default_rng(5)
        values = rng.lognormal(0, 0.3, cal.n_observations) + 0.1
        values[300:360] = 0.0  # 5 hours dead
        report = validate_trace(trace(cal, values))
        assert report.has(IssueKind.DEAD_COLLECTOR)

    def test_thresholds_tunable(self, cal):
        rng = np.random.default_rng(6)
        values = rng.lognormal(0, 0.3, cal.n_observations) + 0.1
        values[0:30] = 0.0
        default = validate_trace(trace(cal, values))
        strict = validate_trace(trace(cal, values), dead_run_slots=10)
        assert not default.has(IssueKind.DEAD_COLLECTOR)
        assert strict.has(IssueKind.DEAD_COLLECTOR)


class TestQuarantineSeries:
    def test_clean_series_untouched(self):
        from repro.traces.validation import quarantine_series

        values = np.array([1.0, 2.0, 3.0])
        repaired, counts = quarantine_series(values)
        np.testing.assert_array_equal(repaired, values)
        assert counts == {}

    def test_nan_and_inf_forward_filled(self):
        from repro.traces.validation import RepairKind, quarantine_series

        values = np.array([1.0, np.nan, np.inf, 4.0, np.nan])
        repaired, counts = quarantine_series(values)
        np.testing.assert_array_equal(repaired, [1.0, 1.0, 1.0, 4.0, 4.0])
        assert counts[RepairKind.NON_FINITE] == 3

    def test_leading_gap_reads_zero(self):
        from repro.traces.validation import quarantine_series

        repaired, _ = quarantine_series(np.array([np.nan, np.nan, 2.0]))
        np.testing.assert_array_equal(repaired, [0.0, 0.0, 2.0])

    def test_negatives_clamped_and_counted(self):
        from repro.traces.validation import RepairKind, quarantine_series

        repaired, counts = quarantine_series(np.array([1.0, -2.0, 3.0]))
        np.testing.assert_array_equal(repaired, [1.0, 0.0, 3.0])
        assert counts[RepairKind.NEGATIVE] == 1

    def test_input_not_mutated(self):
        from repro.traces.validation import quarantine_series

        values = np.array([np.nan, -1.0])
        quarantine_series(values)
        assert np.isnan(values[0]) and values[1] == -1.0


class TestRepairReport:
    def test_describe_clean_and_dirty(self):
        from repro.traces.validation import RepairKind, TraceRepairReport

        clean = TraceRepairReport(workload="app")
        assert clean.clean
        assert clean.describe() == "app: clean"
        dirty = TraceRepairReport(
            workload="app",
            counts={RepairKind.NON_FINITE: 2, RepairKind.NEGATIVE: 1},
        )
        assert dirty.total == 3
        assert "non-finite=2" in dirty.describe()
        assert "negative=1" in dirty.describe()
