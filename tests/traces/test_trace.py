"""Tests for DemandTrace."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import TraceError
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=60)


class TestConstruction:
    def test_basic(self, cal):
        trace = DemandTrace("w", np.ones(cal.n_observations), cal)
        assert trace.name == "w"
        assert trace.attribute == "cpu"
        assert len(trace) == cal.n_observations

    def test_values_are_read_only(self, cal):
        trace = DemandTrace("w", np.ones(cal.n_observations), cal)
        with pytest.raises(ValueError):
            trace.values[0] = 5.0

    def test_accepts_lists(self, cal):
        trace = DemandTrace("w", [1.0] * cal.n_observations, cal)
        assert trace.peak() == 1.0

    def test_rejects_wrong_length(self, cal):
        with pytest.raises(TraceError):
            DemandTrace("w", np.ones(10), cal)

    def test_rejects_2d(self, cal):
        with pytest.raises(TraceError):
            DemandTrace("w", np.ones((cal.n_observations, 1)), cal)

    def test_rejects_negative(self, cal):
        values = np.ones(cal.n_observations)
        values[3] = -0.5
        with pytest.raises(TraceError):
            DemandTrace("w", values, cal)

    def test_rejects_nan_and_inf(self, cal):
        for bad in (np.nan, np.inf):
            values = np.ones(cal.n_observations)
            values[0] = bad
            with pytest.raises(TraceError):
                DemandTrace("w", values, cal)

    def test_equality_and_hash(self, cal):
        a = DemandTrace("w", np.ones(cal.n_observations), cal)
        b = DemandTrace("w", np.ones(cal.n_observations), cal)
        c = DemandTrace("w2", np.ones(cal.n_observations), cal)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestStatistics:
    def test_peak_and_mean(self, cal):
        values = np.ones(cal.n_observations)
        values[5] = 9.0
        trace = DemandTrace("w", values, cal)
        assert trace.peak() == 9.0
        assert trace.mean() == pytest.approx(values.mean())

    def test_percentile_100_equals_peak(self, cal):
        rng = np.random.default_rng(0)
        trace = DemandTrace("w", rng.uniform(0, 5, cal.n_observations), cal)
        assert trace.percentile(100) == pytest.approx(trace.peak())

    def test_percentile_higher_method_guarantee(self, cal):
        rng = np.random.default_rng(1)
        trace = DemandTrace("w", rng.uniform(0, 5, cal.n_observations), cal)
        for m in (90.0, 95.0, 97.0, 99.0):
            cap = trace.percentile(m, method="higher")
            above = np.count_nonzero(trace.values > cap)
            assert above / len(trace) <= (100.0 - m) / 100.0

    def test_percentile_out_of_range(self, cal):
        trace = DemandTrace("w", np.ones(cal.n_observations), cal)
        with pytest.raises(TraceError):
            trace.percentile(101)
        with pytest.raises(TraceError):
            trace.percentile(-1)

    def test_is_constant(self, cal):
        assert DemandTrace("w", np.full(cal.n_observations, 2.0), cal).is_constant()
        values = np.full(cal.n_observations, 2.0)
        values[-1] = 3.0
        assert not DemandTrace("w", values, cal).is_constant()


class TestTransformations:
    def test_scaled(self, cal):
        trace = DemandTrace("w", np.full(cal.n_observations, 2.0), cal)
        assert trace.scaled(2.0).peak() == 4.0
        # Original unchanged.
        assert trace.peak() == 2.0

    def test_scaled_rejects_negative(self, cal):
        trace = DemandTrace("w", np.ones(cal.n_observations), cal)
        with pytest.raises(TraceError):
            trace.scaled(-1.0)

    def test_clipped(self, cal):
        values = np.ones(cal.n_observations)
        values[0] = 10.0
        trace = DemandTrace("w", values, cal)
        assert trace.clipped(3.0).peak() == 3.0

    def test_mapped(self, cal):
        trace = DemandTrace("w", np.ones(cal.n_observations), cal)
        doubled = trace.mapped(lambda v: v * 2)
        assert doubled.peak() == 2.0

    def test_renamed(self, cal):
        trace = DemandTrace("w", np.ones(cal.n_observations), cal)
        assert trace.renamed("x").name == "x"
        assert np.array_equal(trace.renamed("x").values, trace.values)

    @given(st.floats(min_value=0.0, max_value=100.0))
    def test_scaling_scales_peak_property(self, factor):
        cal = TraceCalendar(weeks=1, slot_minutes=360)
        rng = np.random.default_rng(7)
        trace = DemandTrace("w", rng.uniform(0, 3, cal.n_observations), cal)
        assert trace.scaled(factor).peak() == pytest.approx(
            trace.peak() * factor, rel=1e-9, abs=1e-12
        )
