"""Tests for the trace calendar grid."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import CalendarMismatchError, TraceError
from repro.traces.calendar import DAYS_PER_WEEK, SlotIndex, TraceCalendar


class TestConstruction:
    def test_paper_defaults(self):
        calendar = TraceCalendar(weeks=4, slot_minutes=5)
        assert calendar.slots_per_day == 288
        assert calendar.slots_per_week == 288 * 7
        assert calendar.n_observations == 4 * 7 * 288

    def test_hourly_resolution(self):
        calendar = TraceCalendar(weeks=1, slot_minutes=60)
        assert calendar.slots_per_day == 24
        assert calendar.n_observations == 168

    def test_rejects_zero_weeks(self):
        with pytest.raises(TraceError):
            TraceCalendar(weeks=0)

    def test_rejects_non_divisor_slot(self):
        with pytest.raises(TraceError):
            TraceCalendar(weeks=1, slot_minutes=7)

    def test_rejects_negative_slot_minutes(self):
        with pytest.raises(TraceError):
            TraceCalendar(weeks=1, slot_minutes=-5)


class TestIndexing:
    def test_flat_index_origin(self):
        calendar = TraceCalendar(weeks=2, slot_minutes=60)
        assert calendar.flat_index(SlotIndex(0, 0, 0)) == 0

    def test_flat_index_round_trip_examples(self):
        calendar = TraceCalendar(weeks=2, slot_minutes=60)
        for flat in [0, 1, 23, 24, 167, 168, 335]:
            assert calendar.flat_index(calendar.coordinates(flat)) == flat

    def test_coordinates_of_last_observation(self):
        calendar = TraceCalendar(weeks=2, slot_minutes=60)
        coords = calendar.coordinates(calendar.n_observations - 1)
        assert coords == SlotIndex(week=1, day=6, slot=23)

    def test_out_of_range_flat_index(self):
        calendar = TraceCalendar(weeks=1, slot_minutes=60)
        with pytest.raises(TraceError):
            calendar.coordinates(calendar.n_observations)
        with pytest.raises(TraceError):
            calendar.coordinates(-1)

    def test_out_of_range_coordinates(self):
        calendar = TraceCalendar(weeks=1, slot_minutes=60)
        with pytest.raises(TraceError):
            calendar.flat_index(SlotIndex(1, 0, 0))
        with pytest.raises(TraceError):
            calendar.flat_index(SlotIndex(0, 7, 0))
        with pytest.raises(TraceError):
            calendar.flat_index(SlotIndex(0, 0, 24))

    def test_iter_slots_covers_everything_in_order(self):
        calendar = TraceCalendar(weeks=1, slot_minutes=360)
        slots = list(calendar.iter_slots())
        assert len(slots) == calendar.n_observations
        assert [calendar.flat_index(slot) for slot in slots] == list(
            range(calendar.n_observations)
        )

    @given(st.integers(min_value=0, max_value=4 * 7 * 288 - 1))
    def test_round_trip_property(self, flat):
        calendar = TraceCalendar(weeks=4, slot_minutes=5)
        assert calendar.flat_index(calendar.coordinates(flat)) == flat


class TestViews:
    def test_slot_of_day_view_shape(self):
        calendar = TraceCalendar(weeks=3, slot_minutes=60)
        values = np.arange(calendar.n_observations, dtype=float)
        view = calendar.slot_of_day_view(values)
        assert view.shape == (3, DAYS_PER_WEEK, 24)

    def test_slot_of_day_view_layout(self):
        calendar = TraceCalendar(weeks=2, slot_minutes=60)
        values = np.arange(calendar.n_observations, dtype=float)
        view = calendar.slot_of_day_view(values)
        # week 1, day 2, slot 5 should be flat index 1*168 + 2*24 + 5.
        assert view[1, 2, 5] == 168 + 48 + 5

    def test_slot_of_day_view_rejects_wrong_length(self):
        calendar = TraceCalendar(weeks=1, slot_minutes=60)
        with pytest.raises(CalendarMismatchError):
            calendar.slot_of_day_view(np.zeros(10))


class TestDurations:
    def test_slots_for_duration_exact(self):
        calendar = TraceCalendar(weeks=1, slot_minutes=5)
        assert calendar.slots_for_duration(30) == 6
        assert calendar.slots_for_duration(60) == 12

    def test_slots_for_duration_rounds_down(self):
        calendar = TraceCalendar(weeks=1, slot_minutes=5)
        assert calendar.slots_for_duration(29) == 5
        assert calendar.slots_for_duration(4) == 0

    def test_slots_for_duration_zero(self):
        calendar = TraceCalendar(weeks=1, slot_minutes=5)
        assert calendar.slots_for_duration(0) == 0

    def test_slots_for_duration_negative_rejected(self):
        calendar = TraceCalendar(weeks=1, slot_minutes=5)
        with pytest.raises(TraceError):
            calendar.slots_for_duration(-1)


class TestCompatibility:
    def test_identical_calendars_compatible(self):
        assert TraceCalendar(2, 5).compatible_with(TraceCalendar(2, 5))

    def test_different_weeks_incompatible(self):
        assert not TraceCalendar(2, 5).compatible_with(TraceCalendar(3, 5))

    def test_different_resolution_incompatible(self):
        assert not TraceCalendar(2, 5).compatible_with(TraceCalendar(2, 10))

    def test_require_compatible_raises(self):
        with pytest.raises(CalendarMismatchError):
            TraceCalendar(2, 5).require_compatible(TraceCalendar(1, 5))
