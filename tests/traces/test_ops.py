"""Tests for trace analysis primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import CalendarMismatchError, TraceError
from repro.traces.calendar import TraceCalendar
from repro.traces.ops import (
    Run,
    aggregate_traces,
    contiguous_runs_above,
    fraction_above,
    longest_run_above,
    normalize_to_peak,
    percentile_profile,
    smallest_in_runs_exceeding,
)
from repro.traces.trace import DemandTrace


class TestContiguousRuns:
    def test_no_runs(self):
        assert contiguous_runs_above(np.zeros(10), 0.5) == []

    def test_single_run(self):
        runs = contiguous_runs_above(np.array([0, 2, 2, 2, 0.0]), 1)
        assert runs == [Run(1, 4)]
        assert runs[0].length == 3

    def test_run_at_boundaries(self):
        runs = contiguous_runs_above(np.array([2, 0, 2.0]), 1)
        assert runs == [Run(0, 1), Run(2, 3)]

    def test_entire_array_one_run(self):
        runs = contiguous_runs_above(np.ones(5) * 2, 1)
        assert runs == [Run(0, 5)]

    def test_threshold_is_strict(self):
        # Values exactly equal to the threshold do not count as above.
        runs = contiguous_runs_above(np.array([1.0, 1.0, 1.1]), 1.0)
        assert runs == [Run(2, 3)]

    def test_empty_array(self):
        assert contiguous_runs_above(np.empty(0), 1.0) == []

    def test_rejects_2d(self):
        with pytest.raises(TraceError):
            contiguous_runs_above(np.ones((2, 2)), 0.5)

    def test_run_indices(self):
        run = Run(3, 6)
        assert run.indices().tolist() == [3, 4, 5]

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=0, max_size=60)
    )
    def test_runs_partition_above_mask(self, bits):
        values = np.array(bits, dtype=float)
        runs = contiguous_runs_above(values, 0.5)
        covered = np.zeros(len(bits), dtype=bool)
        for run in runs:
            assert run.length > 0
            assert (values[run.start : run.stop] > 0.5).all()
            covered[run.start : run.stop] = True
        # Every above-threshold index is inside exactly one run, and runs
        # are maximal (neighbours of a run are below the threshold).
        assert np.array_equal(covered, values > 0.5)
        for run in runs:
            if run.start > 0:
                assert values[run.start - 1] <= 0.5
            if run.stop < len(bits):
                assert values[run.stop] <= 0.5


class TestLongestRun:
    def test_zero_when_never_above(self):
        assert longest_run_above(np.zeros(5), 1) == 0

    def test_finds_longest(self):
        values = np.array([2, 0, 2, 2, 0, 2, 2, 2.0])
        assert longest_run_above(values, 1) == 3


class TestSmallestInRunsExceeding:
    def test_none_when_all_runs_short(self):
        values = np.array([5, 0, 5, 5, 0.0])
        assert smallest_in_runs_exceeding(values, 1, max_run_length=2) is None

    def test_finds_min_of_first_long_run(self):
        values = np.array([0, 5, 3, 4, 0, 9, 9, 9, 2.0])
        # max_run_length=2: first violating run is [5, 3, 4].
        assert smallest_in_runs_exceeding(values, 1, max_run_length=2) == 3.0

    def test_zero_max_run_length(self):
        values = np.array([0, 5.0, 0])
        assert smallest_in_runs_exceeding(values, 1, max_run_length=0) == 5.0

    def test_rejects_negative_max(self):
        with pytest.raises(TraceError):
            smallest_in_runs_exceeding(np.ones(3), 0.5, -1)


class TestFractionAbove:
    def test_empty(self):
        assert fraction_above(np.empty(0), 1.0) == 0.0

    def test_half(self):
        assert fraction_above(np.array([0, 2, 0, 2.0]), 1.0) == 0.5

    def test_strictness(self):
        assert fraction_above(np.array([1.0, 1.0]), 1.0) == 0.0


class TestPercentileProfile:
    def test_normalised_to_peak(self):
        cal = TraceCalendar(weeks=1, slot_minutes=60)
        values = np.linspace(0, 10, cal.n_observations)
        trace = DemandTrace("w", values, cal)
        profile = percentile_profile(trace, [50, 100])
        assert profile[100.0] == pytest.approx(100.0)
        assert profile[50.0] == pytest.approx(50.0, abs=1.0)

    def test_zero_trace(self):
        cal = TraceCalendar(weeks=1, slot_minutes=60)
        trace = DemandTrace("w", np.zeros(cal.n_observations), cal)
        assert percentile_profile(trace, [97])[97.0] == 0.0


class TestNormalizeAndAggregate:
    def test_normalize_to_peak(self):
        cal = TraceCalendar(weeks=1, slot_minutes=60)
        values = np.full(cal.n_observations, 4.0)
        trace = DemandTrace("w", values, cal)
        assert normalize_to_peak(trace).peak() == 1.0

    def test_normalize_zero_trace_identity(self):
        cal = TraceCalendar(weeks=1, slot_minutes=60)
        trace = DemandTrace("w", np.zeros(cal.n_observations), cal)
        assert normalize_to_peak(trace) is trace

    def test_aggregate_sums_elementwise(self):
        cal = TraceCalendar(weeks=1, slot_minutes=60)
        a = DemandTrace("a", np.full(cal.n_observations, 1.0), cal)
        b = DemandTrace("b", np.full(cal.n_observations, 2.0), cal)
        total = aggregate_traces([a, b])
        assert total.peak() == 3.0
        assert total.name == "aggregate"

    def test_aggregate_empty_rejected(self):
        with pytest.raises(TraceError):
            aggregate_traces([])

    def test_aggregate_mismatched_calendars_rejected(self):
        a = DemandTrace("a", np.ones(168), TraceCalendar(1, 60))
        b = DemandTrace("b", np.ones(336), TraceCalendar(2, 60))
        with pytest.raises(CalendarMismatchError):
            aggregate_traces([a, b])

    def test_aggregate_mismatched_attributes_rejected(self):
        cal = TraceCalendar(1, 60)
        a = DemandTrace("a", np.ones(cal.n_observations), cal, attribute="cpu")
        b = DemandTrace("b", np.ones(cal.n_observations), cal, attribute="mem")
        with pytest.raises(CalendarMismatchError):
            aggregate_traces([a, b])
