"""Tests for allocation traces and per-CoS pairs."""

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.traces.allocation import (
    AllocationTrace,
    CoSAllocationPair,
    aggregate_pairs,
    allocation_from_demand,
)
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=60)


def make_pair(cal, name, cos1_level, cos2_level):
    n = cal.n_observations
    return CoSAllocationPair(
        name,
        AllocationTrace(f"{name}.cos1", np.full(n, cos1_level), cal),
        AllocationTrace(f"{name}.cos2", np.full(n, cos2_level), cal),
    )


class TestAllocationTrace:
    def test_construction_and_peak(self, cal):
        trace = AllocationTrace("a", np.full(cal.n_observations, 2.0), cal)
        assert trace.peak() == 2.0
        assert trace.mean() == 2.0

    def test_rejects_negative(self, cal):
        values = np.zeros(cal.n_observations)
        values[0] = -1
        with pytest.raises(TraceError):
            AllocationTrace("a", values, cal)

    def test_rejects_wrong_length(self, cal):
        with pytest.raises(TraceError):
            AllocationTrace("a", np.ones(3), cal)

    def test_addition(self, cal):
        a = AllocationTrace("a", np.full(cal.n_observations, 1.0), cal)
        b = AllocationTrace("b", np.full(cal.n_observations, 2.0), cal)
        assert (a + b).peak() == 3.0

    def test_addition_rejects_attribute_mismatch(self, cal):
        a = AllocationTrace("a", np.ones(cal.n_observations), cal, "cpu")
        b = AllocationTrace("b", np.ones(cal.n_observations), cal, "mem")
        with pytest.raises(TraceError):
            a + b

    def test_values_read_only(self, cal):
        trace = AllocationTrace("a", np.ones(cal.n_observations), cal)
        with pytest.raises(ValueError):
            trace.values[0] = 9


class TestCoSAllocationPair:
    def test_total_and_peaks(self, cal):
        pair = make_pair(cal, "w", 1.0, 2.0)
        assert pair.total().peak() == 3.0
        assert pair.peak_allocation() == 3.0
        assert pair.peak_cos1() == 1.0

    def test_cos2_fraction(self, cal):
        pair = make_pair(cal, "w", 1.0, 3.0)
        assert pair.cos2_fraction() == pytest.approx(0.75)

    def test_cos2_fraction_zero_pair(self, cal):
        pair = make_pair(cal, "w", 0.0, 0.0)
        assert pair.cos2_fraction() == 0.0

    def test_attribute_mismatch_rejected(self, cal):
        cos1 = AllocationTrace("c1", np.ones(cal.n_observations), cal, "cpu")
        cos2 = AllocationTrace("c2", np.ones(cal.n_observations), cal, "mem")
        with pytest.raises(TraceError):
            CoSAllocationPair("w", cos1, cos2)


class TestAllocationFromDemand:
    def test_burst_factor_scales(self, cal):
        demand = DemandTrace("w", np.full(cal.n_observations, 3.0), cal)
        allocation = allocation_from_demand(demand, burst_factor=2.0)
        assert allocation.peak() == 6.0

    def test_paper_example(self, cal):
        # Demand 2 CPUs, burst factor 2 -> allocation 4 CPUs (Section II).
        demand = DemandTrace("w", np.full(cal.n_observations, 2.0), cal)
        assert allocation_from_demand(demand, 2.0).values[0] == 4.0

    def test_rejects_nonpositive_burst_factor(self, cal):
        demand = DemandTrace("w", np.ones(cal.n_observations), cal)
        with pytest.raises(TraceError):
            allocation_from_demand(demand, 0.0)


class TestAggregatePairs:
    def test_sums_both_classes(self, cal):
        pairs = [make_pair(cal, "a", 1.0, 2.0), make_pair(cal, "b", 0.5, 1.5)]
        total = aggregate_pairs(pairs)
        assert total.cos1.peak() == pytest.approx(1.5)
        assert total.cos2.peak() == pytest.approx(3.5)

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            aggregate_pairs([])
