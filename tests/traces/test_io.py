"""Tests for trace serialization."""

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.traces.calendar import TraceCalendar
from repro.traces.io import (
    load_traces_csv,
    load_traces_json,
    save_traces_csv,
    save_traces_json,
    traces_from_json,
    traces_to_json,
)
from repro.traces.trace import DemandTrace


@pytest.fixture
def traces():
    cal = TraceCalendar(weeks=1, slot_minutes=360)
    rng = np.random.default_rng(5)
    return [
        DemandTrace(f"app-{index}", rng.uniform(0, 4, cal.n_observations), cal)
        for index in range(3)
    ]


class TestCsvRoundTrip:
    def test_round_trip_exact(self, traces, tmp_path):
        path = tmp_path / "traces.csv"
        save_traces_csv(traces, path)
        loaded = load_traces_csv(path)
        assert len(loaded) == len(traces)
        for original, restored in zip(traces, loaded):
            assert restored.name == original.name
            assert restored.calendar == original.calendar
            assert np.array_equal(restored.values, original.values)

    def test_save_empty_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            save_traces_csv([], tmp_path / "x.csv")

    def test_load_rejects_non_trace_csv(self, tmp_path):
        path = tmp_path / "junk.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(TraceError):
            load_traces_csv(path)

    def test_load_rejects_truncated(self, tmp_path):
        path = tmp_path / "trunc.csv"
        path.write_text("# ropus-traces,1,360,cpu\n")
        with pytest.raises(TraceError):
            load_traces_csv(path)

    def test_load_rejects_ragged_rows(self, traces, tmp_path):
        path = tmp_path / "traces.csv"
        save_traces_csv(traces, path)
        lines = path.read_text().splitlines()
        lines[2] = lines[2].rsplit(",", 1)[0]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError):
            load_traces_csv(path)


class TestJsonRoundTrip:
    def test_round_trip_exact(self, traces):
        restored = traces_from_json(traces_to_json(traces))
        for original, copy in zip(traces, restored):
            assert copy.name == original.name
            assert np.array_equal(copy.values, original.values)

    def test_file_round_trip(self, traces, tmp_path):
        path = tmp_path / "traces.json"
        save_traces_json(traces, path)
        loaded = load_traces_json(path)
        assert [trace.name for trace in loaded] == [
            trace.name for trace in traces
        ]

    def test_rejects_invalid_json(self):
        with pytest.raises(TraceError):
            traces_from_json("not json at all {")

    def test_rejects_wrong_format_tag(self):
        with pytest.raises(TraceError):
            traces_from_json('{"format": "something-else"}')

    def test_serialize_empty_rejected(self):
        with pytest.raises(TraceError):
            traces_to_json([])
