"""Tests for trace serialization."""

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.traces.calendar import TraceCalendar
from repro.traces.io import (
    load_traces_csv,
    load_traces_json,
    save_traces_csv,
    save_traces_json,
    traces_from_json,
    traces_to_json,
)
from repro.traces.trace import DemandTrace


@pytest.fixture
def traces():
    cal = TraceCalendar(weeks=1, slot_minutes=360)
    rng = np.random.default_rng(5)
    return [
        DemandTrace(f"app-{index}", rng.uniform(0, 4, cal.n_observations), cal)
        for index in range(3)
    ]


class TestCsvRoundTrip:
    def test_round_trip_exact(self, traces, tmp_path):
        path = tmp_path / "traces.csv"
        save_traces_csv(traces, path)
        loaded = load_traces_csv(path)
        assert len(loaded) == len(traces)
        for original, restored in zip(traces, loaded):
            assert restored.name == original.name
            assert restored.calendar == original.calendar
            assert np.array_equal(restored.values, original.values)

    def test_save_empty_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            save_traces_csv([], tmp_path / "x.csv")

    def test_load_rejects_non_trace_csv(self, tmp_path):
        path = tmp_path / "junk.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(TraceError):
            load_traces_csv(path)

    def test_load_rejects_truncated(self, tmp_path):
        path = tmp_path / "trunc.csv"
        path.write_text("# ropus-traces,1,360,cpu\n")
        with pytest.raises(TraceError):
            load_traces_csv(path)

    def test_load_rejects_ragged_rows(self, traces, tmp_path):
        path = tmp_path / "traces.csv"
        save_traces_csv(traces, path)
        lines = path.read_text().splitlines()
        lines[2] = lines[2].rsplit(",", 1)[0]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError):
            load_traces_csv(path)


class TestJsonRoundTrip:
    def test_round_trip_exact(self, traces):
        restored = traces_from_json(traces_to_json(traces))
        for original, copy in zip(traces, restored):
            assert copy.name == original.name
            assert np.array_equal(copy.values, original.values)

    def test_file_round_trip(self, traces, tmp_path):
        path = tmp_path / "traces.json"
        save_traces_json(traces, path)
        loaded = load_traces_json(path)
        assert [trace.name for trace in loaded] == [
            trace.name for trace in traces
        ]

    def test_rejects_invalid_json(self):
        with pytest.raises(TraceError):
            traces_from_json("not json at all {")

    def test_rejects_wrong_format_tag(self):
        with pytest.raises(TraceError):
            traces_from_json('{"format": "something-else"}')

    def test_serialize_empty_rejected(self):
        with pytest.raises(TraceError):
            traces_to_json([])


class TestRepairedLoader:
    """``load_traces_csv_repaired`` admits messy exports with a report."""

    def _write(self, tmp_path, rows, names="a,b", header="# ropus-traces,1,360,cpu"):
        path = tmp_path / "messy.csv"
        path.write_text("\n".join([header, names, *rows]) + "\n")
        return path

    def test_clean_file_matches_strict_loader(self, traces, tmp_path):
        from repro.traces.io import load_traces_csv_repaired

        path = tmp_path / "clean.csv"
        save_traces_csv(traces, path)
        strict = load_traces_csv(path)
        repaired, reports = load_traces_csv_repaired(path)
        assert repaired == strict
        assert all(report.clean for report in reports.values())
        assert all(trace.repairs == 0 for trace in repaired)

    def test_unparsable_cells_carried_forward(self, tmp_path):
        from repro.traces.io import load_traces_csv_repaired
        from repro.traces.validation import RepairKind

        cal = TraceCalendar(weeks=1, slot_minutes=360)
        rows = ["1.0,2.0"] * cal.n_observations
        rows[3] = "oops,2.0"
        path = self._write(tmp_path, rows)
        loaded, reports = load_traces_csv_repaired(path)
        assert loaded[0].values[3] == 1.0  # carried from slot 2
        assert reports["a"].count(RepairKind.NON_FINITE) == 1
        assert reports["b"].clean
        assert loaded[0].repairs == 1

    def test_leading_nonfinite_reads_zero(self, tmp_path):
        from repro.traces.io import load_traces_csv_repaired

        cal = TraceCalendar(weeks=1, slot_minutes=360)
        rows = ["2.0,2.0"] * cal.n_observations
        rows[0] = "nan,2.0"
        path = self._write(tmp_path, rows)
        loaded, _ = load_traces_csv_repaired(path)
        assert loaded[0].values[0] == 0.0

    def test_negative_demand_clamped(self, tmp_path):
        from repro.traces.io import load_traces_csv_repaired
        from repro.traces.validation import RepairKind

        cal = TraceCalendar(weeks=1, slot_minutes=360)
        rows = ["1.0,1.0"] * cal.n_observations
        rows[5] = "-3.0,1.0"
        path = self._write(tmp_path, rows)
        loaded, reports = load_traces_csv_repaired(path)
        assert loaded[0].values[5] == 0.0
        assert reports["a"].count(RepairKind.NEGATIVE) == 1

    def test_out_of_order_rows_land_at_their_slot(self, tmp_path):
        from repro.traces.io import load_traces_csv_repaired
        from repro.traces.validation import RepairKind

        cal = TraceCalendar(weeks=1, slot_minutes=360)
        rows = [
            f"{slot},{float(slot)},0.0" for slot in range(cal.n_observations)
        ]
        rows[1], rows[2] = rows[2], rows[1]  # one inversion
        path = self._write(tmp_path, rows, names="slot,a,b")
        loaded, reports = load_traces_csv_repaired(path)
        assert loaded[0].values[1] == 1.0
        assert loaded[0].values[2] == 2.0
        assert reports["a"].count(RepairKind.OUT_OF_ORDER) == 1
        assert "out-of-order" in reports["a"].describe()

    def test_malformed_rows_counted_not_fatal(self, tmp_path):
        from repro.traces.io import load_traces_csv_repaired
        from repro.traces.validation import RepairKind

        cal = TraceCalendar(weeks=1, slot_minutes=360)
        rows = ["1.0,1.0"] * cal.n_observations
        rows[4] = "1.0"  # short row: b's cell missing
        path = self._write(tmp_path, rows)
        loaded, reports = load_traces_csv_repaired(path)
        assert reports["b"].count(RepairKind.MALFORMED_ROW) == 1
        # b's missing cell repaired by carry-forward.
        assert loaded[1].values[4] == 1.0

    def test_broken_header_still_raises(self, tmp_path):
        from repro.traces.io import load_traces_csv_repaired

        path = tmp_path / "broken.csv"
        path.write_text("not a trace csv\nother\n")
        with pytest.raises(TraceError):
            load_traces_csv_repaired(path)
