"""Tests for the theta measurement (Section IV formula)."""

import numpy as np
import pytest

from repro.exceptions import CapacityError, TraceError
from repro.metrics.access import (
    measure_theta,
    required_capacity_for_theta,
    theta_by_slot,
)
from repro.traces.allocation import AllocationTrace
from repro.traces.calendar import TraceCalendar


@pytest.fixture
def cal():
    return TraceCalendar(weeks=2, slot_minutes=60)


class TestThetaBySlot:
    def test_shape(self, cal):
        allocation = AllocationTrace("a", np.ones(cal.n_observations), cal)
        ratios = theta_by_slot(allocation, 2.0)
        assert ratios.shape == (2, 24)

    def test_fully_satisfied(self, cal):
        allocation = AllocationTrace("a", np.ones(cal.n_observations), cal)
        assert (theta_by_slot(allocation, 2.0) == 1.0).all()

    def test_half_satisfied(self, cal):
        allocation = AllocationTrace(
            "a", np.full(cal.n_observations, 4.0), cal
        )
        assert theta_by_slot(allocation, 2.0) == pytest.approx(0.5)

    def test_zero_request_slot_counts_as_satisfied(self, cal):
        values = np.zeros(cal.n_observations)
        values[0] = 4.0  # only week 0, day 0, slot 0 has demand
        allocation = AllocationTrace("a", values, cal)
        ratios = theta_by_slot(allocation, 2.0)
        assert ratios[0, 0] == pytest.approx(0.5)
        assert ratios[1, 0] == 1.0  # no demand in week 1

    def test_aggregates_across_days(self, cal):
        """The ratio pools the seven days of a week per slot-of-day."""
        values = np.zeros(cal.n_observations)
        # Slot 0 of week 0: demand 4 on day 0 (cut to 2), demand 2 on day 1
        # (fully satisfied): ratio = (2 + 2) / (4 + 2) = 2/3.
        values[0] = 4.0
        values[24] = 2.0
        allocation = AllocationTrace("a", values, cal)
        ratios = theta_by_slot(allocation, 2.0)
        assert ratios[0, 0] == pytest.approx(4.0 / 6.0)

    def test_rejects_nonpositive_capacity(self, cal):
        allocation = AllocationTrace("a", np.ones(cal.n_observations), cal)
        with pytest.raises(CapacityError):
            theta_by_slot(allocation, 0.0)


class TestMeasureTheta:
    def test_min_over_slots(self, cal):
        values = np.ones(cal.n_observations)
        values[5] = 10.0  # one bad slot
        allocation = AllocationTrace("a", values, cal)
        theta = measure_theta(allocation, 2.0)
        # Week 0, slot 5: (2 + 6x1) / (10 + 6x1) = 0.5
        assert theta == pytest.approx(0.5)

    def test_monotone_in_capacity(self, cal):
        rng = np.random.default_rng(0)
        allocation = AllocationTrace(
            "a", rng.uniform(0, 5, cal.n_observations), cal
        )
        thetas = [measure_theta(allocation, c) for c in (1.0, 2.0, 4.0, 8.0)]
        assert all(a <= b + 1e-12 for a, b in zip(thetas, thetas[1:]))

    def test_one_when_capacity_covers_peak(self, cal):
        allocation = AllocationTrace(
            "a", np.full(cal.n_observations, 3.0), cal
        )
        assert measure_theta(allocation, 3.0) == 1.0


class TestRequiredCapacityForTheta:
    def test_constant_demand(self, cal):
        allocation = AllocationTrace(
            "a", np.full(cal.n_observations, 4.0), cal
        )
        required = required_capacity_for_theta(allocation, 0.5, 16.0)
        assert required == pytest.approx(2.0, abs=0.02)

    def test_theta_one_needs_peak(self, cal):
        values = np.ones(cal.n_observations)
        values[3] = 7.0
        allocation = AllocationTrace("a", values, cal)
        required = required_capacity_for_theta(allocation, 1.0, 16.0)
        assert required == pytest.approx(7.0, abs=0.02)

    def test_none_when_limit_insufficient(self, cal):
        allocation = AllocationTrace(
            "a", np.full(cal.n_observations, 100.0), cal
        )
        assert required_capacity_for_theta(allocation, 0.99, 16.0) is None

    def test_rejects_bad_inputs(self, cal):
        allocation = AllocationTrace("a", np.ones(cal.n_observations), cal)
        with pytest.raises(TraceError):
            required_capacity_for_theta(allocation, 0.0, 16.0)
        with pytest.raises(CapacityError):
            required_capacity_for_theta(allocation, 0.9, 0.0)
        with pytest.raises(CapacityError):
            required_capacity_for_theta(allocation, 0.9, 16.0, tolerance=0)
