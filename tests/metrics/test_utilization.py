"""Tests for per-server utilization summaries."""

import numpy as np
import pytest

from repro.exceptions import PlacementError
from repro.metrics.utilization import (
    consolidation_utilization,
    pool_balance,
    server_utilization,
)
from repro.placement.consolidation import ConsolidationResult
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.calendar import TraceCalendar


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=60)


def constant_pair(cal, name, cos1_level, cos2_level):
    n = cal.n_observations
    return CoSAllocationPair(
        name,
        AllocationTrace(f"{name}.cos1", np.full(n, cos1_level), cal),
        AllocationTrace(f"{name}.cos2", np.full(n, cos2_level), cal),
    )


class TestServerUtilization:
    def test_constant_load(self, cal):
        pairs = [constant_pair(cal, "a", 2.0, 2.0)]
        summary = server_utilization(pairs, "s0", 16.0, 5.0)
        assert summary.peak_requested == 4.0
        assert summary.mean_requested == 4.0
        assert summary.p95_requested == 4.0
        assert summary.cos1_share == pytest.approx(0.5)
        assert summary.slots_above_limit == 0
        assert summary.mean_utilization_of_limit == pytest.approx(0.25)

    def test_overload_slots_counted(self, cal):
        n = cal.n_observations
        values = np.full(n, 1.0)
        values[:10] = 20.0
        pair = CoSAllocationPair(
            "a",
            AllocationTrace("a.c1", values, cal),
            AllocationTrace("a.c2", np.zeros(n), cal),
        )
        summary = server_utilization([pair], "s0", 16.0, 16.0)
        assert summary.slots_above_limit == 10

    def test_zero_load_cos1_share(self, cal):
        pairs = [constant_pair(cal, "a", 0.0, 0.0)]
        summary = server_utilization(pairs, "s0", 16.0, 0.0)
        assert summary.cos1_share == 0.0

    def test_rejects_bad_limit(self, cal):
        pairs = [constant_pair(cal, "a", 1.0, 1.0)]
        with pytest.raises(PlacementError):
            server_utilization(pairs, "s0", 0.0, 1.0)


class TestConsolidationUtilization:
    def test_per_server_summaries(self, cal):
        pairs = {
            "a": constant_pair(cal, "a", 1.0, 1.0),
            "b": constant_pair(cal, "b", 2.0, 2.0),
            "c": constant_pair(cal, "c", 0.5, 0.5),
        }
        result = ConsolidationResult(
            assignment={"server-00": ("a", "b"), "server-01": ("c",)},
            required_by_server={"server-00": 6.0, "server-01": 1.0},
            sum_required=7.0,
            sum_peak_allocations=9.0,
            score=1.0,
            algorithm="first_fit",
        )
        pool = ResourcePool(homogeneous_servers(2, cpus=16))
        summaries = consolidation_utilization(result, pairs, pool)
        assert set(summaries) == {"server-00", "server-01"}
        assert summaries["server-00"].peak_requested == pytest.approx(6.0)
        assert summaries["server-01"].peak_requested == pytest.approx(1.0)

    def test_missing_pairs_rejected(self, cal):
        result = ConsolidationResult(
            assignment={"server-00": ("ghost",)},
            required_by_server={"server-00": 1.0},
            sum_required=1.0,
            sum_peak_allocations=1.0,
            score=1.0,
            algorithm="first_fit",
        )
        pool = ResourcePool(homogeneous_servers(1, cpus=16))
        with pytest.raises(PlacementError):
            consolidation_utilization(result, {}, pool)


class TestPoolBalance:
    def test_empty(self):
        assert pool_balance({}) == 0.0

    def test_balanced_is_zero(self, cal):
        pairs = [constant_pair(cal, "a", 1.0, 1.0)]
        summary = server_utilization(pairs, "s0", 16.0, 2.0)
        assert pool_balance({"s0": summary, "s1": summary}) == 0.0

    def test_straggler_raises_imbalance(self, cal):
        hot = server_utilization(
            [constant_pair(cal, "a", 6.0, 6.0)], "s0", 16.0, 12.0
        )
        cold = server_utilization(
            [constant_pair(cal, "b", 0.5, 0.5)], "s1", 16.0, 1.0
        )
        assert pool_balance({"s0": hot, "s1": cold}) > 0.5
