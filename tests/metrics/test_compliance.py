"""Tests for per-application QoS compliance checking."""

import numpy as np
import pytest

from repro.core.qos import ApplicationQoS, DegradedSpec, QoSRange
from repro.exceptions import TraceError
from repro.metrics.compliance import (
    check_compliance,
    utilization_series,
)
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace


@pytest.fixture
def cal():
    return TraceCalendar(weeks=1, slot_minutes=5)


def qos(m=3.0, u_degr=0.9, t_degr=None):
    degraded = (
        DegradedSpec(m, u_degr, t_degr_minutes=t_degr) if m > 0 else None
    )
    return ApplicationQoS(QoSRange(0.5, 0.66), degraded)


class TestUtilizationSeries:
    def test_ratio(self):
        utilization = utilization_series(np.array([1.0]), np.array([2.0]))
        assert utilization[0] == 0.5

    def test_zero_demand(self):
        utilization = utilization_series(np.array([0.0]), np.array([2.0]))
        assert utilization[0] == 0.0

    def test_starvation(self):
        utilization = utilization_series(np.array([1.0]), np.array([0.0]))
        assert np.isinf(utilization[0])

    def test_shape_mismatch(self):
        with pytest.raises(TraceError):
            utilization_series(np.ones(2), np.ones(3))


class TestCheckCompliance:
    def test_fully_compliant(self, cal):
        n = cal.n_observations
        demand = DemandTrace("w", np.ones(n), cal)
        granted = np.full(n, 2.0)  # utilization 0.5
        report = check_compliance(demand, granted, qos())
        assert report.compliant
        assert report.acceptable_fraction == 1.0
        assert report.degraded_fraction == 0.0

    def test_budget_violation(self, cal):
        n = cal.n_observations
        demand_values = np.ones(n)
        granted = np.full(n, 2.0)
        # Starve 5% of slots to utilization 0.8 (degraded).
        k = int(0.05 * n)
        granted[:k] = 1.25
        demand = DemandTrace("w", demand_values, cal)
        report = check_compliance(demand, granted, qos(m=3.0))
        assert not report.meets_band_budget
        assert not report.compliant
        assert report.degraded_fraction == pytest.approx(k / n)

    def test_within_budget(self, cal):
        n = cal.n_observations
        granted = np.full(n, 2.0)
        k = int(0.02 * n)
        granted[:k] = 1.25  # utilization 0.8 <= 0.9
        demand = DemandTrace("w", np.ones(n), cal)
        report = check_compliance(demand, granted, qos(m=3.0))
        assert report.meets_band_budget
        assert report.meets_ceiling
        # Contiguous prefix of k slots, though, is a long run:
        assert report.longest_degraded_run_slots == k

    def test_ceiling_violation(self, cal):
        n = cal.n_observations
        granted = np.full(n, 2.0)
        granted[0] = 1.01  # utilization ~0.99 > U_degr
        demand = DemandTrace("w", np.ones(n), cal)
        report = check_compliance(demand, granted, qos(m=3.0, u_degr=0.9))
        assert not report.meets_ceiling
        assert not report.compliant
        assert report.violation_fraction > 0

    def test_time_limit_violation(self, cal):
        n = cal.n_observations
        granted = np.full(n, 2.0)
        granted[100:110] = 1.25  # 10 slots = 50 minutes degraded
        demand = DemandTrace("w", np.ones(n), cal)
        ok = check_compliance(demand, granted, qos(m=3.0, t_degr=60))
        assert ok.meets_time_limit
        bad = check_compliance(demand, granted, qos(m=3.0, t_degr=30))
        assert not bad.meets_time_limit
        assert bad.longest_degraded_run_minutes == 50

    def test_strict_qos_treats_any_degradation_as_violation(self, cal):
        n = cal.n_observations
        granted = np.full(n, 2.0)
        granted[0] = 1.4  # utilization ~0.71 > U_high
        demand = DemandTrace("w", np.ones(n), cal)
        report = check_compliance(demand, granted, qos(m=0))
        assert not report.meets_band_budget
        # With no degraded spec, the ceiling is U_high itself.
        assert not report.meets_ceiling

    def test_zero_demand_is_vacuously_compliant(self, cal):
        n = cal.n_observations
        demand = DemandTrace("w", np.zeros(n), cal)
        report = check_compliance(demand, np.zeros(n), qos())
        assert report.compliant

    def test_starvation_counts_as_violation(self, cal):
        n = cal.n_observations
        demand = DemandTrace("w", np.ones(n), cal)
        granted = np.full(n, 2.0)
        granted[5] = 0.0
        report = check_compliance(demand, granted, qos())
        assert not report.meets_ceiling
