"""Tests for capacity summaries and report rendering."""

import pytest

from repro.metrics.capacity import CapacityCase, capacity_case
from repro.metrics.compliance import ComplianceReport
from repro.metrics.report import render_capacity_table, render_compliance_table
from repro.placement.consolidation import ConsolidationResult


def make_result(servers=2, required=20.0, peak=40.0):
    per_server = required / servers
    return ConsolidationResult(
        assignment={f"s{i}": (f"w{i}",) for i in range(servers)},
        required_by_server={f"s{i}": per_server for i in range(servers)},
        sum_required=required,
        sum_peak_allocations=peak,
        score=1.0,
        algorithm="first_fit",
    )


class TestCapacityCase:
    def test_from_result(self):
        case = capacity_case("case 1", 3.0, 0.95, 30.0, make_result())
        assert case.servers_used == 2
        assert case.sum_required == 20.0
        assert case.sharing_savings == pytest.approx(0.5)

    def test_t_degr_label(self):
        assert capacity_case("c", 0, 0.6, None, make_result()).t_degr_label() == "none"
        assert (
            capacity_case("c", 3, 0.6, 30.0, make_result()).t_degr_label()
            == "30 min"
        )

    def test_zero_peak_savings(self):
        case = CapacityCase("c", 0, 0.6, None, 1, 0.0, 0.0)
        assert case.sharing_savings == 0.0


class TestRendering:
    def test_capacity_table_contains_rows(self):
        cases = [
            capacity_case("1", 0.0, 0.6, None, make_result()),
            capacity_case("2", 3.0, 0.95, 30.0, make_result(servers=1)),
        ]
        table = render_capacity_table(cases, title="Table I")
        assert "Table I" in table
        assert "C_requ CPU" in table
        assert "30 min" in table
        assert table.count("\n") >= 4

    def test_compliance_table(self):
        report = ComplianceReport(
            workload="w0",
            n_observations=100,
            acceptable_fraction=0.99,
            degraded_fraction=0.01,
            violation_fraction=0.0,
            longest_degraded_run_slots=2,
            longest_degraded_run_minutes=10.0,
            meets_band_budget=True,
            meets_ceiling=True,
            meets_time_limit=True,
        )
        table = render_compliance_table([report])
        assert "w0" in table
        assert "yes" in table
