"""Tests for the command-line interface."""

from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.traces.io import load_traces_csv


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(["generate", "out.csv", "--weeks", "2"])
        assert args.output == "out.csv"
        assert args.weeks == 2

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.theta == 0.95
        assert args.servers == 12


class TestGenerate:
    def test_writes_csv(self, tmp_path, capsys):
        path = tmp_path / "traces.csv"
        code = main(["generate", str(path), "--weeks", "1", "--seed", "7"])
        assert code == 0
        traces = load_traces_csv(path)
        assert len(traces) == 26
        out = capsys.readouterr().out
        assert "wrote 26 traces" in out

    def test_writes_json(self, tmp_path):
        path = tmp_path / "traces.json"
        assert main(["generate", str(path), "--weeks", "1"]) == 0
        assert path.exists()


class TestTranslate:
    def test_prints_table(self, tmp_path, capsys):
        path = tmp_path / "traces.csv"
        main(["generate", str(path), "--weeks", "1"])
        code = main(
            [
                "translate",
                "--traces",
                str(path),
                "--theta",
                "0.6",
                "--m-degr",
                "3",
                "--t-degr",
                "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "app-00" in out
        assert "reduction %" in out


class TestTable1:
    def test_prints_six_cases(self, tmp_path, capsys):
        import numpy as np

        from repro.traces.calendar import TraceCalendar
        from repro.traces.io import save_traces_csv
        from repro.traces.trace import DemandTrace

        cal = TraceCalendar(weeks=1, slot_minutes=60)
        rng = np.random.default_rng(0)
        traces = [
            DemandTrace(f"w{i}", rng.lognormal(0, 0.5, cal.n_observations), cal)
            for i in range(4)
        ]
        path = tmp_path / "small.csv"
        save_traces_csv(traces, path)
        code = main(["table1", "--traces", str(path), "--servers", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "C_requ CPU" in out
        # Six case rows plus header lines.
        assert sum(line.startswith(tuple("123456")) for line in out.splitlines()) == 6


class TestValidate:
    def test_clean_ensemble_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "traces.csv"
        main(["generate", str(path), "--weeks", "1"])
        code = main(["validate", "--traces", str(path)])
        assert code == 0
        assert "26/26 traces clean" in capsys.readouterr().out

    def test_dirty_trace_exit_nonzero(self, tmp_path, capsys):
        import numpy as np

        from repro.traces.calendar import TraceCalendar
        from repro.traces.io import save_traces_csv
        from repro.traces.trace import DemandTrace

        cal = TraceCalendar(weeks=1, slot_minutes=5)
        save_traces_csv(
            [DemandTrace("dead", np.zeros(cal.n_observations), cal)],
            tmp_path / "bad.csv",
        )
        code = main(["validate", "--traces", str(tmp_path / "bad.csv")])
        assert code == 1
        assert "all-zero" in capsys.readouterr().out


class TestOutlook:
    def test_flat_growth(self, tmp_path, capsys):
        path = tmp_path / "traces.csv"
        main(["generate", str(path), "--weeks", "2"])
        code = main(
            [
                "outlook",
                "--traces",
                str(path),
                "--growth",
                "1.0",
                "--horizon",
                "4",
                "--step",
                "4",
                "--servers",
                "14",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Capacity outlook" in out
        assert "sufficient" in out


class TestPlan:
    def test_plan_summary(self, tmp_path, capsys):
        path = tmp_path / "traces.csv"
        main(["generate", str(path), "--weeks", "1"])
        code = main(
            [
                "plan",
                "--traces",
                str(path),
                "--theta",
                "0.9",
                "--servers",
                "14",
                "--no-failures",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "servers_used" in out
        assert "sharing_savings" in out


class TestLint:
    FIXTURES = Path(__file__).parent / "analysis" / "fixtures"

    def test_lint_clean_fixture(self, capsys):
        code = main(
            ["lint", str(self.FIXTURES / "good_naked_rng.py"), "--no-config"]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_dirty_fixture(self, capsys):
        code = main(
            ["lint", str(self.FIXTURES / "bad_naked_rng.py"), "--no-config"]
        )
        assert code == 1
        assert "ROP001" in capsys.readouterr().out

    def test_lint_json_format(self, capsys):
        import json

        code = main(
            [
                "lint",
                str(self.FIXTURES / "bad_wall_clock.py"),
                "--no-config",
                "--format",
                "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert {entry["rule"] for entry in payload["findings"]} == {"ROP002"}

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        assert "ROP007" in capsys.readouterr().out


class TestResilienceKnobs:
    def test_plan_accepts_resilience_arguments(self):
        args = build_parser().parse_args(
            [
                "plan",
                "--task-timeout", "30",
                "--max-retries", "3",
                "--checkpoint", "ckpt-dir",
            ]
        )
        assert args.task_timeout == 30.0
        assert args.max_retries == 3
        assert args.checkpoint == "ckpt-dir"

    def test_plan_with_checkpoint_prints_hash_and_resumes(
        self, tmp_path, capsys
    ):
        path = tmp_path / "traces.csv"
        main(["generate", str(path), "--weeks", "1"])
        argv = [
            "plan",
            "--traces", str(path),
            "--theta", "0.9",
            "--servers", "14",
            "--no-failures",
            "--checkpoint", str(tmp_path / "ckpt"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "plan_hash:" in first
        # Second invocation resumes from the stored generations and must
        # land on the same plan.
        assert main(argv) == 0
        second = capsys.readouterr().out

        def hash_line(out):
            return next(
                line for line in out.splitlines() if "plan_hash" in line
            )

        assert hash_line(first) == hash_line(second)


class TestChaos:
    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.chaos_seed == 0
        assert args.crash_rate == pytest.approx(0.02)

    def test_chaos_verify_matches_fault_free(self, tmp_path, capsys):
        path = tmp_path / "traces.csv"
        main(["generate", str(path), "--weeks", "1"])
        code = main(
            [
                "chaos",
                "--traces", str(path),
                "--servers", "14",
                "--no-failures",
                "--chaos-seed", "3",
                "--verify",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verify: OK" in out
        assert "plan_hash:" in out


class TestValidateRepair:
    def test_repair_reports_quarantined_rows(self, tmp_path, capsys):
        import numpy as np

        from repro.traces.calendar import TraceCalendar
        from repro.traces.io import save_traces_csv
        from repro.traces.trace import DemandTrace

        cal = TraceCalendar(weeks=1, slot_minutes=60)
        rng = np.random.default_rng(2)
        save_traces_csv(
            [
                DemandTrace(
                    "a", rng.lognormal(0, 0.4, cal.n_observations) + 0.2, cal
                )
            ],
            tmp_path / "t.csv",
        )
        text = (tmp_path / "t.csv").read_text().splitlines()
        text[5] = "not-a-number"
        (tmp_path / "t.csv").write_text("\n".join(text) + "\n")
        code = main(
            ["validate", "--traces", str(tmp_path / "t.csv"), "--repair"]
        )
        out = capsys.readouterr().out
        assert "repair" in out
        assert code == 0
