"""Shared fixtures for the R-Opus test suite."""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.core.cos import CoSCommitment, PoolCommitments
from repro.core.qos import ApplicationQoS, DegradedSpec, QoSRange
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec


def pytest_sessionstart(session):
    """Arm the runtime leak tracker when ``ROPUS_LEAKTRACK=1``.

    The tracker wraps the protocol-table acquire points (shared-memory
    create, pool spawn, temp dirs) and records acquisition stacks; the
    sessionfinish hook below prints anything still open so the CI smoke
    job surfaces leaks the static ROP017 analysis cannot see.
    """
    from repro.analysis.leaktrack import maybe_install

    maybe_install()


def pytest_sessionfinish(session, exitstatus):
    from repro.analysis import leaktrack

    if leaktrack.installed():
        leaktrack.report()


@pytest.fixture(autouse=True)
def _per_test_deadline():
    """Optional per-test deadline, for CI hang containment.

    The resilience suite deliberately wedges and kills worker processes;
    a regression there shows up as a hang, which would otherwise stall
    the whole run until the job-level timeout. Setting
    ``ROPUS_TEST_TIMEOUT`` (seconds) arms a SIGALRM per test so the hang
    fails loudly in-place instead. Unset (the default, and always on
    non-main threads where SIGALRM cannot be armed) this fixture is
    free.
    """
    raw = os.environ.get("ROPUS_TEST_TIMEOUT", "")
    try:
        seconds = int(raw)
    except ValueError:
        seconds = 0
    if seconds <= 0:
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded ROPUS_TEST_TIMEOUT={seconds}s (likely hang)"
        )

    try:
        previous = signal.signal(signal.SIGALRM, _expired)
    except ValueError:  # pragma: no cover - not on the main thread
        yield
        return
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def calendar() -> TraceCalendar:
    """One week at 5-minute resolution (2016 observations)."""
    return TraceCalendar(weeks=1, slot_minutes=5)


@pytest.fixture
def two_week_calendar() -> TraceCalendar:
    return TraceCalendar(weeks=2, slot_minutes=5)


@pytest.fixture
def coarse_calendar() -> TraceCalendar:
    """One week at hourly resolution — small, fast traces (168 slots)."""
    return TraceCalendar(weeks=1, slot_minutes=60)


@pytest.fixture
def constant_trace(coarse_calendar) -> DemandTrace:
    return DemandTrace(
        "constant", [2.0] * coarse_calendar.n_observations, coarse_calendar
    )


@pytest.fixture
def bursty_trace(coarse_calendar) -> DemandTrace:
    """Mostly 1.0 with a few isolated and contiguous spikes to 5-8."""
    values = np.ones(coarse_calendar.n_observations)
    values[10] = 5.0
    values[50:54] = 6.0
    values[100:110] = 8.0
    return DemandTrace("bursty", values, coarse_calendar)


@pytest.fixture
def sample_qos() -> ApplicationQoS:
    """The paper's case-study QoS: (0.5, 0.66), 3% at <=0.9."""
    return ApplicationQoS(
        QoSRange(0.5, 0.66),
        DegradedSpec(m_degr_percent=3.0, u_degr=0.9),
    )


@pytest.fixture
def strict_qos() -> ApplicationQoS:
    """No degradation tolerated."""
    return ApplicationQoS(QoSRange(0.5, 0.66))


@pytest.fixture
def commitments_95() -> PoolCommitments:
    return PoolCommitments(CoSCommitment(theta=0.95, deadline_minutes=60))


@pytest.fixture
def commitments_60() -> PoolCommitments:
    return PoolCommitments(CoSCommitment(theta=0.6, deadline_minutes=60))


@pytest.fixture
def small_ensemble(coarse_calendar) -> list[DemandTrace]:
    """Six small generated workloads on the coarse calendar."""
    generator = WorkloadGenerator(seed=99)
    specs = [
        WorkloadSpec(name=f"wl-{index}", peak_cpus=1.0 + 0.5 * index)
        for index in range(6)
    ]
    return generator.generate_many(specs, coarse_calendar)
