"""Tests for ASCII table rendering."""

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        table = format_table(["name", "n"], [["a", 1], ["bb", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert lines[-1].endswith("22")

    def test_title(self):
        table = format_table(["a"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        table = format_table(["x"], [[1.23456]])
        assert "1.23" in table
        table = format_table(["x"], [[1.23456]], float_format="{:.4f}")
        assert "1.2346" in table

    def test_booleans_render_yes_no(self):
        table = format_table(["ok"], [[True], [False]])
        assert "yes" in table
        assert "no" in table

    def test_numeric_columns_right_aligned(self):
        table = format_table(["n"], [[1], [100]])
        lines = table.splitlines()
        assert lines[2] == "  1"
        assert lines[3] == "100"

    def test_text_columns_left_aligned(self):
        table = format_table(["s"], [["a"], ["long"]])
        lines = table.splitlines()
        assert lines[2].startswith("a")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        table = format_table(["a", "b"], [])
        assert "a" in table
