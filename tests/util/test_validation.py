"""Tests for validation helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.validation import (
    require_fraction,
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(1.5, "x") == 1.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            require_positive(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive(-1, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            require_positive(math.nan, "x")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValueError):
            require_positive("abc", "x")

    def test_accepts_int(self):
        assert require_positive(3, "x") == 3.0


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_non_negative(-0.001, "x")


class TestRequireProbability:
    def test_bounds_inclusive(self):
        assert require_probability(0.0, "p") == 0.0
        assert require_probability(1.0, "p") == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            require_probability(1.01, "p")
        with pytest.raises(ValueError):
            require_probability(-0.01, "p")

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_identity_on_valid(self, value):
        assert require_probability(value, "p") == value


class TestRequireFraction:
    def test_rejects_bounds(self):
        with pytest.raises(ValueError):
            require_fraction(0.0, "f")
        with pytest.raises(ValueError):
            require_fraction(1.0, "f")

    def test_accepts_interior(self):
        assert require_fraction(0.5, "f") == 0.5


class TestRequireInRange:
    def test_inclusive(self):
        assert require_in_range(5, "x", 5, 10) == 5.0
        assert require_in_range(10, "x", 5, 10) == 10.0

    def test_exclusive(self):
        with pytest.raises(ValueError):
            require_in_range(5, "x", 5, 10, inclusive=False)
        assert require_in_range(7, "x", 5, 10, inclusive=False) == 7.0

    def test_error_message_names_parameter(self):
        with pytest.raises(ValueError, match="pressure"):
            require_in_range(0, "pressure", 1, 2)
