"""Tests for validation helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.floats import METRIC_ATOL
from repro.util.validation import (
    require_fraction,
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(1.5, "x") == 1.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            require_positive(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive(-1, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            require_positive(math.nan, "x")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValueError):
            require_positive("abc", "x")

    def test_accepts_int(self):
        assert require_positive(3, "x") == 3.0


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_non_negative(-0.001, "x")


class TestRequireProbability:
    def test_bounds_inclusive(self):
        assert require_probability(0.0, "p") == 0.0
        assert require_probability(1.0, "p") == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            require_probability(1.01, "p")
        with pytest.raises(ValueError):
            require_probability(-0.01, "p")

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_identity_on_valid(self, value):
        assert require_probability(value, "p") == value


class TestRequireFraction:
    def test_rejects_bounds(self):
        with pytest.raises(ValueError):
            require_fraction(0.0, "f")
        with pytest.raises(ValueError):
            require_fraction(1.0, "f")

    def test_accepts_interior(self):
        assert require_fraction(0.5, "f") == 0.5


class TestBoundaryConventions:
    """The open-(0,1) vs closed-[0,1] contract the module documents."""

    @pytest.mark.parametrize("endpoint", [0.0, 1.0])
    def test_probability_accepts_the_endpoint_fraction_rejects_it(
        self, endpoint
    ):
        assert require_probability(endpoint, "p") == endpoint
        with pytest.raises(ValueError, match=r"\(0, 1\)"):
            require_fraction(endpoint, "f")

    def test_fraction_accepts_values_within_atol_of_the_endpoints(self):
        # Strictly inside (0, 1), even though closer to the endpoint
        # than METRIC_ATOL — the helper applies no tolerance of its own.
        near_zero = METRIC_ATOL / 2
        near_one = 1.0 - METRIC_ATOL / 2
        assert require_fraction(near_zero, "f") == near_zero
        assert require_fraction(near_one, "f") == near_one

    def test_probability_rejects_values_just_outside_despite_atol(self):
        with pytest.raises(ValueError):
            require_probability(1.0 + 1e-12, "p")
        with pytest.raises(ValueError):
            require_probability(-1e-12, "p")

    def test_negative_zero_counts_as_the_zero_endpoint(self):
        assert require_probability(-0.0, "p") == 0.0
        with pytest.raises(ValueError):
            require_fraction(-0.0, "f")


class TestRequireInRange:
    def test_inclusive(self):
        assert require_in_range(5, "x", 5, 10) == 5.0
        assert require_in_range(10, "x", 5, 10) == 10.0

    def test_exclusive(self):
        with pytest.raises(ValueError):
            require_in_range(5, "x", 5, 10, inclusive=False)
        assert require_in_range(7, "x", 5, 10, inclusive=False) == 7.0

    def test_error_message_names_parameter(self):
        with pytest.raises(ValueError, match="pressure"):
            require_in_range(0, "pressure", 1, 2)
