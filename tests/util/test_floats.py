"""Property tests for the tolerance-aware float helpers.

The helpers back every metric comparison in the pipeline, so their
algebra is pinned down property-style: symmetry, reflexivity,
tolerance monotonicity, agreement between the three helpers, and NaN
behaviour (always false, never raising).
"""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.util.floats import METRIC_ATOL, at_most, is_zero, isclose

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
tolerances = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
wider = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestIsclose:
    @given(finite, finite, tolerances)
    def test_symmetric(self, a, b, atol):
        assert isclose(a, b, atol=atol) == isclose(b, a, atol=atol)

    @given(finite)
    def test_reflexive(self, a):
        assert isclose(a, a)
        assert isclose(a, a, atol=0.0)

    @given(finite, finite, tolerances, wider)
    def test_monotone_in_tolerance(self, a, b, atol, extra):
        if isclose(a, b, atol=atol):
            assert isclose(a, b, atol=atol + extra)

    @given(finite, finite)
    def test_agrees_with_the_absolute_difference(self, a, b):
        assert isclose(a, b) == (abs(a - b) <= METRIC_ATOL)

    @given(finite)
    def test_nan_is_never_close(self, a):
        assert not isclose(math.nan, a)
        assert not isclose(a, math.nan)
        assert not isclose(math.nan, math.nan)


class TestIsZero:
    @given(finite, tolerances)
    def test_matches_isclose_to_zero(self, value, atol):
        assert is_zero(value, atol=atol) == isclose(value, 0.0, atol=atol)

    @given(finite, tolerances)
    def test_sign_symmetric(self, value, atol):
        assert is_zero(value, atol=atol) == is_zero(-value, atol=atol)

    @given(finite, tolerances, wider)
    def test_monotone_in_tolerance(self, value, atol, extra):
        if is_zero(value, atol=atol):
            assert is_zero(value, atol=atol + extra)

    def test_nan_is_not_zero(self):
        assert not is_zero(math.nan)


class TestAtMost:
    @given(finite, finite)
    def test_true_ordering_always_passes(self, a, b):
        low, high = min(a, b), max(a, b)
        assert at_most(low, high)

    @given(finite, finite, tolerances)
    def test_total_in_either_direction(self, a, b, atol):
        assert at_most(a, b, atol=atol) or at_most(b, a, atol=atol)

    @given(finite, finite, tolerances, wider)
    def test_monotone_in_tolerance(self, value, limit, atol, extra):
        if at_most(value, limit, atol=atol):
            assert at_most(value, limit, atol=atol + extra)

    @given(finite, finite, tolerances)
    def test_isclose_implies_at_most_both_ways(self, a, b, atol):
        if isclose(a, b, atol=atol):
            assert at_most(a, b, atol=atol)
            assert at_most(b, a, atol=atol)

    @given(finite)
    def test_nan_never_satisfies_a_budget(self, limit):
        assert not at_most(math.nan, limit)
        assert not at_most(limit, math.nan)
