"""Tests for seeded randomness plumbing."""

import numpy as np

from repro.util.rng import SeedSequenceFactory, derive_rng


class TestDeriveRng:
    def test_none_gives_generator(self):
        assert isinstance(derive_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = derive_rng(42).random(5)
        b = derive_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(derive_rng(1).random(5), derive_rng(2).random(5))

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert derive_rng(generator) is generator


class TestSeedSequenceFactory:
    def test_same_label_same_stream(self):
        factory = SeedSequenceFactory(7)
        a = factory.generator("app-0").random(8)
        b = SeedSequenceFactory(7).generator("app-0").random(8)
        assert np.array_equal(a, b)

    def test_distinct_labels_distinct_streams(self):
        factory = SeedSequenceFactory(7)
        a = factory.generator("app-0").random(8)
        b = factory.generator("app-1").random(8)
        assert not np.array_equal(a, b)

    def test_label_paths(self):
        factory = SeedSequenceFactory(7)
        a = factory.generator("workload", "x").random(4)
        b = factory.generator("workload", "y").random(4)
        assert not np.array_equal(a, b)

    def test_int_labels_accepted(self):
        factory = SeedSequenceFactory(3)
        assert isinstance(factory.generator(5), np.random.Generator)

    def test_generators_batch(self):
        factory = SeedSequenceFactory(1)
        generators = factory.generators(["a", "b", "c"])
        assert len(generators) == 3

    def test_different_roots_differ(self):
        a = SeedSequenceFactory(1).generator("x").random(4)
        b = SeedSequenceFactory(2).generator("x").random(4)
        assert not np.array_equal(a, b)
