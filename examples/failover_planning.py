"""Failover planning: can the pool ride out a server failure?

The R-Opus answer to "do we need a spare server?" (Section VI-C): run
normal mode under strict QoS, then test every single-server failure with
the *relaxed* failure-mode QoS on the surviving servers. If every
failure is absorbable, the pool needs no spare — applications run
slightly degraded until the server is repaired.

Run with::

    python examples/failover_planning.py [--theta 0.6]
"""

import argparse

from repro import (
    GeneticSearchConfig,
    PoolCommitments,
    QoSPolicy,
    ROpus,
    ResourcePool,
    case_study_ensemble,
    case_study_qos,
    homogeneous_servers,
)
from repro.exceptions import InvariantError


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--theta", type=float, default=0.6)
    parser.add_argument("--weeks", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2006)
    args = parser.parse_args()

    demands = case_study_ensemble(seed=args.seed, weeks=args.weeks)
    framework = ROpus(
        PoolCommitments.of(theta=args.theta, deadline_minutes=60),
        ResourcePool(homogeneous_servers(14, cpus=16)),
        search_config=GeneticSearchConfig(seed=1),
    )
    policy = QoSPolicy(
        # Normal mode: no degradation tolerated.
        normal=case_study_qos(m_degr_percent=0),
        # Failure mode: 3% of measurements may degrade, but never for
        # more than 30 contiguous minutes.
        failure=case_study_qos(m_degr_percent=3, t_degr_minutes=30),
    )

    print("Consolidating under strict normal-mode QoS...")
    plan = framework.plan(demands, policy, relax_all_on_failure=True)
    print(
        f"normal mode: {plan.servers_used} servers, "
        f"C_requ={plan.consolidation.sum_required:.0f} CPUs\n"
    )

    report = plan.failure_report
    if report is None:
        raise InvariantError(
            "plan(relax_all_on_failure=True) must attach a failure report"
        )
    print("Single-failure what-ifs (relaxed failure-mode QoS):")
    for case in report.cases:
        if case.feasible:
            if case.result is None:
                raise InvariantError(
                    f"feasible case {case.label} carries no result"
                )
            print(
                f"  lose {case.label}: OK on "
                f"{case.servers_used} surviving servers "
                f"(displaced: {', '.join(case.affected_workloads)})"
            )
        else:
            print(f"  lose {case.label}: NOT ABSORBABLE")

    print()
    if report.spare_server_needed:
        print(
            "Verdict: at least one failure cannot be absorbed — budget a "
            "spare server (or relax the failure-mode QoS further)."
        )
    else:
        print(
            "Verdict: no spare server needed. Any single failure is "
            "absorbed by the survivors at failure-mode QoS until repair."
        )


if __name__ == "__main__":
    main()
