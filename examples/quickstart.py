"""Quickstart: plan capacity for a handful of workloads.

Builds six synthetic application workloads, declares one QoS policy,
and runs the full R-Opus pipeline: QoS translation onto two classes of
service, consolidation onto a pool of 16-way servers, and single-failure
what-if planning.

Run with::

    python examples/quickstart.py
"""

from repro import (
    GeneticSearchConfig,
    PoolCommitments,
    QoSPolicy,
    ROpus,
    ResourcePool,
    WorkloadGenerator,
    WorkloadSpec,
    TraceCalendar,
    case_study_qos,
    homogeneous_servers,
)


def main() -> None:
    # --- 1. Workload demands: two weeks of 5-minute CPU observations.
    calendar = TraceCalendar(weeks=2, slot_minutes=5)
    generator = WorkloadGenerator(seed=42)
    specs = [
        WorkloadSpec(name="web-frontend", peak_cpus=3.0, noise_sigma=0.3),
        WorkloadSpec(name="order-entry", peak_cpus=4.0, spike_rate_per_week=3.0,
                     spike_magnitude=2.5, ceiling_cpus=7.0),
        WorkloadSpec(name="reporting", peak_cpus=2.0, noise_sigma=0.4),
        WorkloadSpec(name="search", peak_cpus=2.5, spike_rate_per_week=1.0,
                     spike_magnitude=2.0, ceiling_cpus=6.0),
        WorkloadSpec(name="billing", peak_cpus=1.5),
        WorkloadSpec(name="auth", peak_cpus=1.0, noise_sigma=0.1),
    ]
    demands = generator.generate_many(specs, calendar)

    # --- 2. The pool: four 16-way servers, CoS2 offered at theta = 0.9.
    framework = ROpus(
        PoolCommitments.of(theta=0.9, deadline_minutes=60),
        ResourcePool(homogeneous_servers(4, cpus=16)),
        search_config=GeneticSearchConfig(seed=7),
    )

    # --- 3. QoS policy: strict in normal mode, 3% degradation for at
    # most 30 contiguous minutes while a failed server is repaired.
    policy = QoSPolicy(
        normal=case_study_qos(m_degr_percent=0),
        failure=case_study_qos(m_degr_percent=3, t_degr_minutes=30),
    )

    # --- 4. Plan.
    plan = framework.plan(demands, policy)

    print("Plan summary")
    print("------------")
    for key, value in plan.summary().items():
        print(f"  {key}: {value}")

    print("\nPer-workload translation")
    print("------------------------")
    for name, result in plan.translations.items():
        print(
            f"  {name:13} D_max={result.d_max:5.2f}  "
            f"cap={result.d_new_max:5.2f}  p={result.breakpoint:.3f}  "
            f"max alloc={result.max_allocation:5.2f} CPUs"
        )

    print("\nPlacement")
    print("---------")
    for server, names in sorted(plan.consolidation.assignment.items()):
        required = plan.consolidation.required_by_server[server]
        print(f"  {server}: required {required:5.2f} CPUs  <- {', '.join(names)}")

    if plan.failure_report is not None:
        print("\nFailure what-ifs")
        print("----------------")
        for case in plan.failure_report.cases:
            status = "absorbable" if case.feasible else "NEEDS SPARE"
            print(
                f"  lose {case.label}: {status} "
                f"({len(case.affected_workloads)} workloads displaced)"
            )
        need = "yes" if plan.failure_report.spare_server_needed else "no"
        print(f"  spare server needed: {need}")


if __name__ == "__main__":
    main()
