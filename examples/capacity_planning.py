"""Capacity planning study: the paper's Table I on synthetic traces.

Reproduces the case-study sweep over M_degr, theta, and T_degr for the
26-application ensemble and prints the resulting Table I-style rows:
how many 16-way servers the consolidation needs, the summed required
capacity (C_requ) and the summed per-application peak allocations
(C_peak) for each combination.

Run with::

    python examples/capacity_planning.py [--weeks 4] [--seed 2006]
"""

import argparse

from repro import (
    GeneticSearchConfig,
    PoolCommitments,
    QoSPolicy,
    ROpus,
    ResourcePool,
    case_study_ensemble,
    case_study_qos,
    homogeneous_servers,
)
from repro.metrics.capacity import capacity_case
from repro.metrics.report import render_capacity_table

CASES = [
    ("1", 0.0, 0.60, None),
    ("2", 3.0, 0.60, 30.0),
    ("3", 3.0, 0.60, None),
    ("4", 0.0, 0.95, None),
    ("5", 3.0, 0.95, 30.0),
    ("6", 3.0, 0.95, None),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--weeks", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2006)
    args = parser.parse_args()

    demands = case_study_ensemble(seed=args.seed, weeks=args.weeks)
    print(f"Generated {len(demands)} workloads, {len(demands[0])} observations each.\n")

    rows = []
    for label, m_degr, theta, t_degr in CASES:
        framework = ROpus(
            PoolCommitments.of(theta=theta, deadline_minutes=60),
            ResourcePool(homogeneous_servers(14, cpus=16)),
            search_config=GeneticSearchConfig(seed=1),
        )
        policy = QoSPolicy(
            normal=case_study_qos(m_degr_percent=m_degr, t_degr_minutes=t_degr)
        )
        plan = framework.plan(demands, policy, plan_failures=False)
        rows.append(capacity_case(label, m_degr, theta, t_degr, plan.consolidation))
        result = plan.consolidation
        print(
            f"case {label}: M_degr={m_degr:g}% theta={theta} "
            f"T_degr={t_degr or 'none'} -> {result.servers_used} servers, "
            f"C_requ={result.sum_required:.0f}, "
            f"C_peak={result.sum_peak_allocations:.0f}"
        )

    print()
    print(
        render_capacity_table(
            rows, title="Impact of M_degr, T_degr and theta on resource sharing"
        )
    )
    print(
        "\nPaper (Table I, proprietary traces): 8/7/7/8/7/7 servers, "
        "C_requ 123/106/104/118/103/104, C_peak 218/188/166/218/167/166."
    )


if __name__ == "__main__":
    main()
