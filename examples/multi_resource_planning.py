"""Multi-attribute capacity planning: CPU and memory jointly.

The paper's future-work extension (Section IX): placement that accounts
for several capacity attributes at once. Each workload brings a CPU
demand trace *and* a memory demand trace; a server hosts a workload set
only if the required capacity of **every** attribute fits within that
attribute's limit.

The example shows memory becoming the binding resource: by CPU alone the
workloads consolidate onto two servers, but their memory footprints
force a third.

Run with::

    python examples/multi_resource_planning.py
"""

import numpy as np

from repro import (
    CoSCommitment,
    GeneticSearchConfig,
    PoolCommitments,
    QoSTranslator,
    ResourcePool,
    ServerSpec,
    TraceCalendar,
    WorkloadGenerator,
    WorkloadSpec,
)
from repro.core.qos import ApplicationQoS, QoSRange, case_study_qos
from repro.placement.consolidation import Consolidator
from repro.placement.multi_attribute import MultiAttributeConsolidator
from repro.traces.trace import DemandTrace

SEARCH = GeneticSearchConfig(seed=3)


def make_memory_trace(cpu_demand: DemandTrace, resident_gb: float) -> DemandTrace:
    """Synthesize a memory trace correlated with the CPU trace.

    Memory behaves differently from CPU: a large resident set persists
    regardless of load, plus a modest load-proportional component
    (caches, sessions).
    """
    cpu = cpu_demand.values
    peak = cpu.max() if cpu.max() > 0 else 1.0
    values = resident_gb * (0.8 + 0.2 * cpu / peak)
    return DemandTrace(cpu_demand.name, values, cpu_demand.calendar, "mem")


def main() -> None:
    calendar = TraceCalendar(weeks=1, slot_minutes=5)
    generator = WorkloadGenerator(seed=23)
    cpu_specs = [
        WorkloadSpec(name=f"svc-{i}", peak_cpus=1.0 + 0.4 * i, noise_sigma=0.25)
        for i in range(6)
    ]
    cpu_demands = generator.generate_many(cpu_specs, calendar)
    # Memory-hungry services: 20-45 GB resident each.
    memory_demands = [
        make_memory_trace(demand, resident_gb=20.0 + 5.0 * index)
        for index, demand in enumerate(cpu_demands)
    ]

    # Translate each attribute under its own QoS. Memory tolerates a much
    # narrower utilization band (paging is catastrophic), so its burst
    # factor is small.
    cpu_translator = QoSTranslator(PoolCommitments.of(theta=0.9))
    mem_translator = QoSTranslator(PoolCommitments.of(theta=0.99))
    cpu_qos = case_study_qos(m_degr_percent=3)
    mem_qos = ApplicationQoS(QoSRange(0.8, 0.9))

    pairs_by_attribute = {
        "cpu": [cpu_translator.translate(d, cpu_qos).pair for d in cpu_demands],
        "mem": [mem_translator.translate(d, mem_qos).pair for d in memory_demands],
    }

    # Servers: 16 CPUs, 96 GB each.
    pool = ResourcePool(
        [ServerSpec(f"server-{i:02d}", cpus=16, attributes={"mem": 96.0})
         for i in range(6)]
    )

    print("CPU-only consolidation (the paper's evaluation scope):")
    cpu_only = Consolidator(
        pool, CoSCommitment(theta=0.9), config=SEARCH
    ).consolidate(pairs_by_attribute["cpu"])
    for server, names in sorted(cpu_only.assignment.items()):
        print(f"  {server}: {', '.join(names)}")
    print(f"  -> {cpu_only.servers_used} servers\n")

    print("Joint CPU+memory consolidation (the Section IX extension):")
    joint = MultiAttributeConsolidator(
        pool,
        {"cpu": CoSCommitment(theta=0.9), "mem": CoSCommitment(theta=0.99)},
        config=SEARCH,
    ).consolidate(pairs_by_attribute)
    for server, names in sorted(joint.assignment.items()):
        mem_total = sum(
            pairs_by_attribute["mem"][
                [d.name for d in cpu_demands].index(name)
            ].peak_allocation()
            for name in names
        )
        print(f"  {server}: {', '.join(names)}  (peak mem alloc {mem_total:.0f} GB)")
    print(f"  -> {joint.servers_used} servers")

    extra = joint.servers_used - cpu_only.servers_used
    if extra > 0:
        print(
            f"\nMemory is the binding attribute here: accounting for it "
            f"costs {extra} extra server(s) that a CPU-only plan would "
            "have oversubscribed."
        )
    else:
        print("\nCPU remains the binding attribute for these workloads.")


if __name__ == "__main__":
    main()
