"""A tour of the QoS translation: how demand becomes per-CoS allocation.

Walks one bursty workload through the three steps of Section V:

1. the breakpoint ``p`` splitting demand between guaranteed CoS1 and
   multiplexed CoS2, as a function of the pool's theta;
2. the M_degr percentile relaxation and its 1 - U_high/U_degr bound;
3. the T_degr time-limited-degradation enforcement, showing how tighter
   contiguity limits claw back the capacity saving — and how a higher
   theta preserves more of it.

Run with::

    python examples/qos_translation_tour.py
"""

from repro import (
    PoolCommitments,
    QoSTranslator,
    TraceCalendar,
    WorkloadGenerator,
    WorkloadSpec,
    breakpoint_fraction,
    case_study_qos,
    max_cap_reduction_bound,
)

U_LOW, U_HIGH, U_DEGR = 0.5, 0.66, 0.9


def make_workload():
    calendar = TraceCalendar(weeks=2, slot_minutes=5)
    generator = WorkloadGenerator(seed=11)
    spec = WorkloadSpec(
        name="bursty-app",
        peak_cpus=2.0,
        noise_sigma=0.3,
        spike_rate_per_week=4.0,
        spike_magnitude=3.0,
        # Long spikes (mean ~2 hours) so the T_degr contiguity limit
        # actually binds in step 3.
        spike_duration_slots=24.0,
        ceiling_cpus=12.0,
    )
    return generator.generate(spec, calendar)


def main() -> None:
    demand = make_workload()
    print(
        f"Workload {demand.name!r}: peak={demand.peak():.2f} CPUs, "
        f"mean={demand.mean():.2f}, P97={demand.percentile(97):.2f}\n"
    )

    # --- Step 1: the breakpoint p as a function of theta (formula 1).
    print("Step 1 - breakpoint p = (U_low/U_high - theta) / (1 - theta):")
    for theta in (0.5, 0.6, 0.7, 0.7576, 0.8, 0.95):
        p = breakpoint_fraction(U_LOW, U_HIGH, theta)
        note = "all demand rides CoS2" if p == 0 else f"{p:.1%} of peak in CoS1"
        print(f"  theta={theta:6.4f}: p={p:.4f}  ({note})")

    # --- Step 2: the M_degr relaxation.
    bound = max_cap_reduction_bound(U_HIGH, U_DEGR)
    print(
        f"\nStep 2 - M_degr=3% relaxation "
        f"(upper bound 1 - U_high/U_degr = {bound:.1%}):"
    )
    translator = QoSTranslator(PoolCommitments.of(theta=0.6))
    strict = translator.translate(demand, case_study_qos(m_degr_percent=0))
    relaxed = translator.translate(demand, case_study_qos(m_degr_percent=3))
    print(f"  strict  (M_degr=0%): cap={strict.d_new_max:.2f}, "
          f"max alloc={strict.max_allocation:.2f} CPUs")
    print(f"  relaxed (M_degr=3%): cap={relaxed.d_new_max:.2f}, "
          f"max alloc={relaxed.max_allocation:.2f} CPUs "
          f"(reduction {relaxed.cap_reduction:.1%})")

    # --- Step 3: T_degr enforcement across thetas.
    print("\nStep 3 - T_degr enforcement (M_degr=3%):")
    header = f"  {'theta':>6} {'T_degr':>8} {'cap':>6} {'reduction':>10} {'worst run':>10}"
    print(header)
    for theta in (0.6, 0.95):
        translator = QoSTranslator(PoolCommitments.of(theta=theta))
        for t_degr in (None, 120.0, 60.0, 30.0):
            result = translator.translate(
                demand, case_study_qos(m_degr_percent=3, t_degr_minutes=t_degr)
            )
            run_minutes = (
                result.longest_degraded_run_slots * demand.calendar.slot_minutes
            )
            label = "none" if t_degr is None else f"{t_degr:.0f}min"
            print(
                f"  {theta:>6} {label:>8} {result.d_new_max:6.2f} "
                f"{result.cap_reduction:>9.1%} {run_minutes:>8.0f}min"
            )
    print(
        "\nNote how theta=0.95 keeps more of the reduction under tight "
        "T_degr: with p=0, promoting one observation costs only "
        "U_low/(U_high*theta) of its demand."
    )


if __name__ == "__main__":
    main()
