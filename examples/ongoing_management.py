"""Ongoing capacity management across the paper's Figure 1 timescales.

One planning run answers "how do we place the workloads today?". A pool
is operated as a loop:

* medium term — re-plan on a sliding window of recent history, watching
  how many workloads each re-plan would migrate;
* long term — extrapolate demand growth to find the procurement
  deadline: the horizon at which the current pool stops sufficing.

Run with::

    python examples/ongoing_management.py
"""

from repro import (
    GeneticSearchConfig,
    PoolCommitments,
    QoSPolicy,
    ROpus,
    ResourcePool,
    case_study_ensemble,
    case_study_qos,
    homogeneous_servers,
)
from repro.core.manager import CapacityManager
from repro.workloads.forecast import estimate_weekly_growth


def main() -> None:
    demands = case_study_ensemble(seed=2006, weeks=4)
    framework = ROpus(
        PoolCommitments.of(theta=0.9),
        ResourcePool(homogeneous_servers(14, cpus=16)),
        search_config=GeneticSearchConfig(seed=5),
    )
    manager = CapacityManager(framework)
    policy = QoSPolicy(normal=case_study_qos(m_degr_percent=3))

    # --- Medium term: weekly re-planning on a 2-week window.
    print("Medium term: sliding 2-week window, re-planned weekly")
    print("----------------------------------------------------")
    rolling = manager.rolling_plan(
        demands, policy, window_weeks=2, step_weeks=1
    )
    for step in rolling.steps:
        print(
            f"  weeks {step.start_week}-{step.end_week}: "
            f"{step.result.servers_used} servers, "
            f"C_requ={step.result.sum_required:.0f}, "
            f"{step.n_migrations} migrations"
        )
    print(
        f"  total migrations across "
        f"{len(rolling.steps) - 1} re-plans: {rolling.total_migrations}\n"
    )

    # --- Long term: growth-driven outlook.
    print("Long term: capacity outlook under fitted demand growth")
    print("------------------------------------------------------")
    fitted = {
        demand.name: estimate_weekly_growth(demand).weekly_growth
        for demand in demands[:3]
    }
    for name, growth in fitted.items():
        print(f"  fitted weekly growth for {name}: {growth:.4f}")
    # The synthetic ensemble is stationary; assume 5%/week organic growth
    # (the kind of figure a business unit would communicate).
    growth = {demand.name: 1.05 for demand in demands}
    outlook = manager.capacity_outlook(
        demands, policy, horizon_weeks=24, step_weeks=4, growth_by_name=growth
    )
    for step in outlook.steps:
        if step.feasible:
            print(
                f"  +{step.weeks_ahead:2d} weeks: {step.servers_used} "
                f"servers, C_requ={step.sum_required:.0f}"
            )
        else:
            print(f"  +{step.weeks_ahead:2d} weeks: POOL EXHAUSTED")
    if outlook.weeks_until_exhausted is not None:
        print(
            f"\n  procurement must deliver before week "
            f"{outlook.weeks_until_exhausted}."
        )
    else:
        print("\n  the pool rides out the studied horizon.")


if __name__ == "__main__":
    main()
