"""Scalar unit markers for the three domains the QoS math mixes.

R-Opus formulas combine quantities that Python's ``float`` cannot tell
apart: utilization *fractions* in ``[0, 1]`` (``U_low``, ``U_high``,
``theta``), *percentages* in ``[0, 100]`` (``M``, ``M_degr``), and slot
*counts* (``s``, ``T_degr``). A single missed ``/100`` conversion
silently corrupts every downstream compliance number, so the unit of a
scalar is part of its type here:

* :data:`Fraction01` — a dimensionless fraction in ``[0, 1]``
  (utilizations of allocation, degraded/acceptable fractions,
  breakpoint ``p``);
* :data:`Percent` — the same quantity scaled by 100, in ``[0, 100]``
  (``M``, ``M_degr``; convert with ``/ 100.0`` and ``* 100.0`` only);
* :data:`Probability` — a chance in ``[0, 1]`` (``theta`` access
  probabilities, failure probabilities);
* :data:`Slots` — a non-negative count of measurement slots
  (``T_degr`` expressed in slots, run lengths);
* :data:`CpuShares` — an absolute resource amount in CPU shares
  (demands, allocations, capacities; non-negative, unbounded).

The markers are :data:`typing.Annotated` aliases, so they are ``float``
(or ``int``) at runtime and invisible to normal code, while
``repro.analysis``'s dataflow rules (ROP008–ROP011) read them from the
AST to prove unit consistency across the translation pipeline. Keep
this module dependency-free (stdlib only): the linter imports it to
share one definition of each unit's name, range, and conversions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Annotated

__all__ = [
    "CPU_SHARES",
    "CpuShares",
    "FRACTION_01",
    "Fraction01",
    "PERCENT",
    "Percent",
    "PROBABILITY",
    "Probability",
    "SLOTS",
    "Slots",
    "UNITS_BY_NAME",
    "VALIDATOR_UNITS",
    "Unit",
    "unit_for_annotation",
]


@dataclass(frozen=True)
class Unit:
    """Metadata for one scalar unit: its name, domain, and conversions.

    ``low``/``high`` bound the unit's declared domain;
    ``low_inclusive``/``high_inclusive`` record whether each bound
    belongs to it. ``scale_to`` names units reachable by a pure
    rescaling, mapped to the multiplicative factor (``Percent`` →
    ``Fraction01`` is ``1/100``); the dataflow rules treat ``x / 100``
    and ``x * 100`` as sanctioned conversions precisely because of
    these entries.

    ``dimension`` groups units measuring the same underlying quantity;
    ``scale`` is the multiplier relative to that dimension's canonical
    unit (``Percent`` is the ``ratio`` dimension at scale 100). Two
    units mix safely in additive arithmetic or comparisons only when
    both dimension *and* scale agree (``Fraction01`` with
    ``Probability``); same dimension at different scales (``Percent``
    with ``Fraction01``) demands an explicit conversion first.
    """

    name: str
    symbol: str
    low: float
    high: float
    low_inclusive: bool = True
    high_inclusive: bool = True
    dimension: str = "ratio"
    scale: float = 1.0
    scale_to: tuple[tuple[str, float], ...] = ()

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the unit's declared domain."""
        if math.isnan(value):
            return False
        above = value >= self.low if self.low_inclusive else value > self.low
        below = value <= self.high if self.high_inclusive else value < self.high
        return above and below

    @property
    def bounds(self) -> str:
        """The domain in interval notation, e.g. ``[0, 1]``."""
        open_bracket = "[" if self.low_inclusive else "("
        close_bracket = "]" if self.high_inclusive else ")"
        return f"{open_bracket}{self.low:g}, {self.high:g}{close_bracket}"

    def mixes_with(self, other: "Unit") -> bool:
        """Whether values of the two units may meet in ``+``/``-``/``<``.

        True exactly when dimension and scale both agree —
        ``Fraction01`` with ``Probability`` mixes; ``Percent`` with
        either does not (convert first).
        """
        return self.dimension == other.dimension and self.scale == other.scale

    def conversion_factor(self, other: "Unit") -> float | None:
        """The multiplier converting ``self`` to ``other``, if declared."""
        for target, factor in self.scale_to:
            if target == other.name:
                return factor
        return None


FRACTION_01 = Unit(
    name="Fraction01",
    symbol="fraction",
    low=0.0,
    high=1.0,
    scale_to=(("Percent", 100.0),),
)
PERCENT = Unit(
    name="Percent",
    symbol="%",
    low=0.0,
    high=100.0,
    scale=100.0,
    scale_to=(("Fraction01", 0.01),),
)
PROBABILITY = Unit(
    name="Probability",
    symbol="probability",
    low=0.0,
    high=1.0,
)
SLOTS = Unit(
    name="Slots",
    symbol="slots",
    low=0.0,
    high=math.inf,
    high_inclusive=False,
    dimension="slots",
)
CPU_SHARES = Unit(
    name="CpuShares",
    symbol="CPU shares",
    low=0.0,
    high=math.inf,
    high_inclusive=False,
    dimension="cpu-shares",
)

#: Dimensionless fraction in ``[0, 1]``: utilizations, ``p``, measured
#: acceptable/degraded fractions.
Fraction01 = Annotated[float, FRACTION_01]

#: Percentage in ``[0, 100]``: ``M``, ``M_degr``. Convert to a fraction
#: with ``/ 100.0`` only.
Percent = Annotated[float, PERCENT]

#: Chance in ``[0, 1]``: ``theta`` commitments, failure probabilities.
Probability = Annotated[float, PROBABILITY]

#: Non-negative count of measurement slots (``T_degr`` in slots, runs).
Slots = Annotated[int, SLOTS]

#: Absolute resource amount in CPU shares (demands, allocations).
CpuShares = Annotated[float, CPU_SHARES]

#: Every unit, keyed by marker name. The dataflow analysis resolves an
#: annotation like ``units.Percent`` to its final attribute and looks
#: the unit up here.
UNITS_BY_NAME: dict[str, Unit] = {
    unit.name: unit
    for unit in (FRACTION_01, PERCENT, PROBABILITY, SLOTS, CPU_SHARES)
}

#: Which validation helper vouches for which unit: a successful
#: ``require_fraction(x, ...)`` call proves ``x`` is a ``Fraction01``
#: (its open interval is *stricter* than the unit's closed domain),
#: ``require_probability`` proves ``Probability``, and
#: ``require_positive``/``require_non_negative`` prove the unbounded
#: non-negative units only when the annotation already says which.
VALIDATOR_UNITS: dict[str, str] = {
    "repro.util.validation.require_fraction": "Fraction01",
    "repro.util.validation.require_probability": "Probability",
}


def unit_for_annotation(name: str) -> Unit | None:
    """The unit for an annotation spelled ``name``.

    Accepts bare (``Percent``) or dotted (``repro.units.Percent``)
    spellings; anything not ending in a known marker name is not a unit
    annotation and yields ``None``.
    """
    return UNITS_BY_NAME.get(name.rsplit(".", 1)[-1])
