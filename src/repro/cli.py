"""Command-line interface: ``ropus`` / ``python -m repro``.

Subcommands
-----------
``generate``
    Write the synthetic case-study trace ensemble to CSV or JSON.
``translate``
    Run the QoS translation over an ensemble and print per-workload
    breakpoints, demand caps and capacity reductions.
``plan``
    Run the full pipeline (translate, consolidate, failure what-ifs)
    and print the plan summary.
``table1``
    Reproduce the paper's Table I sweep (M_degr x theta x T_degr).
``validate``
    Screen an ensemble for trace-quality problems.
``outlook``
    Long-term capacity outlook: when does the pool run out?  With
    ``--domains``/``--degraded``/``--spare-curve`` it reports the
    failure-tier outlook instead: domain-scoped failure sweeps and the
    spare-sizing curve for today's pool.
``lint``
    Run the AST invariant linter (:mod:`repro.analysis`) over source
    trees; same engine as ``python -m repro.analysis``.
``chaos``
    Run the planning pipeline under a seeded fault schedule (worker
    crashes, hangs, corrupted results, broadcast failures) and report
    the recovery telemetry; ``--verify`` re-runs fault-free and checks
    the two plans hash identically.  With ``--racks``/``--zones`` and
    ``--domains`` the verification also covers the domain-scoped
    failure sweeps (they contribute to the plan hash).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.runner import add_analysis_arguments, run_analysis_command
from repro.core.cos import PoolCommitments
from repro.core.framework import ROpus
from repro.core.qos import QoSPolicy, case_study_qos
from repro.core.translation import QoSTranslator
from repro.engine import (
    Checkpointer,
    ExecutionEngine,
    FaultPlan,
    ResilienceConfig,
)
from repro.placement.evaluation import KERNELS
from repro.placement.failure import FailureSweepPolicy
from repro.placement.genetic import GeneticSearchConfig
from repro.resources.pool import ResourcePool
from repro.resources.server import homogeneous_servers
from repro.traces.io import load_traces_csv, save_traces_csv, save_traces_json
from repro.util.tables import format_table
from repro.workloads.ensemble import case_study_ensemble


def _add_common_qos_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--theta", type=float, default=0.95,
        help="CoS2 resource access probability (default 0.95)",
    )
    parser.add_argument(
        "--m-degr", type=float, default=3.0,
        help="percent of measurements allowed degraded (default 3)",
    )
    parser.add_argument(
        "--t-degr", type=float, default=None,
        help="max contiguous degraded minutes (default none)",
    )
    parser.add_argument(
        "--traces", type=str, default=None,
        help="CSV trace file (default: built-in synthetic ensemble)",
    )
    parser.add_argument(
        "--seed", type=int, default=2006,
        help="seed for the synthetic ensemble (default 2006)",
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for fan-out stages (default: run serially)",
    )
    parser.add_argument(
        "--timings", action="store_true",
        help="print per-stage timings and counters after the run",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="stuck-worker deadline: respawn the pool and retry when no "
             "work unit completes for this long (default: no deadline)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None,
        help="retries per failing fan-out batch before degrading "
             "(default 2 when resilience is enabled)",
    )


def _add_kernel_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel", choices=KERNELS, default="batch",
        help="capacity-search kernel: 'batch' and 'fused' are "
             "bit-identical to the scalar reference ('fused' solves a "
             "whole generation in stacked float32 passes with float64 "
             "verification), 'analytic' stays within the search "
             "tolerance, 'scalar' is the paper's per-subset loop "
             "(default: batch)",
    )


def _add_topology_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--racks", type=int, default=None,
        help="spread the servers over this many racks (default: flat pool)",
    )
    parser.add_argument(
        "--zones", type=int, default=None,
        help="spread the servers over this many zones (default: flat pool)",
    )


def _add_failure_tier_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--domains", action="store_true",
        help="sweep whole-domain (rack, and zone when --zones is set) "
             "failures in addition to single servers",
    )
    parser.add_argument(
        "--degraded", type=float, default=None, metavar="FACTOR",
        help="also sweep degraded servers surviving at FACTOR of their "
             "capacity (0 < FACTOR < 1)",
    )
    parser.add_argument(
        "--spare-curve", action="store_true",
        help="search spare servers needed per failure scope and print "
             "the spares-vs-scope curve",
    )
    parser.add_argument(
        "--max-spares", type=int, default=4,
        help="spare-sizing search ceiling (default 4)",
    )


def _pool(args: argparse.Namespace) -> ResourcePool:
    return ResourcePool(
        homogeneous_servers(
            args.servers,
            cpus=args.cpus,
            racks=getattr(args, "racks", None),
            zones=getattr(args, "zones", None),
        )
    )


def _failure_policy(args: argparse.Namespace) -> FailureSweepPolicy | None:
    """Build the domain-sweep policy the failure-tier flags describe."""
    domains = getattr(args, "domains", False)
    degraded = getattr(args, "degraded", None)
    spare_curve = getattr(args, "spare_curve", False)
    if not domains and degraded is None and not spare_curve:
        return None
    scopes: list[str] = ["rack"]
    if getattr(args, "zones", None):
        scopes.append("zone")
    return FailureSweepPolicy(
        scopes=tuple(scopes) if domains else (),
        degraded_factor=degraded,
        spare_curve=spare_curve,
        max_spares=getattr(args, "max_spares", 4),
        sample_seed=getattr(args, "seed", None),
    )


def _engine(
    args: argparse.Namespace, fault_plan: FaultPlan | None = None
) -> ExecutionEngine:
    """Build the engine the flags describe.

    The plain backends are the default; any resilience knob (or an
    injected fault plan) switches to the fault-tolerant executor.
    """
    workers = getattr(args, "workers", None)
    task_timeout = getattr(args, "task_timeout", None)
    max_retries = getattr(args, "max_retries", None)
    if task_timeout is None and max_retries is None and fault_plan is None:
        return ExecutionEngine.with_workers(workers)
    config = ResilienceConfig(
        max_retries=max_retries if max_retries is not None else 2,
        task_timeout_seconds=task_timeout,
        fault_plan=fault_plan,
    )
    return ExecutionEngine.resilient(workers, config)


def _checkpointer(args: argparse.Namespace) -> Checkpointer | None:
    directory = getattr(args, "checkpoint", None)
    return Checkpointer(directory) if directory else None


def _shards_value(text: str) -> "int | str":
    """Parse the ``--shards`` knob: ``auto``, ``off``, or a shard count."""
    if text in ("auto", "off"):
        return text
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'auto', 'off', or an integer, got {text!r}"
        ) from None


def _print_timings(engine: ExecutionEngine) -> None:
    instrumentation = engine.instrumentation
    stage_rows = [
        [stats.name, stats.calls, stats.total_seconds, stats.mean_seconds]
        for stats in instrumentation.stage_stats()
    ]
    if stage_rows:
        print()
        print(
            format_table(
                ["stage", "calls", "total s", "mean s"],
                stage_rows,
                title="Stage timings",
            )
        )
    counter_rows = [
        [name, value]
        for name, value in sorted(instrumentation.counters().items())
    ]
    if counter_rows:
        print()
        print(format_table(["counter", "value"], counter_rows, title="Counters"))


def _load_demands(args: argparse.Namespace):
    if args.traces:
        return load_traces_csv(args.traces)
    return case_study_ensemble(seed=args.seed)


def _qos(args: argparse.Namespace):
    return case_study_qos(
        m_degr_percent=args.m_degr, t_degr_minutes=args.t_degr
    )


def cmd_generate(args: argparse.Namespace) -> int:
    demands = case_study_ensemble(seed=args.seed, weeks=args.weeks)
    if args.output.endswith(".json"):
        save_traces_json(demands, args.output)
    else:
        save_traces_csv(demands, args.output)
    print(
        f"wrote {len(demands)} traces x {len(demands[0])} observations "
        f"to {args.output}"
    )
    return 0


def cmd_translate(args: argparse.Namespace) -> int:
    demands = _load_demands(args)
    engine = _engine(args)
    translator = QoSTranslator(PoolCommitments.of(theta=args.theta), engine=engine)
    qos = _qos(args)
    results = translator.translate_many(demands, qos)
    rows = []
    for demand in demands:
        result = results[demand.name]
        rows.append(
            [
                demand.name,
                result.d_max,
                result.d_new_max,
                100.0 * result.cap_reduction,
                result.breakpoint,
                100.0 * result.degraded_fraction,
            ]
        )
    print(
        format_table(
            ["workload", "D_max", "D_new_max", "reduction %", "p", "degraded %"],
            rows,
            title=(
                f"QoS translation (theta={args.theta}, M_degr={args.m_degr}%, "
                f"T_degr={args.t_degr or 'none'})"
            ),
        )
    )
    if args.timings:
        _print_timings(engine)
    engine.close()
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    demands = _load_demands(args)
    engine = _engine(args)
    framework = ROpus(
        PoolCommitments.of(theta=args.theta),
        _pool(args),
        search_config=GeneticSearchConfig(seed=args.seed),
        engine=engine,
        checkpointer=_checkpointer(args),
        sharding=args.shards,
        cluster_seed=args.cluster_seed,
        refine_rounds=args.refine_rounds,
        kernel=args.kernel,
        failure_policy=_failure_policy(args),
    )
    policy = QoSPolicy(
        normal=_qos(args),
        failure=case_study_qos(m_degr_percent=3.0, t_degr_minutes=30.0),
    )
    plan = framework.plan(demands, policy, plan_failures=not args.no_failures)
    for key, value in plan.summary().items():
        if key == "stage_timings":
            continue
        print(f"{key}: {value}")
    print(f"plan_hash: {plan.plan_hash()}")
    print()
    rows = [
        [server, ", ".join(names), plan.consolidation.required_by_server[server]]
        for server, names in sorted(plan.consolidation.assignment.items())
    ]
    print(format_table(["server", "workloads", "required CPU"], rows))
    if args.timings:
        _print_timings(engine)
    engine.close()
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.metrics.capacity import capacity_case
    from repro.metrics.report import render_capacity_table

    demands = _load_demands(args)
    engine = _engine(args)
    cases = [
        ("1", 0.0, 0.60, None),
        ("2", 3.0, 0.60, 30.0),
        ("3", 3.0, 0.60, None),
        ("4", 0.0, 0.95, None),
        ("5", 3.0, 0.95, 30.0),
        ("6", 3.0, 0.95, None),
    ]
    rows = []
    for label, m_degr, theta, t_degr in cases:
        framework = ROpus(
            PoolCommitments.of(theta=theta, deadline_minutes=60),
            ResourcePool(homogeneous_servers(args.servers, cpus=args.cpus)),
            search_config=GeneticSearchConfig(seed=args.seed),
            engine=engine,
        )
        policy = QoSPolicy(
            normal=case_study_qos(m_degr_percent=m_degr, t_degr_minutes=t_degr)
        )
        plan = framework.plan(demands, policy, plan_failures=False)
        rows.append(
            capacity_case(label, m_degr, theta, t_degr, plan.consolidation)
        )
    print(
        render_capacity_table(
            rows,
            title="Impact of M_degr, T_degr and theta on resource sharing",
        )
    )
    if args.timings:
        _print_timings(engine)
    engine.close()
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.traces.validation import validate_ensemble

    if args.repair and args.traces:
        from repro.traces.io import load_traces_csv_repaired

        demands, repair_reports = load_traces_csv_repaired(args.traces)
        repaired = [
            report
            for _, report in sorted(repair_reports.items())
            if not report.clean
        ]
        for report in repaired:
            print(report.describe())
        print(
            f"repaired {sum(report.total for report in repaired)} "
            f"observations across {len(repaired)} traces"
        )
    else:
        demands = _load_demands(args)
    reports = validate_ensemble(demands)
    dirty = 0
    for name, report in sorted(reports.items()):
        if report.clean:
            continue
        dirty += 1
        for issue in report.issues:
            location = (
                f" [slots {issue.start}:{issue.stop}]"
                if issue.start is not None
                else ""
            )
            print(f"{name}: {issue.kind.value}: {issue.message}{location}")
    print(f"{len(reports) - dirty}/{len(reports)} traces clean")
    return 0 if dirty == 0 else 1


def cmd_lint(args: argparse.Namespace) -> int:
    return run_analysis_command(args)


def _chaos_plan(
    args: argparse.Namespace, fault_plan: FaultPlan | None
) -> tuple[object, ExecutionEngine]:
    """One full planning run under the given (possibly empty) faults."""
    demands = _load_demands(args)
    engine = _engine(args, fault_plan=fault_plan)
    framework = ROpus(
        PoolCommitments.of(theta=args.theta),
        _pool(args),
        search_config=GeneticSearchConfig(seed=args.seed),
        engine=engine,
        kernel=args.kernel,
        failure_policy=_failure_policy(args),
    )
    policy = QoSPolicy(
        normal=_qos(args),
        failure=case_study_qos(m_degr_percent=3.0, t_degr_minutes=30.0),
    )
    plan = framework.plan(
        demands, policy, plan_failures=not args.no_failures
    )
    return plan, engine


def cmd_chaos(args: argparse.Namespace) -> int:
    """Plan under a seeded fault schedule; optionally verify the result.

    The fault schedule is fully determined by ``--chaos-seed`` and the
    rates, so a chaos run is exactly reproducible. With ``--verify``
    the same planning problem is solved again fault-free and the two
    plans must hash identically — recovery is only allowed to cost
    time, never to change the answer.
    """
    fault_plan = FaultPlan.seeded(
        args.chaos_seed,
        horizon=args.fault_horizon,
        crash_rate=args.crash_rate,
        hang_rate=args.hang_rate,
        corrupt_rate=args.corrupt_rate,
        broadcast_rate=args.broadcast_rate,
        hang_seconds=args.hang_seconds,
    )
    scheduled = {
        kind.value: len(fault_plan.occurrences(kind))
        for kind in fault_plan.schedule
        if fault_plan.occurrences(kind)
    }
    print(f"fault schedule (seed {args.chaos_seed}): {scheduled or 'empty'}")
    plan, engine = _chaos_plan(args, fault_plan)
    chaos_hash = plan.plan_hash()
    print(f"plan_hash: {chaos_hash}")
    print(f"servers_used: {plan.servers_used}")
    for name, value in sorted(plan.resilience_summary().items()):
        print(f"{name}: {value}")
    if args.timings:
        _print_timings(engine)
    engine.close()
    if not args.verify:
        return 0
    control, control_engine = _chaos_plan(args, None)
    control_engine.close()
    control_hash = control.plan_hash()
    if control_hash == chaos_hash:
        print("verify: OK — chaos and fault-free plans hash identically")
        return 0
    print(
        "verify: FAIL — chaos plan "
        f"{chaos_hash} != fault-free plan {control_hash}"
    )
    return 1


def _print_failure_outlook(plan: object) -> None:
    """Print the domain-sweep and spare-sizing tables of a plan."""
    reports = getattr(plan, "domain_reports", None) or {}
    rows = []
    for scope, report in sorted(reports.items()):
        rows.append(
            [
                scope,
                len(report.cases),
                len(report.infeasible_cases),
                "yes" if report.all_supported else "no",
                "yes" if report.spare_server_needed else "no",
            ]
        )
    if rows:
        print(
            format_table(
                ["scope", "cases", "infeasible", "absorbed", "spare needed"],
                rows,
                title="Failure-domain outlook",
            )
        )
    curve = getattr(plan, "spare_curve", None)
    if curve is not None:
        print()
        rows = [
            [
                point.scope,
                point.infeasible_without_spares,
                point.spares_needed
                if point.spares_needed is not None
                else f"> {curve.max_spares}",
            ]
            for point in curve.points
        ]
        print(
            format_table(
                ["failure scope", "infeasible w/o spares", "spares needed"],
                rows,
                title="Spare-sizing curve",
            )
        )
        print(
            "curve monotone in scope: "
            f"{'yes' if curve.monotone_in_scope() else 'NO'}"
        )


def _failure_outlook(args: argparse.Namespace) -> int:
    """Failure-tier outlook: domain sweeps and spare sizing for today's pool."""
    demands = _load_demands(args)
    engine = _engine(args)
    framework = ROpus(
        PoolCommitments.of(theta=args.theta),
        _pool(args),
        search_config=GeneticSearchConfig(seed=args.seed),
        engine=engine,
        kernel=args.kernel,
        failure_policy=_failure_policy(args),
    )
    policy = QoSPolicy(
        normal=_qos(args),
        failure=case_study_qos(m_degr_percent=3.0, t_degr_minutes=30.0),
    )
    plan = framework.plan(demands, policy, plan_failures=True)
    print(f"plan_hash: {plan.plan_hash()}")
    print(f"servers_used: {plan.servers_used}")
    print()
    _print_failure_outlook(plan)
    if args.timings:
        _print_timings(engine)
    engine.close()
    return 0


def cmd_outlook(args: argparse.Namespace) -> int:
    from repro.core.manager import CapacityManager

    if _failure_policy(args) is not None:
        return _failure_outlook(args)
    demands = _load_demands(args)
    engine = _engine(args)
    framework = ROpus(
        PoolCommitments.of(theta=args.theta),
        _pool(args),
        search_config=GeneticSearchConfig(seed=args.seed),
        engine=engine,
        kernel=args.kernel,
    )
    manager = CapacityManager(framework)
    policy = QoSPolicy(normal=_qos(args))
    growth = None
    if args.growth is not None:
        growth = {demand.name: args.growth for demand in demands}
    outlook = manager.capacity_outlook(
        demands,
        policy,
        horizon_weeks=args.horizon,
        step_weeks=args.step,
        growth_by_name=growth,
    )
    rows = []
    for step in outlook.steps:
        rows.append(
            [
                step.weeks_ahead,
                step.feasible,
                step.servers_used if step.servers_used is not None else "-",
                step.sum_required if step.sum_required is not None else "-",
            ]
        )
    print(
        format_table(
            ["weeks ahead", "feasible", "servers", "C_requ"],
            rows,
            title="Capacity outlook",
        )
    )
    if outlook.weeks_until_exhausted is None:
        print("pool sufficient through the studied horizon")
    else:
        print(
            f"pool exhausted {outlook.weeks_until_exhausted} weeks out — "
            "start procurement"
        )
    if args.timings:
        _print_timings(engine)
    engine.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ropus",
        description="R-Opus capacity management for shared resource pools",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate the synthetic case-study ensemble"
    )
    generate.add_argument("output", help="output path (.csv or .json)")
    generate.add_argument("--seed", type=int, default=2006)
    generate.add_argument("--weeks", type=int, default=4)
    generate.set_defaults(handler=cmd_generate)

    translate = subparsers.add_parser(
        "translate", help="run the QoS translation over an ensemble"
    )
    _add_common_qos_arguments(translate)
    _add_engine_arguments(translate)
    translate.set_defaults(handler=cmd_translate)

    plan = subparsers.add_parser(
        "plan", help="run the full planning pipeline"
    )
    _add_common_qos_arguments(plan)
    _add_engine_arguments(plan)
    _add_kernel_argument(plan)
    plan.add_argument("--servers", type=int, default=12)
    plan.add_argument("--cpus", type=int, default=16)
    _add_topology_arguments(plan)
    _add_failure_tier_arguments(plan)
    plan.add_argument("--no-failures", action="store_true")
    plan.add_argument(
        "--checkpoint", type=str, default=None, metavar="DIR",
        help="journal planning progress to DIR and resume from it "
             "(per-generation search state, per-case failure what-ifs, "
             "completed shards)",
    )
    plan.add_argument(
        "--shards", type=_shards_value, default="off", metavar="N|auto|off",
        help="hierarchical placement: 'off' plans the whole pool at once "
             "(default), 'auto' sizes the shard count from the ensemble, "
             "an integer forces that many shards",
    )
    plan.add_argument(
        "--cluster-seed", type=int, default=None,
        help="seed for demand-shape clustering tie-breaks (default: "
             "unseeded, no jitter)",
    )
    plan.add_argument(
        "--refine-rounds", type=int, default=2,
        help="max cross-shard refinement rounds; each stops early when "
             "total required capacity stops improving (default 2)",
    )
    plan.set_defaults(handler=cmd_plan)

    chaos = subparsers.add_parser(
        "chaos",
        help="run the planning pipeline under a seeded fault schedule",
    )
    _add_common_qos_arguments(chaos)
    _add_engine_arguments(chaos)
    _add_kernel_argument(chaos)
    chaos.add_argument("--servers", type=int, default=12)
    chaos.add_argument("--cpus", type=int, default=16)
    _add_topology_arguments(chaos)
    _add_failure_tier_arguments(chaos)
    chaos.add_argument("--no-failures", action="store_true")
    chaos.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed of the deterministic fault schedule (default 0)",
    )
    chaos.add_argument(
        "--fault-horizon", type=int, default=256,
        help="injection sites covered by the seeded schedule (default 256)",
    )
    chaos.add_argument("--crash-rate", type=float, default=0.02)
    chaos.add_argument("--hang-rate", type=float, default=0.0)
    chaos.add_argument("--corrupt-rate", type=float, default=0.02)
    chaos.add_argument("--broadcast-rate", type=float, default=0.1)
    chaos.add_argument(
        "--hang-seconds", type=float, default=5.0,
        help="how long an injected hang sleeps (default 5)",
    )
    chaos.add_argument(
        "--verify", action="store_true",
        help="re-plan fault-free and require an identical plan hash",
    )
    chaos.set_defaults(handler=cmd_chaos)

    table1 = subparsers.add_parser(
        "table1", help="reproduce the paper's Table I sweep"
    )
    _add_common_qos_arguments(table1)
    _add_engine_arguments(table1)
    table1.add_argument("--servers", type=int, default=14)
    table1.add_argument("--cpus", type=int, default=16)
    table1.set_defaults(handler=cmd_table1)

    validate = subparsers.add_parser(
        "validate", help="screen an ensemble for trace-quality problems"
    )
    _add_common_qos_arguments(validate)
    validate.add_argument(
        "--repair", action="store_true",
        help="quarantine NaN/negative/out-of-order rows at ingest and "
             "report the repairs instead of rejecting the file "
             "(requires --traces)",
    )
    validate.set_defaults(handler=cmd_validate)

    outlook = subparsers.add_parser(
        "outlook", help="long-term capacity outlook under demand growth"
    )
    _add_common_qos_arguments(outlook)
    _add_engine_arguments(outlook)
    _add_kernel_argument(outlook)
    outlook.add_argument("--servers", type=int, default=12)
    outlook.add_argument("--cpus", type=int, default=16)
    _add_topology_arguments(outlook)
    _add_failure_tier_arguments(outlook)
    outlook.add_argument("--horizon", type=int, default=24)
    outlook.add_argument("--step", type=int, default=4)
    outlook.add_argument(
        "--growth", type=float, default=None,
        help="weekly growth multiplier for all workloads "
             "(default: fitted per workload)",
    )
    outlook.set_defaults(handler=cmd_outlook)

    lint = subparsers.add_parser(
        "lint", help="run the AST invariant linter over source trees"
    )
    add_analysis_arguments(lint)
    lint.set_defaults(handler=cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
