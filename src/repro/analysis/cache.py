"""On-disk cache for the project-scope analysis passes.

The module rules are cheap — one AST visitor per file. The project
rules are not: they build the interprocedural call graph, run the
effect fixpoint, and run the typestate checker's per-function CFG
fixpoints. On an unchanged tree that work is fully determined by the
file contents and the rule set, so the runner memoises the *project
findings* under ``.ropus_cache/``:

* the key is a digest over a cache-format version, the enabled
  project-rule ids, each rule's severity (overrides change rendered
  findings), and every analyzed file's ``(display_path, content
  digest)`` pair — editing any byte of any file, or changing rule
  selection, produces a fresh key;
* a hit replays the stored findings without building the project at
  all; a miss computes and stores them;
* entries are self-contained JSON; deleting the directory is always
  safe, and ``--no-cache`` (or ``cache_dir=None``) bypasses it.

Only project findings are cached — inline/baseline suppression and
severity resolution already happened upstream of the store, and module
rules are too cheap to be worth invalidation complexity.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.base import ModuleContext

#: Bumped whenever cached content would be misread by newer code.
CACHE_VERSION = 1

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = Path(".ropus_cache")


def project_cache_key(
    contexts: Sequence[ModuleContext],
    rule_ids: Sequence[str],
    severities: Sequence[str],
) -> str:
    """Content-addressed key for one project-rule pass."""
    digest = hashlib.sha256()
    digest.update(f"v{CACHE_VERSION}".encode())
    for rule_id, severity in zip(rule_ids, severities):
        digest.update(f"|{rule_id}={severity}".encode())
    for context in sorted(contexts, key=lambda c: c.display_path):
        content = "\n".join(context.source_lines).encode("utf-8")
        file_digest = hashlib.sha256(content).hexdigest()
        digest.update(f"|{context.display_path}:{file_digest}".encode())
    return digest.hexdigest()


def _entry_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"project-{key}.json"


def load_project_findings(
    cache_dir: Path, key: str
) -> list[Finding] | None:
    """The cached findings for ``key``, or ``None`` on miss/corruption."""
    try:
        text = _entry_path(cache_dir, key).read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        document = json.loads(text)
        if document["version"] != CACHE_VERSION:
            return None
        return [
            Finding(
                path=str(entry["path"]),
                line=int(entry["line"]),
                column=int(entry["column"]),
                rule=str(entry["rule"]),
                message=str(entry["message"]),
                hint=str(entry["hint"]),
                severity=Severity(str(entry["severity"])),
            )
            for entry in document["findings"]
        ]
    except (ValueError, KeyError, TypeError):
        # Corrupt entries read as misses; the rewrite below heals them.
        return None


def store_project_findings(
    cache_dir: Path, key: str, findings: Sequence[Finding]
) -> None:
    """Persist ``findings`` under ``key``; failures are non-fatal."""
    document = {
        "version": CACHE_VERSION,
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "column": finding.column,
                "rule": finding.rule,
                "message": finding.message,
                "hint": finding.hint,
                "severity": finding.severity.value,
            }
            for finding in findings
        ],
    }
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so a concurrent reader never sees a torn
        # entry (same journaling discipline as the checkpoint store).
        fd, tmp_name = tempfile.mkstemp(
            dir=cache_dir, suffix=".tmp", prefix="project-"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
            os.replace(tmp_name, _entry_path(cache_dir, key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass  # the stray .tmp entry is harmless
            raise
    except OSError:
        return  # a read-only checkout just runs uncached


__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "load_project_findings",
    "project_cache_key",
    "store_project_findings",
]
