"""Text, JSON, and SARIF rendering of analysis results.

The text reporter is for humans (``path:line:col RULE message``); the
JSON reporter is a stable machine interface whose output round-trips
through :func:`parse_json` — CI tooling can consume findings without
scraping text. The SARIF reporter emits a SARIF 2.1.0 log so CI can
publish findings to code-scanning UIs (GitHub's
``codeql-action/upload-sarif`` consumes it directly).
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.analysis.findings import Finding, Severity
from repro.exceptions import ConfigurationError

JSON_SCHEMA_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def finding_to_dict(finding: Finding) -> dict[str, Any]:
    return {
        "path": finding.path,
        "line": finding.line,
        "column": finding.column,
        "rule": finding.rule,
        "message": finding.message,
        "hint": finding.hint,
        "severity": finding.severity.value,
    }


def finding_from_dict(data: dict[str, Any]) -> Finding:
    try:
        return Finding(
            path=str(data["path"]),
            line=int(data["line"]),
            column=int(data["column"]),
            rule=str(data["rule"]),
            message=str(data["message"]),
            hint=str(data["hint"]),
            severity=Severity(str(data["severity"])),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise ConfigurationError(f"malformed finding record: {data!r}") from error


def render_json(
    findings: Sequence[Finding], *, suppressed: int = 0
) -> str:
    """Machine-readable report; stable field order, newline-terminated."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "suppressed": suppressed,
        "findings": [
            finding_to_dict(finding)
            for finding in sorted(findings, key=Finding.sort_key)
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


def parse_json(text: str) -> list[Finding]:
    """Inverse of :func:`render_json` (findings only)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"invalid analysis JSON: {error}") from error
    if payload.get("version") != JSON_SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported analysis JSON version {payload.get('version')!r}"
        )
    return [finding_from_dict(entry) for entry in payload.get("findings", [])]


def _sarif_level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _sarif_rules() -> list[dict[str, Any]]:
    """Reporting descriptors for every registered rule, sorted by id."""
    # Imported here: the registry only fills in once the rules package
    # runs, and reporters must stay importable on their own.
    from repro.analysis.rules import iter_rule_classes

    return [
        {
            "id": rule_class.rule_id,
            "name": rule_class.name,
            "shortDescription": {"text": rule_class.description},
            "help": {"text": rule_class.hint},
            "defaultConfiguration": {
                "level": _sarif_level(rule_class.default_severity)
            },
        }
        for rule_class in iter_rule_classes()
    ]


def render_sarif(
    findings: Sequence[Finding], *, suppressed: int = 0
) -> str:
    """SARIF 2.1.0 log of the findings, newline-terminated.

    ``suppressed`` (baseline-suppressed count) is recorded as a run
    property so the number survives into the uploaded log without
    inventing phantom result objects for suppressed findings.
    """
    results = [
        {
            "ruleId": finding.rule,
            "level": _sarif_level(finding.severity),
            "message": {
                "text": (
                    f"{finding.message} ({finding.hint})"
                    if finding.hint
                    else finding.message
                )
            },
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column,
                        },
                    }
                }
            ],
        }
        for finding in sorted(findings, key=Finding.sort_key)
    ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "semanticVersion": "1.0.0",
                        "rules": _sarif_rules(),
                    }
                },
                "results": results,
                "properties": {"baselineSuppressed": suppressed},
            }
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


def render_text(
    findings: Sequence[Finding], *, suppressed: int = 0
) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = []
    for finding in sorted(findings, key=Finding.sort_key):
        lines.append(
            f"{finding.location}: {finding.severity} {finding.rule} "
            f"{finding.message}"
        )
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = sum(1 for f in findings if f.severity is Severity.WARNING)
    summary = f"{errors} error(s), {warnings} warning(s)"
    if suppressed:
        summary += f", {suppressed} baseline-suppressed"
    lines.append(summary if findings or suppressed else "clean: no findings")
    return "\n".join(lines) + "\n"
