"""Static analysis for the R-Opus pipeline's unwritten invariants.

The execution engine's correctness contract — deterministic RNG flow,
picklable work units, tolerance-based metric comparisons, invariants
that survive ``python -O`` — cannot be expressed in tests alone, so
this package enforces it at review time with a custom AST linter:

* :mod:`repro.analysis.rules` — one :class:`Rule` per invariant
  (ROP001-ROP011), registered in a global registry;
* :mod:`repro.analysis.dataflow` — the intraprocedural abstract
  interpreter (CFG, intervals, units) behind the flow-sensitive rules
  ROP008-ROP010;
* :mod:`repro.analysis.runner` — file walking, rule execution, inline
  ``# ropus: ignore`` handling, exit codes;
* :mod:`repro.analysis.baseline` — adopt-now-fix-later suppression;
* :mod:`repro.analysis.reporters` — text, round-trippable JSON, and
  SARIF 2.1.0 for code-scanning upload.

Run it as ``python -m repro.analysis src`` or ``ropus lint``.
"""

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    prune_baseline,
    write_baseline,
)
from repro.analysis.config import AnalysisConfig, resolve_config
from repro.analysis.findings import Finding, Severity
from repro.analysis.reporters import (
    finding_from_dict,
    finding_to_dict,
    parse_json,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.rules import (
    ModuleContext,
    ProjectRule,
    Rule,
    iter_rule_classes,
    register,
    registered_rules,
)
from repro.analysis.runner import (
    AnalysisResult,
    analyze_file,
    analyze_paths,
    main,
)

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "Finding",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "Severity",
    "analyze_file",
    "analyze_paths",
    "apply_baseline",
    "finding_from_dict",
    "finding_to_dict",
    "iter_rule_classes",
    "load_baseline",
    "main",
    "parse_json",
    "prune_baseline",
    "register",
    "registered_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "resolve_config",
    "write_baseline",
]
