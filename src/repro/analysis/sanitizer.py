"""Runtime determinism sanitizer: the dynamic half of ROP013.

The static effect analysis proves what it can see; this module catches
what it cannot (effects behind dynamic dispatch, C extensions, code
the analyzer never parsed). Under ``ROPUS_SANITIZE=1`` every pool
worker arms the sanitizer in its initializer
(:func:`repro.engine.executor._install_shared`), monkey-patching the
process-ambient nondeterminism entry points so that any work unit
touching them raises :class:`~repro.exceptions.DeterminismViolation`
instead of silently diverging between serial and parallel runs.

What is patched — and, as importantly, what is not:

* **patched**: absolute clocks (``time.time``/``time_ns``/
  ``localtime``/``gmtime``/``ctime``), the module-level ``random.*``
  convenience functions (they all share one hidden global
  ``random.Random`` instance), the legacy ``numpy.random.*`` ambient
  API (global ``RandomState``), and ``numpy.random.default_rng``
  *without* an explicit seed;
* **not patched**: the monotonic duration clocks
  (``perf_counter``/``monotonic``/``process_time``) and ``time.sleep``
  — pool machinery, instrumentation, and the fault-injection harness
  rely on them, and a duration measurement is not a result — plus
  seeded constructors (``default_rng(seed)``, ``random.Random(seed)``)
  and explicit :class:`numpy.random.Generator` instances, which are
  exactly the sanctioned alternatives the violation message points at.

The sanitizer is installed only in *worker* processes: the driver
keeps unrestricted clocks for instrumentation and scheduling. It is
idempotent and reversible (:func:`uninstall`), so tests can arm and
disarm it freely within one process.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable

from repro.exceptions import DeterminismViolation

#: Environment flag consulted by :func:`maybe_install` (and therefore
#: by every pool-worker initializer).
ENV_FLAG = "ROPUS_SANITIZE"

#: ``time`` module functions that read an absolute clock.
_TIME_FUNCTIONS = (
    "time",
    "time_ns",
    "localtime",
    "gmtime",
    "ctime",
)

#: ``random`` module functions backed by the hidden global instance.
_RANDOM_FUNCTIONS = (
    "random",
    "uniform",
    "randint",
    "randrange",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "gauss",
    "normalvariate",
    "betavariate",
    "expovariate",
    "getrandbits",
    "seed",
)

#: Legacy ``numpy.random`` functions backed by the global RandomState.
_NUMPY_RANDOM_FUNCTIONS = (
    "random",
    "random_sample",
    "rand",
    "randn",
    "randint",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "poisson",
    "exponential",
    "seed",
)

#: (module, attribute) -> original callable, while installed.
_SAVED: dict[tuple[Any, str], Any] = {}


def _raiser(description: str, remedy: str) -> Callable[..., Any]:
    def _blocked(*_args: Any, **_kwargs: Any) -> Any:
        raise DeterminismViolation(
            f"{description} called inside a sanitized worker; {remedy}."
        )

    return _blocked


def _patch(module: Any, attribute: str, replacement: Any) -> None:
    key = (module, attribute)
    if key in _SAVED:  # pragma: no cover - guarded by installed()
        return
    original = getattr(module, attribute, None)
    if original is None:
        return
    _SAVED[key] = original
    setattr(module, attribute, replacement)


def installed() -> bool:
    """Whether the sanitizer is currently armed in this process."""
    return bool(_SAVED)


def install() -> None:
    """Arm the sanitizer in this process. Idempotent."""
    if installed():
        return

    for name in _TIME_FUNCTIONS:
        _patch(
            time,
            name,
            _raiser(
                f"time.{name}()",
                "take timestamps in the driver and pass them in as "
                "explicit arguments (perf_counter/monotonic stay "
                "available for duration instrumentation)",
            ),
        )

    import random as random_module

    for name in _RANDOM_FUNCTIONS:
        _patch(
            random_module,
            name,
            _raiser(
                f"random.{name}()",
                "draw from an explicitly seeded generator instead "
                "(random.Random(seed) or repro.util.rng.derive_rng)",
            ),
        )

    try:
        import numpy.random as numpy_random
    except ImportError:  # pragma: no cover - numpy is a core dep
        numpy_random = None
    if numpy_random is not None:
        for name in _NUMPY_RANDOM_FUNCTIONS:
            _patch(
                numpy_random,
                name,
                _raiser(
                    f"numpy.random.{name}()",
                    "use a numpy.random.Generator derived from an "
                    "explicit seed (derive_rng/derive_shard_seed)",
                ),
            )

        original_default_rng = numpy_random.default_rng

        def _checked_default_rng(
            seed: Any = None, *args: Any, **kwargs: Any
        ) -> Any:
            if seed is None and not args and not kwargs:
                raise DeterminismViolation(
                    "numpy.random.default_rng() without a seed called "
                    "inside a sanitized worker; pass an explicit seed "
                    "(derive_shard_seed) or a SeedSequence."
                )
            return original_default_rng(seed, *args, **kwargs)

        _patch(numpy_random, "default_rng", _checked_default_rng)


def uninstall() -> None:
    """Restore every patched entry point. Idempotent."""
    while _SAVED:
        (module, attribute), original = _SAVED.popitem()
        setattr(module, attribute, original)


def maybe_install() -> bool:
    """Arm the sanitizer iff ``ROPUS_SANITIZE=1``; returns whether armed.

    Called from pool-worker initializers: the environment is inherited
    from the driver, so exporting the flag once sanitizes every worker
    the run spawns without any API changes.
    """
    if os.environ.get(ENV_FLAG) == "1":
        install()
        return True
    return False
