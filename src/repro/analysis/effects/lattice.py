"""The effect lattice: what a callable may do besides compute.

An effect summary is a *set* of :class:`Effect` members; the lattice
is the powerset ordered by inclusion, with ``PURE`` as the empty set
at the bottom and join = union. Summaries only ever grow during the
bottom-up fixpoint, so termination is immediate (the lattice is
finite and has no infinite ascending chains).

Each effect a summary carries is anchored by an :class:`Origin` — the
``path:line`` of the *primitive* site that introduced it (the
``random.random()`` call, the ``for x in some_set`` loop), preserved
unchanged as the effect propagates up the call graph. Rule messages
can therefore point a reviewer at the actual offending line three
calls deep instead of at the function that merely inherited it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping


class Effect(enum.Enum):
    """One observable capability of a callable.

    ``PURE`` is not a member: purity is the *absence* of effects
    (:attr:`EffectSummary.pure`).
    """

    #: Reads module-level state that some code path reassigns.
    READS_GLOBAL = "reads-global"
    #: Rebinds or mutates module-level state.
    MUTATES_GLOBAL = "mutates-global"
    #: Draws from process-ambient RNG state (``random.*``, unseeded
    #: ``numpy.random.default_rng()``) instead of a threaded generator.
    AMBIENT_RNG = "ambient-rng"
    #: Reads a clock (``time.time``, ``perf_counter``, ``datetime.now``).
    WALL_CLOCK = "wall-clock"
    #: Touches the filesystem or process streams.
    IO = "io"
    #: Reads the process environment (``os.environ`` / ``os.getenv``).
    ENV = "env"
    #: Iterates a collection whose order is not reproducible
    #: (``set``/``frozenset`` iteration, unsorted ``os.listdir``/``glob``).
    NONDET_ITERATION = "nondet-iteration"
    #: Defined in a nested scope, so it cannot cross a pickle boundary.
    UNPICKLABLE_CAPTURE = "unpicklable-capture"

    def __str__(self) -> str:
        return self.value


#: The effects ROP013 refuses to let into a parallel work unit: any of
#: these makes serial and process-pool runs observably different.
TASK_UNSAFE = frozenset(
    {Effect.AMBIENT_RNG, Effect.WALL_CLOCK, Effect.MUTATES_GLOBAL}
)


@dataclass(frozen=True)
class Origin:
    """The primitive source site of one effect."""

    path: str
    line: int
    detail: str

    def __str__(self) -> str:
        return f"{self.detail} at {self.path}:{self.line}"


@dataclass(frozen=True)
class EffectSummary:
    """The inferred effect set of one callable, with provenance."""

    effects: frozenset[Effect]
    origins: Mapping[Effect, Origin]

    @property
    def pure(self) -> bool:
        return not self.effects

    def origin(self, effect: Effect) -> Origin | None:
        return self.origins.get(effect)

    def join(self, other: "EffectSummary") -> "EffectSummary":
        """Least upper bound; the first-seen origin per effect wins."""
        if other.effects <= self.effects:
            return self
        origins = dict(other.origins)
        origins.update(self.origins)  # self's origins take precedence
        return EffectSummary(
            effects=self.effects | other.effects, origins=origins
        )

    def names(self) -> tuple[str, ...]:
        """Sorted effect value-strings (stable test/report order)."""
        return tuple(sorted(effect.value for effect in self.effects))

    @classmethod
    def empty(cls) -> "EffectSummary":
        return _EMPTY

    @classmethod
    def of(cls, pairs: Iterable[tuple[Effect, Origin]]) -> "EffectSummary":
        origins: dict[Effect, Origin] = {}
        for effect, origin in pairs:
            origins.setdefault(effect, origin)
        return cls(effects=frozenset(origins), origins=origins)


_EMPTY = EffectSummary(effects=frozenset(), origins={})


def effects_from_names(names: Iterable[str]) -> frozenset[Effect]:
    """Parse effect value-strings (``"ambient-rng"``) into members."""
    return frozenset(Effect(name) for name in names)
