"""Project model: every function, its direct effects, and its calls.

One :class:`_ModuleScanner` pass per analyzed module produces a
:class:`FunctionInfo` for each ``def`` (top-level functions, methods,
and nested functions each get their own entry, qualified
``module.Class.name`` / ``module.outer.<locals>.inner``). The scan
records three things the inference pass and the ROP013-ROP016 rules
consume:

* **direct effects** — primitive effect sites observable in the body
  itself (set iteration, mutable-global access, ``global`` rebinding,
  ``os.environ`` reads); intrinsic *call* effects are resolved later,
  at inference time, once the full project index exists;
* **call sites** — the callee reference in canonical dotted form
  (through the module's ImportMap) plus enough syntax to resolve
  argument-sensitive intrinsics;
* **boundary sites** — executor submissions (``.map``/``.submit`` on
  executor-shaped receivers) and checkpoint saves (``.save`` on
  checkpoint-shaped receivers), the crossing points the flow rules
  police.

Resolution is deliberately optimistic: an attribute call on an
unknown receiver contributes only what the method-name heuristics
know (``.glob`` enumerates the filesystem, ``.read_text`` is I/O).
Assuming the worst for every dynamic call would mark the entire tree
impure and bury real findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.analysis.effects.intrinsics import (
    NONDET_LISTING_CALLS,
    NONDET_LISTING_METHODS,
)
from repro.analysis.effects.lattice import Effect, EffectSummary, Origin
from repro.analysis.rules.base import ImportMap, ModuleContext, dotted_name

#: Receiver-name fragments that mark a ``.map``/``.submit`` call as an
#: executor submission (mirrors ROP004's heuristic).
_EXECUTOR_NAME_PARTS = ("executor", "session", "pool", "engine")

#: Receiver-name fragments that mark a ``.save`` call as a checkpoint
#: write.
_CHECKPOINT_NAME_PARTS = ("checkpoint",)

_SUBMIT_METHODS = frozenset({"map", "submit"})

#: Mutating container/attribute methods; called on a module-level name
#: they constitute global mutation.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "extend",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: Builtins that materialize their (first) argument's iteration order.
_ORDER_MATERIALIZERS = frozenset({"list", "tuple", "enumerate", "iter"})

#: Set-typed annotation spellings.
_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet"})


def _receiver_matches(receiver: ast.expr, parts: tuple[str, ...]) -> bool:
    dotted = dotted_name(receiver)
    if dotted is None:
        return False
    tail = dotted.split(".")[-1].lower()
    return any(part in tail for part in parts)


@dataclass(frozen=True)
class CallSite:
    """One call edge candidate out of a function."""

    line: int
    col: int
    kind: str  # "project" | "name" | "method" | "unknown"
    target: str | None
    node: ast.Call | None
    receiver: str | None = None
    sorted_wrapped: bool = False


@dataclass(frozen=True)
class SubmissionSite:
    """One ``executor.map/submit`` call and its resolved work unit."""

    line: int
    col: int
    node: ast.Call
    work_repr: str
    work_kind: str  # "name" | "project" | "lambda" | "unknown"
    work_target: str | None


@dataclass(frozen=True)
class SaveSite:
    """One ``checkpointer.save(key, payload)`` call."""

    line: int
    col: int
    node: ast.Call
    payload: ast.expr | None


@dataclass
class FunctionInfo:
    """Everything scanned about one function definition."""

    qualified: str
    module: str
    display_path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    context: ModuleContext
    direct: EffectSummary = field(default_factory=EffectSummary.empty)
    #: Every primitive effect site in the body (the summary keeps only
    #: the first origin per effect; rules want all of them).
    direct_sites: tuple[tuple[Effect, Origin], ...] = ()
    calls: list[CallSite] = field(default_factory=list)
    submissions: list[SubmissionSite] = field(default_factory=list)
    saves: list[SaveSite] = field(default_factory=list)
    hash_sink: bool = False
    checkpoint_sink: bool = False

    @property
    def short_name(self) -> str:
        return self.qualified.rsplit(".", 1)[-1]


def module_name_for(path: Path) -> str:
    """Dotted module name from the file's package structure.

    Walks up through ``__init__.py``-bearing directories, so
    ``src/repro/placement/genetic.py`` names
    ``repro.placement.genetic`` and a loose fixture file names its
    stem.
    """
    parts: list[str] = [] if path.name == "__init__.py" else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:  # pragma: no cover - filesystem root
            break
        directory = parent
    return ".".join(parts) if parts else path.stem


class _ModuleScanner:
    """Extract every FunctionInfo from one parsed module."""

    def __init__(self, context: ModuleContext) -> None:
        self.context = context
        self.module = module_name_for(context.path)
        self.imports = context.imports
        self.module_defs: set[str] = set()
        self.module_classes: set[str] = set()
        self._module_assigned: list[str] = []
        for stmt in context.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_defs.add(stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                self.module_classes.add(stmt.name)
            else:
                for target_name in _assigned_names(stmt):
                    self._module_assigned.append(target_name)
        self.module_globals = set(self._module_assigned)
        # A module-level name is *mutable* when some function rebinds
        # it (``global``) or it is assigned more than once at module
        # level; reading those is the READS_GLOBAL effect. Constants
        # assigned exactly once are just configuration.
        rebound: set[str] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Global):
                rebound.update(node.names)
        counts: dict[str, int] = {}
        for name in self._module_assigned:
            counts[name] = counts.get(name, 0) + 1
        self.mutable_globals = rebound | {
            name for name, count in counts.items() if count > 1
        }

    def scan(self) -> list[FunctionInfo]:
        functions: list[FunctionInfo] = []
        for stmt in self.context.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(
                    stmt, f"{self.module}.{stmt.name}", None, False, functions
                )
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._scan_function(
                            item,
                            f"{self.module}.{stmt.name}.{item.name}",
                            stmt.name,
                            False,
                            functions,
                        )
        return functions

    def _scan_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualified: str,
        class_name: str | None,
        nested: bool,
        out: list[FunctionInfo],
    ) -> None:
        info = FunctionInfo(
            qualified=qualified,
            module=self.module,
            display_path=self.context.display_path,
            node=node,
            context=self.context,
        )
        visitor = _FunctionBodyVisitor(self, info, class_name, nested)
        visitor.run()
        out.append(info)
        for child in visitor.nested_defs:
            self._scan_function(
                child,
                f"{qualified}.<locals>.{child.name}",
                class_name,
                True,
                out,
            )


def _assigned_names(stmt: ast.stmt) -> Iterator[str]:
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    yield element.id


def _is_set_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    name = dotted_name(node)
    if name is None:
        return False
    return name.split(".")[-1] in _SET_ANNOTATIONS


class _FunctionBodyVisitor(ast.NodeVisitor):
    """One pass over a single function body.

    Nested ``def``s are collected (not descended into) — their effects
    belong to their own :class:`FunctionInfo`; the enclosing function
    only acquires a call edge if it actually calls them.
    """

    def __init__(
        self,
        scanner: _ModuleScanner,
        info: FunctionInfo,
        class_name: str | None,
        nested: bool,
    ) -> None:
        self.scanner = scanner
        self.info = info
        self.class_name = class_name
        self.nested = nested
        self.nested_defs: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        self._nested_names: dict[str, str] = {}
        self._effects: list[tuple[Effect, Origin]] = []
        self._sorted_wrapped: set[int] = set()
        self._set_locals: set[str] = set()
        self._global_decls: set[str] = set()
        self._local_bindings: set[str] = set()
        self._root = info.node

    # -- driver --------------------------------------------------------
    def run(self) -> None:
        self._prepass()
        for stmt in self._root.body:
            self.visit(stmt)
        self.info.direct = EffectSummary.of(self._effects)
        self.info.direct_sites = tuple(self._effects)
        self.info.calls = list(self.info.calls)

    def _prepass(self) -> None:
        """Collect nested defs, set-typed locals, and global decls."""
        args = self._root.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]:
            self._local_bindings.add(arg.arg)
            if _is_set_annotation(arg.annotation):
                self._set_locals.add(arg.arg)
        for node in ast.walk(self._root):
            if node is self._root:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._nested_names[node.name] = (
                    f"{self.info.qualified}.<locals>.{node.name}"
                )
            elif isinstance(node, ast.Global):
                self._global_decls.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Store
            ):
                self._local_bindings.add(node.id)
            if isinstance(node, ast.Assign):
                if self._is_set_expr(node.value) is not None:
                    for name in _assigned_names(node):
                        self._set_locals.add(name)
            elif isinstance(node, ast.AnnAssign):
                if _is_set_annotation(node.annotation) or (
                    node.value is not None
                    and self._is_set_expr(node.value) is not None
                ):
                    for name in _assigned_names(node):
                        self._set_locals.add(name)

    # -- helpers -------------------------------------------------------
    def _origin(self, node: ast.AST, detail: str) -> Origin:
        return Origin(
            path=self.info.display_path,
            line=getattr(node, "lineno", 1),
            detail=detail,
        )

    def _add(self, effect: Effect, node: ast.AST, detail: str) -> None:
        self._effects.append((effect, self._origin(node, detail)))

    def _is_set_expr(self, node: ast.expr) -> str | None:
        """A human description when ``node`` evaluates to a set."""
        if isinstance(node, ast.Set):
            return "set literal"
        if isinstance(node, ast.SetComp):
            return "set comprehension"
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if callee in {"set", "frozenset"}:
                return f"{callee}(...)"
        if isinstance(node, ast.Name) and node.id in self._set_locals:
            return f"set-typed local {node.id!r}"
        return None

    def _check_iteration_source(self, node: ast.expr, context: str) -> None:
        description = self._is_set_expr(node)
        if description is not None:
            self._add(
                Effect.NONDET_ITERATION,
                node,
                f"{context} over {description}",
            )

    # -- structural visitors -------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.nested_defs.append(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.nested_defs.append(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration_source(node.iter, "for-loop")
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration_source(node.iter, "for-loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for generator in getattr(node, "generators", []):
            self._check_iteration_source(generator.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Starred(self, node: ast.Starred) -> None:
        self._check_iteration_source(node.value, "unpacking")
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self._add(
            Effect.MUTATES_GLOBAL,
            node,
            f"global rebinding of {', '.join(node.names)}",
        )

    def visit_Name(self, node: ast.Name) -> None:
        if (
            isinstance(node.ctx, ast.Load)
            and node.id in self.scanner.mutable_globals
            and node.id not in self._global_decls
            and node.id not in self._local_bindings
        ):
            self._add(
                Effect.READS_GLOBAL,
                node,
                f"read of mutable module global {node.id!r}",
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        canonical = self.scanner.imports.resolve_imported(node.value)
        if canonical == "os.environ":
            self._add(Effect.ENV, node, "os.environ[...] read")
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            target = dotted_name(node.value)
            if (
                target in self.scanner.module_globals
                and target not in self._local_bindings
            ):
                self._add(
                    Effect.MUTATES_GLOBAL,
                    node,
                    f"item assignment on module global {target!r}",
                )
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        callee = dotted_name(node.func)
        if callee == "sorted" or callee in {"min", "max", "sum"}:
            # Order-insensitive consumers sanction a nondet source as
            # their *direct* argument.
            for arg in node.args:
                if isinstance(arg, ast.Call):
                    self._sorted_wrapped.add(id(arg))
        if callee in _ORDER_MATERIALIZERS and node.args:
            self._check_iteration_source(node.args[0], f"{callee}(...)")
        elif callee in {"map", "filter"} and len(node.args) >= 2:
            for arg in node.args[1:]:
                self._check_iteration_source(arg, f"{callee}(...)")
        elif callee == "zip":
            for arg in node.args:
                self._check_iteration_source(arg, "zip(...)")
        elif callee == "dict.fromkeys" and node.args:
            self._check_iteration_source(node.args[0], "dict.fromkeys(...)")
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
        ):
            self._check_iteration_source(node.args[0], "str.join(...)")

        # Mutation of module-level containers through their methods.
        if isinstance(node.func, ast.Attribute):
            receiver = dotted_name(node.func.value)
            if (
                node.func.attr in _MUTATING_METHODS
                and receiver in self.scanner.module_globals
                and receiver not in self._local_bindings
            ):
                self._add(
                    Effect.MUTATES_GLOBAL,
                    node,
                    f"{receiver}.{node.func.attr}() on a module global",
                )

        self._record_call(node)
        self._record_boundaries(node)
        self.generic_visit(node)

    def _record_call(self, node: ast.Call) -> None:
        kind, target, receiver = self._resolve_callable(node.func)
        sorted_wrapped = id(node) in self._sorted_wrapped
        self.info.calls.append(
            CallSite(
                line=node.lineno,
                col=node.col_offset,
                kind=kind,
                target=target,
                node=node,
                receiver=receiver,
                sorted_wrapped=sorted_wrapped,
            )
        )
        if kind == "name" and target is not None and (
            target.startswith("hashlib.")
        ):
            self.info.hash_sink = True

    def _record_boundaries(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        if attr in _SUBMIT_METHODS and _receiver_matches(
            node.func.value, _EXECUTOR_NAME_PARTS
        ):
            if node.args:
                work_kind, work_target, work_repr = self._resolve_work(
                    node.args[0]
                )
                self.info.submissions.append(
                    SubmissionSite(
                        line=node.lineno,
                        col=node.col_offset,
                        node=node,
                        work_repr=work_repr,
                        work_kind=work_kind,
                        work_target=work_target,
                    )
                )
        elif attr == "save" and _receiver_matches(
            node.func.value, _CHECKPOINT_NAME_PARTS
        ):
            self.info.checkpoint_sink = True
            payload = node.args[1] if len(node.args) >= 2 else None
            self.info.saves.append(
                SaveSite(
                    line=node.lineno,
                    col=node.col_offset,
                    node=node,
                    payload=payload,
                )
            )

    def _resolve_callable(
        self, func: ast.expr
    ) -> tuple[str, str | None, str | None]:
        """Classify a callee expression.

        Returns ``(kind, target, receiver)`` where kind is ``name``
        (canonical dotted reference, resolvable against the project
        index or the intrinsic tables), ``method`` (attribute call on
        an opaque receiver), or ``unknown``.
        """
        dotted = dotted_name(func)
        if dotted is None:
            return "unknown", None, None
        head, _, rest = dotted.partition(".")
        module = self.scanner.module
        if not rest:
            if head in self._nested_names:
                return "name", self._nested_names[head], None
            if head in self.scanner.module_defs:
                return "name", f"{module}.{head}", None
            if head in self.scanner.module_classes:
                return "name", f"{module}.{head}.__init__", None
        else:
            if head in {"self", "cls"} and self.class_name is not None:
                if "." not in rest:
                    return (
                        "name",
                        f"{module}.{self.class_name}.{rest}",
                        None,
                    )
            if head in self.scanner.module_classes and "." not in rest:
                return "name", f"{module}.{dotted}", None
        canonical = self.scanner.imports.resolve_imported(func)
        if canonical is not None:
            return "name", canonical, None
        if not rest:
            # A plain name: builtin or local callable. Builtins like
            # ``open``/``print`` matter to the intrinsic table.
            return "name", head, None
        if isinstance(func, ast.Attribute):
            receiver = dotted_name(func.value)
            return "method", func.attr, receiver
        return "unknown", dotted, None

    def _resolve_work(
        self, arg: ast.expr
    ) -> tuple[str, str | None, str]:
        """Resolve the work-unit argument of an executor submission."""
        work_repr = ast.unparse(arg)
        if isinstance(arg, ast.Lambda):
            return "lambda", None, work_repr
        if isinstance(arg, ast.Call):
            kind, target, _ = self._resolve_callable(arg.func)
            if (
                kind == "name"
                and target in {"functools.partial", "partial"}
                and arg.args
            ):
                return self._resolve_work(arg.args[0])
            return "unknown", None, work_repr
        kind, target, _ = self._resolve_callable(arg)
        if kind == "name" and target is not None:
            return "name", target, work_repr
        return "unknown", None, work_repr


@dataclass
class EffectProject:
    """The scanned project: function index plus per-module scanners."""

    modules: list[ModuleContext]
    functions: dict[str, FunctionInfo]
    summaries: dict[str, EffectSummary] = field(default_factory=dict)
    #: Which sink kinds (``"hash"``, ``"checkpoint"``) each function
    #: transitively reaches through project-internal calls.
    reaches_sink: dict[str, frozenset[str]] = field(default_factory=dict)

    def summary(self, qualified: str) -> EffectSummary | None:
        return self.summaries.get(qualified)

    def function(self, qualified: str) -> FunctionInfo | None:
        return self.functions.get(qualified)


def build_project(modules: list[ModuleContext]) -> EffectProject:
    """Scan every module and assemble the function index.

    Later definitions never overwrite earlier ones on a qualified-name
    collision (shadowed re-definitions are a code smell the ordinary
    linters already catch); iteration order is the caller-provided
    module order, which the runner keeps deterministic.
    """
    functions: dict[str, FunctionInfo] = {}
    for context in modules:
        for info in _ModuleScanner(context).scan():
            functions.setdefault(info.qualified, info)
    return EffectProject(modules=list(modules), functions=functions)


class ProjectContext:
    """Everything a project-scope rule may inspect.

    Built once per analysis run; the effect inference is computed
    lazily on first access so module-only runs (``--select ROP001``)
    never pay for it.
    """

    def __init__(self, modules: list[ModuleContext]) -> None:
        self.modules = modules
        self._project: EffectProject | None = None
        self._typestate: "list[Any] | None" = None

    @property
    def effects(self) -> EffectProject:
        if self._project is None:
            from repro.analysis.effects.inference import infer_effects

            project = build_project(self.modules)
            infer_effects(project)
            self._project = project
        return self._project

    @property
    def typestate(self) -> "list[Any]":
        """Typestate findings, computed once and shared by ROP017–ROP020.

        The four lifecycle rules each filter one category out of the
        same checker run, so the CFG fixpoints execute once per
        analysis, not once per rule.
        """
        if self._typestate is None:
            from repro.analysis.typestate.checker import check_project

            self._typestate = check_project(self.effects)
        return self._typestate


#: Re-exported for rule modules that need the same receiver heuristic.
def looks_like_executor(receiver: ast.expr) -> bool:
    return _receiver_matches(receiver, _EXECUTOR_NAME_PARTS)


def looks_like_checkpointer(receiver: ast.expr) -> bool:
    return _receiver_matches(receiver, _CHECKPOINT_NAME_PARTS)


# Re-exported so rules can reason about listing calls consistently.
__all__ = [
    "CallSite",
    "EffectProject",
    "FunctionInfo",
    "ProjectContext",
    "SaveSite",
    "SubmissionSite",
    "build_project",
    "looks_like_checkpointer",
    "looks_like_executor",
    "module_name_for",
    "NONDET_LISTING_CALLS",
    "NONDET_LISTING_METHODS",
]
