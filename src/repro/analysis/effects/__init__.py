"""Interprocedural effect & determinism inference.

The dataflow package (ROP008-ROP011) checks one function at a time;
this package answers the question those rules cannot: *what does a
callable do, transitively?* It builds a project-wide call graph over
every analyzed module (reusing the ImportMap canonical-name resolution
the per-module rules already trust), computes a per-function
:class:`EffectSummary` over a small effect lattice, and propagates
summaries bottom-up through the condensation of the call graph (Tarjan
SCCs, fixpoint within each component).

The flow-aware rules ROP013-ROP016 consume the result:

* **ROP013** — a transitively impure callable (ambient RNG, wall
  clock, global mutation) submitted to an ``Executor`` /
  ``ResilientExecutor``;
* **ROP014** — nondeterministic iteration order reaching placement
  decisions, checkpoint payloads, or hash inputs;
* **ROP015** — RNG generator objects crossing process or checkpoint
  boundaries (see :mod:`repro.analysis.rules.seed_discipline`);
* **ROP016** — checkpoint payloads whose JSON round-trip is not
  bit-stable.

Manual knowledge lives in :data:`KNOWN_EFFECTS` as *verified
overrides*: each entry declares both what inference must derive for
the function (checked by :func:`verify_overrides` and the test suite,
so the table can never drift from the code) and what effect set call
sites should inherit (the sanctioned contract — e.g.
``derive_rng(None)`` is ambient by design and policed by ROP001, so
callers do not inherit the ambient-RNG effect).
"""

from repro.analysis.effects.intrinsics import KNOWN_EFFECTS, EffectOverride
from repro.analysis.effects.lattice import Effect, EffectSummary, Origin
from repro.analysis.effects.project import (
    EffectProject,
    FunctionInfo,
    ProjectContext,
    build_project,
)
from repro.analysis.effects.inference import (
    OverrideMismatch,
    infer_effects,
    verify_overrides,
)

__all__ = [
    "Effect",
    "EffectOverride",
    "EffectProject",
    "EffectSummary",
    "FunctionInfo",
    "KNOWN_EFFECTS",
    "Origin",
    "OverrideMismatch",
    "ProjectContext",
    "build_project",
    "infer_effects",
    "verify_overrides",
]
