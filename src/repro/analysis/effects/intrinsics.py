"""Effect knowledge for callables the analyzer cannot see into.

Two tables:

* the **intrinsic table** — effects of stdlib/numpy primitives
  (``random.random`` is ambient RNG, ``time.time`` reads the clock,
  ``os.listdir`` yields nondeterministic order). Matched on canonical
  dotted names after ImportMap resolution; a handful of constructors
  are argument-sensitive (``numpy.random.default_rng(seed)`` is
  sanctioned, ``default_rng()`` is ambient).
* :data:`KNOWN_EFFECTS` — **verified overrides** for first-party
  callables whose raw inferred summary is not the contract callers
  should inherit. Each entry declares the summary inference *must*
  produce (``inferred`` — equality-checked by
  :func:`repro.analysis.effects.inference.verify_overrides`, so a
  behaviour change in the function breaks the build until the table is
  updated consciously) and the summary call sites inherit
  (``exported``). This is the effect-engine analogue of the dataflow
  package's :data:`~repro.analysis.dataflow.signatures.KNOWN_SIGNATURES`
  table, with the hand-maintained entries demoted from ground truth to
  checked annotations.

Unknown externals are treated as effect-free (optimistic): assuming
the worst would mark the whole tree impure and drown every real
finding. The intrinsic table therefore concentrates on the primitives
that actually break determinism contracts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.effects.lattice import Effect

# --------------------------------------------------------------------
# Intrinsic (external) effects
# --------------------------------------------------------------------

#: Canonical names that read an *absolute* clock when called. The
#: monotonic duration clocks (``perf_counter``, ``monotonic``,
#: ``process_time``) are deliberately absent: they are the sanctioned
#: instrumentation primitives (ROP002 allows them for the same reason)
#: and their readings are understood to be measurements, not results.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: RNG constructors that are sanctioned *with* an explicit seed
#: argument and ambient without one.
_SEEDABLE_RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.RandomState",
        "random.Random",
    }
)

#: Directory/file enumeration whose order is filesystem-dependent.
NONDET_LISTING_CALLS = frozenset(
    {
        "os.listdir",
        "os.scandir",
        "os.walk",
        "glob.glob",
        "glob.iglob",
    }
)

#: Path methods with filesystem-order results (matched on attribute
#: name because the receiver's type is unknown statically).
NONDET_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Canonical calls that touch the filesystem or process streams.
_IO_CALLS = frozenset(
    {
        "open",
        "print",
        "input",
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.mkdir",
        "os.makedirs",
        "os.fsync",
        "shutil.copy",
        "shutil.copytree",
        "shutil.rmtree",
        "shutil.move",
        "json.dump",
        "json.load",
        "sys.stdout.write",
        "sys.stderr.write",
        "sys.stdout.flush",
        "sys.stderr.flush",
    }
)

#: Attribute names that perform file I/O on any receiver (Path /
#: file-handle methods).
_IO_METHODS = frozenset(
    {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "unlink",
        "mkdir",
        "touch",
        "rmdir",
    }
)

#: Canonical calls reading the process environment.
_ENV_CALLS = frozenset(
    {"os.getenv", "os.environ.get", "os.environ.setdefault", "os.getcwd"}
)


def _call_arity(node: ast.Call | None) -> int:
    if node is None:
        return 0
    return len(node.args) + len(node.keywords)


def external_effects(
    canonical: str, node: ast.Call | None = None
) -> frozenset[Effect]:
    """Effects of calling the external ``canonical`` name.

    ``node`` (when available) disambiguates the argument-sensitive
    RNG constructors; without it they are assumed ambient.
    """
    effects: set[Effect] = set()
    if canonical in _SEEDABLE_RNG_CONSTRUCTORS:
        if _call_arity(node) == 0:
            effects.add(Effect.AMBIENT_RNG)
    elif canonical.startswith("random.") or canonical.startswith(
        "numpy.random."
    ):
        effects.add(Effect.AMBIENT_RNG)
    if canonical in WALL_CLOCK_CALLS:
        effects.add(Effect.WALL_CLOCK)
    if canonical in NONDET_LISTING_CALLS:
        effects.add(Effect.NONDET_ITERATION)
        effects.add(Effect.IO)
    if canonical in _IO_CALLS:
        effects.add(Effect.IO)
    if canonical in _ENV_CALLS or canonical.startswith("os.environ."):
        effects.add(Effect.ENV)
    return frozenset(effects)


def method_effects(attribute: str) -> frozenset[Effect]:
    """Effects of an unresolvable ``receiver.attribute(...)`` call."""
    effects: set[Effect] = set()
    if attribute in NONDET_LISTING_METHODS:
        effects.add(Effect.NONDET_ITERATION)
        effects.add(Effect.IO)
    if attribute in _IO_METHODS:
        effects.add(Effect.IO)
    return frozenset(effects)


def is_env_read(canonical: str) -> bool:
    """Whether reading the name itself (not calling) touches the env."""
    return canonical == "os.environ" or canonical.startswith("os.environ.")


# --------------------------------------------------------------------
# Verified first-party overrides
# --------------------------------------------------------------------


@dataclass(frozen=True)
class EffectOverride:
    """One hand-maintained, inference-checked effect contract.

    ``inferred`` must equal the engine's raw summary for the function
    (drift fails :func:`verify_overrides`); ``exported`` is what call
    sites inherit — the contract after accounting for behaviour the
    analysis cannot condition on (an effect only reachable with
    ``seed=None``, sanctioned journaling I/O, ...).
    """

    inferred: frozenset[Effect]
    exported: frozenset[Effect] = field(default=frozenset())
    reason: str = ""


def _fx(*effects: Effect) -> frozenset[Effect]:
    return frozenset(effects)


#: Verified overrides, keyed by canonical qualified name. Every entry
#: that names a function present in the analyzed project is
#: equality-checked against inference by the test suite (and by
#: ``verify_overrides``), so this table cannot silently rot the way a
#: purely manual signature table can.
KNOWN_EFFECTS: dict[str, EffectOverride] = {
    "repro.util.rng.derive_rng": EffectOverride(
        inferred=_fx(Effect.AMBIENT_RNG),
        exported=frozenset(),
        reason=(
            "ambient only on the documented seed=None branch; callers "
            "that pass None opt out of reproducibility explicitly and "
            "ROP001 polices raw RNG construction everywhere else"
        ),
    ),
    "repro.util.rng.SeedSequenceFactory.generator": EffectOverride(
        inferred=frozenset(),
        exported=frozenset(),
        reason="spawns children from an explicit root SeedSequence",
    ),
    "repro.engine.dispatch.split_chunks": EffectOverride(
        inferred=frozenset(),
        exported=frozenset(),
        reason="pure chunking policy; order-preserving by contract",
    ),
    "repro.engine.faults.seeded_occurrences": EffectOverride(
        inferred=frozenset(),
        exported=frozenset(),
        reason="draws from a generator derived from the explicit seed",
    ),
    "repro.engine.checkpoint.Checkpointer.save": EffectOverride(
        inferred=_fx(Effect.IO),
        exported=_fx(Effect.IO),
        reason="journaling write-then-rename is the sanctioned I/O path",
    ),
    "repro.placement.clustering.cluster_workloads": EffectOverride(
        inferred=frozenset(),
        exported=frozenset(),
        reason=(
            "deterministic agglomerative clustering; tie-breaks are "
            "index-ordered and labels canonicalised by first occurrence"
        ),
    ),
    "repro.placement.sharding.partition_pool": EffectOverride(
        inferred=frozenset(),
        exported=frozenset(),
        reason="largest-remainder apportionment over ordered inputs",
    ),
    "repro.placement.sharding.derive_shard_seed": EffectOverride(
        inferred=frozenset(),
        exported=frozenset(),
        reason="stable integer seed derivation, no RNG state involved",
    ),
    "repro.workloads.ensemble.scaled_ensemble": EffectOverride(
        inferred=frozenset(),
        exported=frozenset(),
        reason="replica perturbations drawn from the explicit seed",
    ),
}
