"""Bottom-up effect inference over the project call graph.

The call graph's condensation (Tarjan strongly connected components,
computed iteratively so deep call chains never hit the recursion
limit) is processed callees-first. Each SCC's summary is the join of
its members' direct effects, their intrinsic call contributions, and
the summaries of out-of-component callees — one pass per component,
since summaries of processed components are final. Mutual recursion
inside a component is handled by giving every member the component's
joined summary, the standard (and exact, for a join-semilattice)
treatment.

Call sites whose callee carries a :data:`KNOWN_EFFECTS` override
contribute the override's ``exported`` set instead of the callee's raw
summary — that is the sanctioned-boundary semantics described in
:mod:`repro.analysis.effects.intrinsics`. :func:`verify_overrides`
closes the loop: for every override naming a function that exists in
the project, the *raw* inferred summary must equal the override's
``inferred`` declaration, so the manual table is an assertion, not a
parallel source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.effects.intrinsics import (
    KNOWN_EFFECTS,
    external_effects,
    method_effects,
)
from repro.analysis.effects.lattice import Effect, EffectSummary, Origin
from repro.analysis.effects.project import CallSite, EffectProject


def _resolve_project_target(
    project: EffectProject, site: CallSite
) -> str | None:
    """The project function a call site binds to, if any."""
    if site.kind != "name" or site.target is None:
        return None
    if site.target in project.functions:
        return site.target
    constructor = f"{site.target}.__init__"
    if constructor in project.functions:
        return constructor
    return None


def _external_contribution(site: CallSite, path: str) -> EffectSummary:
    """Intrinsic effects of a call that resolved outside the project."""
    if site.kind == "name" and site.target is not None:
        effects = external_effects(site.target, site.node)
        detail = f"{site.target}()"
    elif site.kind == "method" and site.target is not None:
        effects = method_effects(site.target)
        if (
            site.target == "save"
            and site.receiver is not None
            and "checkpoint" in site.receiver.split(".")[-1].lower()
        ):
            # ``checkpointer.save(...)`` is the sanctioned journaling
            # write (see KNOWN_EFFECTS for Checkpointer.save).
            effects = effects | {Effect.IO}
        detail = f".{site.target}() call"
    else:
        return EffectSummary.empty()
    if site.sorted_wrapped:
        effects = effects - {Effect.NONDET_ITERATION}
    if not effects:
        return EffectSummary.empty()
    origin = Origin(path=path, line=site.line, detail=detail)
    return EffectSummary.of((effect, origin) for effect in effects)


def _override_contribution(
    site: CallSite, path: str
) -> EffectSummary | None:
    """The exported override summary, when the callee has one."""
    if site.kind != "name" or site.target is None:
        return None
    override = KNOWN_EFFECTS.get(site.target)
    if override is None:
        return None
    origin = Origin(
        path=path,
        line=site.line,
        detail=f"{site.target}() [declared override]",
    )
    return EffectSummary.of(
        (effect, origin) for effect in override.exported
    )


def _tarjan_sccs(
    nodes: list[str], edges: dict[str, list[str]]
) -> list[list[str]]:
    """Iterative Tarjan; components are emitted callees-first."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_index = work[-1]
            if edge_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = edges.get(node, [])
            while edge_index < len(successors):
                successor = successors[edge_index]
                edge_index += 1
                if successor not in index:
                    work[-1] = (node, edge_index)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def infer_effects(project: EffectProject) -> EffectProject:
    """Fill in ``project.summaries`` and ``project.reaches_sink``."""
    names = sorted(project.functions)
    edges: dict[str, list[str]] = {}
    for name in names:
        info = project.functions[name]
        out: list[str] = []
        for site in info.calls:
            target = _resolve_project_target(project, site)
            if target is not None and target != name:
                out.append(target)
        edges[name] = out

    for component in _tarjan_sccs(names, edges):
        member_set = set(component)
        joined = EffectSummary.empty()
        sinks: set[str] = set()
        for member in component:
            info = project.functions[member]
            joined = joined.join(info.direct)
            if info.hash_sink:
                sinks.add("hash")
            if info.checkpoint_sink:
                sinks.add("checkpoint")
            for site in info.calls:
                target = _resolve_project_target(project, site)
                if target is not None:
                    sinks.update(project.reaches_sink.get(target, ()))
                override = _override_contribution(site, info.display_path)
                if override is not None:
                    joined = joined.join(override)
                    continue
                if target is not None:
                    if target in member_set:
                        continue  # intra-component: joined below anyway
                    callee_summary = project.summaries.get(target)
                    if callee_summary is not None:
                        joined = joined.join(callee_summary)
                    continue
                joined = joined.join(
                    _external_contribution(site, info.display_path)
                )
        frozen = frozenset(sinks)
        for member in component:
            project.summaries[member] = joined
            project.reaches_sink[member] = frozen
    return project


@dataclass(frozen=True)
class OverrideMismatch:
    """One KNOWN_EFFECTS entry whose declaration drifted from the code."""

    qualified: str
    declared: tuple[str, ...]
    inferred: tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"{self.qualified}: declared inferred effects "
            f"{list(self.declared)} but inference derived "
            f"{list(self.inferred)}"
        )


def verify_overrides(project: EffectProject) -> list[OverrideMismatch]:
    """Check every resolvable override against the raw inferred summary.

    Entries whose function is absent from the project (e.g. when only
    a fixture subtree is analyzed) are skipped; the test suite runs
    this over ``src/`` where every entry must resolve.
    """
    if not project.summaries:
        infer_effects(project)
    mismatches: list[OverrideMismatch] = []
    for qualified in sorted(KNOWN_EFFECTS):
        override = KNOWN_EFFECTS[qualified]
        summary = project.summaries.get(qualified)
        if summary is None:
            continue
        if summary.effects != override.inferred:
            mismatches.append(
                OverrideMismatch(
                    qualified=qualified,
                    declared=tuple(
                        sorted(e.value for e in override.inferred)
                    ),
                    inferred=summary.names(),
                )
            )
    return mismatches
