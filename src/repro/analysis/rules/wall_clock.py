"""ROP002 — no wall-clock reads in library code.

Experiment results must be a pure function of traces, seeds, and
configuration. ``time.time()`` / ``datetime.now()`` in a compute path
makes behaviour depend on when the run happened — and makes the serial
and process-pool backends observably different. Timing measurement is
the job of the engine's injectable clock
(:class:`repro.engine.instrumentation.Instrumentation`), which tests
replace with a deterministic counter.

``time.perf_counter``/``time.monotonic`` *references* (e.g. as an
injectable default) are allowed; it is the *call sites* scattered
through compute code that this rule bans.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.rules.base import Rule, register

#: Canonical callables that read the wall clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    """Flags direct wall-clock reads (``time.time()``, ``datetime.now()``)."""

    rule_id: ClassVar[str] = "ROP002"
    name: ClassVar[str] = "no-wall-clock"
    description: ClassVar[str] = (
        "library code must not read the wall clock; results have to be "
        "reproducible functions of traces, seeds, and configuration."
    )
    hint: ClassVar[str] = (
        "accept an injectable clock (see "
        "repro.engine.instrumentation.Instrumentation(clock=...)) or take "
        "timestamps as parameters"
    )
    rationale: ClassVar[str] = (
        "Wall-clock reads inside library code couple results to the "
        "machine the run happened on: availability windows, timeout "
        "math, and penalty accounting silently change between runs. "
        "An injected clock lets tests pin time and lets replays reuse "
        "recorded timestamps."
    )
    example_bad: ClassVar[str] = (
        "def window_open(spec):\n"
        "    return time.time() < spec.deadline"
    )
    example_good: ClassVar[str] = (
        "def window_open(spec, now):\n"
        "    return now < spec.deadline\n"
        "# caller passes instrumentation.clock()"
    )

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.context.imports.resolve_imported(node.func)
        if resolved in _WALL_CLOCK_CALLS:
            self.report(node, f"wall-clock read {resolved}() in library code")
        self.generic_visit(node)
