"""ROP005 — runtime invariants raise, they do not ``assert``.

``python -O`` strips assert statements, so an invariant guarded by a
bare ``assert`` silently stops being checked exactly when someone runs
the pipeline "optimised" in production. Library code raises a
:mod:`repro.exceptions` error instead; ``assert`` remains the right
tool in *tests*, so pytest modules (``test_*.py``, ``conftest.py``) are
exempt — the benchmark suite is pytest-driven and scanned by CI.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.rules.base import ModuleContext, Rule, register


@register
class BareAssertRule(Rule):
    """Flags ``assert`` statements in library code."""

    rule_id: ClassVar[str] = "ROP005"
    name: ClassVar[str] = "no-bare-assert"
    description: ClassVar[str] = (
        "runtime invariants in src/ must raise; assert statements vanish "
        "under python -O."
    )
    hint: ClassVar[str] = (
        "raise a repro.exceptions error (e.g. InvariantError) with a "
        "message naming the violated invariant"
    )
    rationale: ClassVar[str] = (
        "assert statements vanish under python -O, so an invariant "
        "guarded only by assert is unguarded in optimized "
        "deployments; a bare assert also raises a message-free "
        "AssertionError that names nothing about what went wrong."
    )
    example_bad: ClassVar[str] = (
        "assert demand >= 0"
    )
    example_good: ClassVar[str] = (
        "if demand < 0:\n"
        "    raise InvariantError(f'negative demand: {demand}')"
    )

    @classmethod
    def applies_to(cls, context: ModuleContext) -> bool:
        name = context.path.name
        return not (name.startswith("test_") or name == "conftest.py")

    def visit_Assert(self, node: ast.Assert) -> None:
        condition = ast.unparse(node.test)
        if len(condition) > 60:
            condition = condition[:57] + "..."
        self.report(
            node,
            f"bare assert ({condition}) is stripped under python -O",
        )
        self.generic_visit(node)
