"""ROP006 — no mutable default arguments.

A ``def f(acc=[])`` default is created once at function-definition time
and shared across every call — state leaks between calls, and between
*work units* when such a function is mapped over an executor. Defaults
must be immutable; mutable ones are constructed inside the body.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.rules.base import Rule, register

#: Builtin constructors whose call-as-default is just as shared as a
#: literal (``dict()`` default is one dict for every call).
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                         ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


@register
class MutableDefaultRule(Rule):
    """Flags mutable default argument values."""

    rule_id: ClassVar[str] = "ROP006"
    name: ClassVar[str] = "no-mutable-default-arg"
    description: ClassVar[str] = (
        "default argument values are evaluated once and shared across "
        "calls; mutable defaults leak state between calls and workers."
    )
    hint: ClassVar[str] = (
        "default to None and construct the container in the body, or use "
        "dataclasses.field(default_factory=...)"
    )
    rationale: ClassVar[str] = (
        "A mutable default is built once at definition time and "
        "shared by every call: state accumulated in one planning run "
        "silently bleeds into the next, a bug that only appears on "
        "the second invocation and never in a one-shot test."
    )
    example_bad: ClassVar[str] = (
        "def plan(apps, constraints=[]):\n"
        "    constraints.append(default_rule())"
    )
    example_good: ClassVar[str] = (
        "def plan(apps, constraints=None):\n"
        "    constraints = list(constraints or ())\n"
        "    constraints.append(default_rule())"
    )

    def _check_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is not None and _is_mutable_default(default):
                self.report(
                    default,
                    f"mutable default {ast.unparse(default)} in "
                    f"{node.name}()",
                )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
