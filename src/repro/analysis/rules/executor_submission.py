"""ROP004 — only picklable module-level callables go to the executor.

The process-pool backend pickles every work function. Lambdas and
functions defined inside another function are not picklable, so code
that hands them to an executor works under :class:`SerialExecutor` and
then explodes the first time ``--workers`` is raised — exactly the
"passes in dev, fails at scale" failure this subsystem exists to stop
at review time.

The rule looks at ``<receiver>.map(...)`` / ``<receiver>.submit(...)``
calls where the receiver plausibly names an executor (``executor``,
``session``, ``pool``, ``engine``) and flags lambda arguments and
arguments naming a function defined in a nested scope.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, dotted_name, register

_SUBMIT_METHODS = frozenset({"map", "submit"})
_EXECUTOR_NAME_PARTS = ("executor", "session", "pool", "engine")


def _looks_like_executor(receiver: ast.expr) -> bool:
    dotted = dotted_name(receiver)
    if dotted is None:
        return False
    tail = dotted.split(".")[-1].lower()
    return any(part in tail for part in _EXECUTOR_NAME_PARTS)


class _NestedFunctionCollector(ast.NodeVisitor):
    """Names of functions defined inside another function's body."""

    def __init__(self) -> None:
        self.nested: set[str] = set()
        self._depth = 0

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        if self._depth:
            self.nested.add(node.name)
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)


@register
class ExecutorSubmissionRule(Rule):
    """Flags lambdas/closures handed to ``Executor.map``/``submit``."""

    rule_id: ClassVar[str] = "ROP004"
    name: ClassVar[str] = "no-unpicklable-work-unit"
    description: ClassVar[str] = (
        "work functions submitted to an executor must be module-level "
        "callables; lambdas and closures break the process-pool backend."
    )
    hint: ClassVar[str] = (
        "define the work unit as a module-level function fn(shared, item) "
        "and pass data through the shared payload"
    )
    rationale: ClassVar[str] = (
        "Closures and lambdas submitted to a process pool either fail "
        "to pickle outright or drag their enclosing scope across the "
        "process boundary, smuggling unshared mutable state into "
        "workers. Module-level work units keep the payload explicit "
        "and picklable."
    )
    example_bad: ClassVar[str] = (
        "pool.submit(lambda: score(plan, weights))"
    )
    example_good: ClassVar[str] = (
        "def score_plan(shared, plan):\n"
        "    return score(plan, shared.weights)\n"
        "# pool.submit(score_plan, shared, plan)"
    )

    _nested_names: set[str]

    def check(self) -> list[Finding]:
        collector = _NestedFunctionCollector()
        collector.visit(self.context.tree)
        self._nested_names = collector.nested
        return super().check()

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SUBMIT_METHODS
            and _looks_like_executor(node.func.value)
        ):
            for arg in node.args:
                self._check_work_arg(node, arg)
        self.generic_visit(node)

    def _check_work_arg(self, call: ast.Call, arg: ast.expr) -> None:
        if isinstance(arg, ast.Lambda):
            self.report(
                call,
                "lambda submitted to an executor is not picklable",
            )
        elif isinstance(arg, ast.Name) and arg.id in self._nested_names:
            self.report(
                call,
                f"nested function {arg.id!r} submitted to an executor is "
                "not picklable",
            )
