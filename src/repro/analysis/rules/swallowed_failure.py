"""ROP012 — failures are handled or propagated, never silently eaten.

The resilience layer (:mod:`repro.engine.resilience`) is built on a
discipline this rule enforces statically: every failure is either
*recovered from* (retried under a bounded budget, degraded with a
counter bumped) or *propagated* — it is never discarded. Three shapes
violate that discipline:

* ``except:`` with no exception type catches everything — including
  ``KeyboardInterrupt`` and ``SystemExit`` — so an operator cannot even
  stop a run that is looping on a swallowed error;
* ``except Exception:`` (or ``BaseException``) whose body is only
  ``pass``/``...`` makes any failure look like success with no record
  that anything happened;
* a ``while True:`` loop that catches an exception and ``continue``\\ s
  retries forever — a persistent failure becomes a busy hang instead of
  an error, which is exactly the stuck-worker state the resilient
  executor exists to kill.

Narrow handlers with an empty body (``except OSError: pass`` around
best-effort cleanup) stay legal: the author named the precise failure
they are choosing to ignore. Broad handlers that *do something* (log,
count, classify, re-raise) also stay legal — breadth is fine when the
failure is recorded or routed, only silent breadth is not.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.rules.base import ModuleContext, Rule, register

#: Exception names too broad to swallow silently.
_BROAD = {"Exception", "BaseException"}


def _caught_names(node: ast.expr) -> set[str]:
    """The exception names an ``except`` clause catches."""
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    names: set[str] = set()
    for entry in nodes:
        if isinstance(entry, ast.Name):
            names.add(entry.id)
        elif isinstance(entry, ast.Attribute):
            names.add(entry.attr)
    return names


def _is_noop(body: list[ast.stmt]) -> bool:
    """Whether a handler body discards the failure without a trace."""
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring or bare `...`
        return False
    return True


def _contains(node: ast.AST, kinds: tuple[type, ...]) -> bool:
    return any(isinstance(child, kinds) for child in ast.walk(node))


@register
class SwallowedFailureRule(Rule):
    """Flags bare excepts, silent broad excepts, and unbounded retries."""

    rule_id: ClassVar[str] = "ROP012"
    name: ClassVar[str] = "swallowed-failure"
    description: ClassVar[str] = (
        "failures must be recovered or propagated: no bare except, no "
        "silent except-Exception, no retry loops without a bound."
    )
    hint: ClassVar[str] = (
        "catch the narrowest exception recovery actually handles, record "
        "or re-raise anything broader, and give retry loops a bounded "
        "budget that ends in an explicit raise"
    )
    rationale: ClassVar[str] = (
        "An except that swallows everything converts crashes into "
        "silently wrong results: a failed shard looks like an empty "
        "shard, and the fault-tolerance layer cannot retry what it "
        "never saw. Narrow handlers that record or re-raise keep "
        "failures observable."
    )
    example_bad: ClassVar[str] = (
        "try:\n"
        "    shard_result = run_shard(shard)\n"
        "except Exception:\n"
        "    pass"
    )
    example_good: ClassVar[str] = (
        "try:\n"
        "    shard_result = run_shard(shard)\n"
        "except ShardTimeout as error:\n"
        "    instrumentation.record_failure(shard, error)\n"
        "    raise"
    )

    @classmethod
    def applies_to(cls, context: ModuleContext) -> bool:
        name = context.path.name
        return not (name.startswith("test_") or name == "conftest.py")

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            if not _contains(node, (ast.Raise,)):
                self.report(
                    node,
                    "bare except swallows every failure, including "
                    "KeyboardInterrupt and SystemExit",
                )
        elif _caught_names(node.type) & _BROAD and _is_noop(node.body):
            caught = " | ".join(sorted(_caught_names(node.type) & _BROAD))
            self.report(
                node,
                f"except {caught} with an empty body makes any failure "
                "look like success",
            )
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        if isinstance(node.test, ast.Constant) and node.test.value is True:
            for handler in self._handlers_under(node):
                if _contains(handler, (ast.Continue,)) and not _contains(
                    handler, (ast.Raise, ast.Break, ast.Return)
                ):
                    self.report(
                        handler,
                        "retrying forever inside `while True` turns a "
                        "persistent failure into a hang; bound the retries",
                    )
        self.generic_visit(node)

    @staticmethod
    def _handlers_under(loop: ast.While) -> list[ast.ExceptHandler]:
        """Except handlers whose ``continue`` re-enters *this* loop.

        Nested function bodies and nested loops are excluded — a
        ``continue`` there targets a different loop (or is illegal), so
        only handlers of ``try`` statements directly in this loop's
        statement tree count.
        """
        handlers: list[ast.ExceptHandler] = []
        stack: list[ast.stmt] = list(loop.body)
        while stack:
            statement = stack.pop()
            if isinstance(
                statement,
                (
                    ast.While,
                    ast.For,
                    ast.AsyncFor,
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                ),
            ):
                continue
            if isinstance(statement, ast.Try):
                handlers.extend(statement.handlers)
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, ast.stmt):
                    stack.append(child)
                elif isinstance(child, ast.ExceptHandler):
                    stack.extend(child.body)
        return handlers
