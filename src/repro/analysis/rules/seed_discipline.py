"""ROP015: RNG objects must not cross process or checkpoint boundaries.

A ``numpy.random.Generator`` (or ``random.Random``) handed to an
executor submission gets pickled into the worker — every worker then
replays the *same* stream, or worse, the stream depends on submission
order. A generator dropped into a checkpoint payload is not
JSON-serializable and, even via state dicts, couples resume behaviour
to incidental draw history. The sanctioned patterns are value-level:
derive an integer per-shard seed (``derive_shard_seed``) or thread an
explicit seed through ``repro.util.rng`` and construct the generator
on the far side of the boundary. Explicit state extraction
(``rng.bit_generator.state``) is attribute access, not a bare
generator, and passes untouched.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.base import ModuleContext, Rule, dotted_name, register

#: Callable tails whose result is an RNG object.
_RNG_CONSTRUCTOR_TAILS = frozenset(
    {"derive_rng", "default_rng", "Generator", "RandomState"}
)

#: Canonical names whose result is an RNG object.
_RNG_CONSTRUCTOR_CANONICAL = frozenset(
    {"random.Random", "numpy.random.RandomState"}
)

#: Annotation tails marking a parameter as an RNG object.
_RNG_ANNOTATION_TAILS = frozenset({"Generator", "RandomState", "Random"})

_EXECUTOR_NAME_PARTS = ("executor", "session", "pool", "engine")
_CHECKPOINT_NAME_PARTS = ("checkpoint",)
_SUBMIT_METHODS = frozenset({"map", "submit"})


def _tail(dotted: str | None) -> str | None:
    return dotted.rsplit(".", 1)[-1] if dotted else None


def _receiver_tail_matches(node: ast.expr, parts: tuple[str, ...]) -> bool:
    dotted = dotted_name(node)
    if dotted is None:
        return False
    tail = dotted.split(".")[-1].lower()
    return any(part in tail for part in parts)


def _annotation_tail(annotation: ast.expr | None) -> str | None:
    if annotation is None:
        return None
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1].strip("\"'")
    return _tail(dotted_name(node))


@register
class SeedDisciplineViolation(Rule):
    """Flag bare RNG objects at executor/checkpoint boundaries."""

    rule_id: ClassVar[str] = "ROP015"
    name: ClassVar[str] = "rng-across-boundary"
    description: ClassVar[str] = (
        "RNG object crosses a process or checkpoint boundary instead "
        "of a derived seed."
    )
    hint: ClassVar[str] = (
        "Pass derive_shard_seed(base_seed, index) (an int) across the "
        "boundary and rebuild the generator with derive_rng(seed) on "
        "the other side; checkpoint rng.bit_generator.state, never "
        "the generator itself."
    )
    rationale: ClassVar[str] = (
        "Pickling a live Generator across a process boundary forks "
        "its stream: parent and worker continue from the same state "
        "and draw identical 'random' numbers, correlating shards that "
        "must be independent. Sending a derived integer seed gives "
        "each side its own stream."
    )
    example_bad: ClassVar[str] = (
        "pool.submit(run_shard, shard, rng)"
    )
    example_good: ClassVar[str] = (
        "seed = derive_shard_seed(base_seed, shard.index)\n"
        "pool.submit(run_shard, shard, seed)\n"
        "# worker: rng = derive_rng(seed)"
    )
    default_severity: ClassVar[Severity] = Severity.ERROR

    def __init__(self, context: ModuleContext) -> None:
        super().__init__(context)
        self._rng_names: set[str] = set()

    def check(self) -> list[Finding]:
        self._collect_rng_names()
        if self._rng_names:
            self.visit(self.context.tree)
        return self.findings

    # -- collection ----------------------------------------------------
    def _is_rng_call(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        canonical = self.context.imports.resolve_node(node.func)
        if canonical in _RNG_CONSTRUCTOR_CANONICAL:
            return True
        if _tail(canonical) in _RNG_CONSTRUCTOR_TAILS:
            return True
        # SeedSequenceFactory.generator(...) — factory-shaped receiver.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "generator"
        ):
            return True
        return False

    def _collect_rng_names(self) -> None:
        for node in ast.walk(self.context.tree):
            if isinstance(node, ast.Assign) and self._is_rng_call(
                node.value
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._rng_names.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and (
                    _annotation_tail(node.annotation)
                    in _RNG_ANNOTATION_TAILS
                    or (
                        node.value is not None
                        and self._is_rng_call(node.value)
                    )
                ):
                    self._rng_names.add(node.target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                    if (
                        _annotation_tail(arg.annotation)
                        in _RNG_ANNOTATION_TAILS
                    ):
                        self._rng_names.add(arg.arg)

    # -- boundary scanning ---------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in _SUBMIT_METHODS and _receiver_tail_matches(
                node.func.value, _EXECUTOR_NAME_PARTS
            ):
                self._scan_boundary(node, "an executor submission", True)
            elif attr == "save" and _receiver_tail_matches(
                node.func.value, _CHECKPOINT_NAME_PARTS
            ):
                self._scan_boundary(node, "a checkpoint save", False)
        self.generic_visit(node)

    def _scan_boundary(
        self, node: ast.Call, boundary: str, skip_callable: bool
    ) -> None:
        args = list(node.args)
        if skip_callable and args:
            head, args = args[0], args[1:]
            # functools.partial(worker, rng, ...) bakes the generator
            # into the pickled callable — same violation.
            if isinstance(head, ast.Call) and _tail(
                self.context.imports.resolve_node(head.func)
            ) == "partial":
                args = [*head.args[1:], *args]
                args.extend(kw.value for kw in head.keywords)
        for value in args:
            self._scan_value(value, boundary)
        for keyword in node.keywords:
            self._scan_value(keyword.value, boundary)

    def _scan_value(self, node: ast.expr, boundary: str) -> None:
        """Look for bare RNG names in value position.

        Deliberately shallow: attribute access
        (``rng.bit_generator.state``) and arbitrary calls are
        sanctioned transformations, so recursion only follows display
        containers and iterable unpacking.
        """
        if isinstance(node, ast.Name):
            if node.id in self._rng_names:
                self.report(
                    node,
                    f"RNG object '{node.id}' crosses {boundary}; "
                    f"pass a derived integer seed instead.",
                )
        elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self._scan_value(element, boundary)
        elif isinstance(node, ast.Starred):
            self._scan_value(node.value, boundary)
        elif isinstance(node, ast.Dict):
            for value in node.values:
                self._scan_value(value, boundary)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            self._scan_value(node.elt, boundary)
