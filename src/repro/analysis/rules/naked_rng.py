"""ROP001 — all randomness flows through :mod:`repro.util.rng`.

Backend-independent determinism (serial vs process-pool runs producing
bit-identical results) relies on every random stream being derived from
one root seed in the driver process. A single
``np.random.default_rng()`` or ``random.random()`` call elsewhere
reintroduces nondeterminism that only shows up as occasional
irreproducible experiment results.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.rules.base import ModuleContext, Rule, register

#: The module that owns RNG construction — exempt by design.
SANCTIONED_MODULE_SUFFIX = "repro/util/rng.py"

#: Canonical call prefixes that construct or draw from naked RNG state.
_BANNED_PREFIXES = ("random.", "numpy.random.")


@register
class NakedRngRule(Rule):
    """Flags RNG construction/use outside ``repro/util/rng.py``."""

    rule_id: ClassVar[str] = "ROP001"
    name: ClassVar[str] = "no-naked-rng"
    description: ClassVar[str] = (
        "random.* and numpy.random.* calls are only allowed inside "
        "repro/util/rng.py; everywhere else randomness must come from a "
        "seeded generator passed in by the caller."
    )
    hint: ClassVar[str] = (
        "derive a generator via repro.util.rng.derive_rng / "
        "SeedSequenceFactory and thread it through as an argument"
    )
    rationale: ClassVar[str] = (
        "An ambient generator makes every run a different experiment: "
        "placement plans and synthetic workloads stop being "
        "reproducible, and a CI failure cannot be replayed. Seeding "
        "through derive_rng keeps each component's stream independent "
        "and replayable from the run manifest."
    )
    example_bad: ClassVar[str] = (
        "import random\n"
        "def jitter(delay):\n"
        "    return delay * random.random()"
    )
    example_good: ClassVar[str] = (
        "def jitter(delay, rng):\n"
        "    return delay * rng.random()\n"
        "# caller: jitter(d, derive_rng(seed))"
    )

    @classmethod
    def applies_to(cls, context: ModuleContext) -> bool:
        return not context.posix_path().endswith(SANCTIONED_MODULE_SUFFIX)

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.context.imports.resolve_imported(node.func)
        if resolved is not None and self._is_banned(resolved):
            self.report(
                node,
                f"naked RNG call {resolved}() outside repro/util/rng.py",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_banned(resolved: str) -> bool:
        return any(resolved.startswith(prefix) for prefix in _BANNED_PREFIXES)
