"""Resource-lifecycle rules (ROP017–ROP020) over the typestate checker.

All four rules filter one finding category out of a single shared
checker run (cached on
:attr:`repro.analysis.effects.project.ProjectContext.typestate`), so
the per-function CFG fixpoints execute once per analysis regardless of
how many of these rules are selected.

The imports from the typestate package are deferred into method bodies
for the same reason as in :mod:`repro.analysis.rules.effect_rules`:
rule modules load while the analysis package may still be mid-import.
"""

from __future__ import annotations

from typing import ClassVar

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.base import ProjectRule, register


class _TypestateRule(ProjectRule):
    """Shared plumbing: report every finding of one category."""

    category: ClassVar[str] = ""

    def check(self) -> list[Finding]:
        for finding in self.project.typestate:
            if finding.category != self.category:
                continue
            self.report_at(
                path=finding.path,
                line=finding.line,
                column=finding.column + 1,
                message=finding.message,
            )
        return self.findings


@register
class LeakOnPath(_TypestateRule):
    """ROP017: a resource stays open on some path out of its function.

    The paths include the exception edges the upgraded CFG models, so
    an acquire whose release can be skipped by a raise in between is
    flagged even when the happy path is spotless — exactly the shape
    of the PR-5 ``broadcast.py`` SharedMemory leak.
    """

    rule_id: ClassVar[str] = "ROP017"
    name: ClassVar[str] = "resource-leak-on-path"
    description: ClassVar[str] = (
        "A tracked resource (SharedMemory segment, process pool, "
        "engine, file handle, temp file) is acquired but not released "
        "on some path — including exception paths."
    )
    hint: ClassVar[str] = (
        "Release on every path: use a with statement, a try/finally, "
        "or transfer ownership (return it, store it on an owner, or "
        "register it with a cleanup registry)."
    )
    rationale: ClassVar[str] = (
        "A long-running planner leaks one segment, pool, or temp file "
        "per failed request; /dev/shm fills and the shared pool "
        "degrades for every tenant. Exception paths are where manual "
        "audits miss releases, so the checker walks them explicitly."
    )
    example_bad: ClassVar[str] = (
        "segment = SharedMemory(create=True, size=n)\n"
        "copy_payload(segment)   # raises -> segment leaks\n"
        "segment.unlink()"
    )
    example_good: ClassVar[str] = (
        "segment = SharedMemory(create=True, size=n)\n"
        "try:\n"
        "    copy_payload(segment)\n"
        "finally:\n"
        "    segment.unlink()"
    )
    default_severity: ClassVar[Severity] = Severity.ERROR
    category: ClassVar[str] = "leak"


@register
class UseAfterRelease(_TypestateRule):
    """ROP018: a method call on a resource that is already released.

    Reported only when the resource is released on *every* path
    reaching the use (a must-fact), so conditional releases never
    produce false positives.
    """

    rule_id: ClassVar[str] = "ROP018"
    name: ClassVar[str] = "use-after-release"
    description: ClassVar[str] = (
        "A resource is used (method call) after it was released on "
        "every path reaching the use."
    )
    hint: ClassVar[str] = (
        "Move the use before the release, or re-acquire the resource; "
        "released handles raise or silently misbehave."
    )
    rationale: ClassVar[str] = (
        "Using a closed pool or an unlinked segment raises at best "
        "and corrupts shared state at worst; the failure surfaces far "
        "from the release that caused it, so the checker pins the "
        "ordering statically."
    )
    example_bad: ClassVar[str] = (
        "pool.shutdown()\n"
        "pool.submit(task)   # pool is gone"
    )
    example_good: ClassVar[str] = (
        "pool.submit(task)\n"
        "pool.shutdown()"
    )
    default_severity: ClassVar[Severity] = Severity.ERROR
    category: ClassVar[str] = "use-after-release"


@register
class DoubleRelease(_TypestateRule):
    """ROP019: releasing a non-idempotent resource twice.

    ``Executor.shutdown`` and ``broadcast.release`` are idempotent and
    exempt; ``SharedMemory.unlink`` raises ``FileNotFoundError`` the
    second time, which usually lands inside cleanup code and masks the
    original error.
    """

    rule_id: ClassVar[str] = "ROP019"
    name: ClassVar[str] = "double-release"
    description: ClassVar[str] = (
        "A resource whose release is not idempotent may be released "
        "twice along some path."
    )
    hint: ClassVar[str] = (
        "Release exactly once (single owner), or go through an "
        "idempotent wrapper like repro.engine.broadcast.release()."
    )
    rationale: ClassVar[str] = (
        "The second unlink raises inside except/finally blocks, "
        "replacing the real error with a FileNotFoundError and "
        "aborting the rest of the cleanup."
    )
    example_bad: ClassVar[str] = (
        "segment.unlink()\n"
        "segment.unlink()   # FileNotFoundError"
    )
    example_good: ClassVar[str] = (
        "release(segment.name)  # idempotent registry release\n"
        "release(segment.name)  # safe no-op"
    )
    default_severity: ClassVar[Severity] = Severity.ERROR
    category: ClassVar[str] = "double-release"


@register
class UnownedResource(_TypestateRule):
    """ROP020: an acquired resource that nothing owns.

    Either dropped on the floor in the acquiring statement
    (``ProcessPoolExecutor().submit(...)``) or passed straight into an
    external callable with no local binding — in both cases no code
    *can* release it.
    """

    rule_id: ClassVar[str] = "ROP020"
    name: ClassVar[str] = "escaping-unowned-resource"
    description: ClassVar[str] = (
        "An acquired resource is never bound to a name nor transferred "
        "to an owner, so nothing can ever release it."
    )
    hint: ClassVar[str] = (
        "Bind the resource to a name and release it (or use a with "
        "statement); to hand it off, return it or store it on an "
        "owning object/registry."
    )
    rationale: ClassVar[str] = (
        "An unowned pool or segment is a guaranteed leak, not a "
        "possible one: no reference survives the statement, so even "
        "careful callers cannot clean it up."
    )
    example_bad: ClassVar[str] = (
        "ProcessPoolExecutor(max_workers=4).submit(task)"
    )
    example_good: ClassVar[str] = (
        "with ProcessPoolExecutor(max_workers=4) as pool:\n"
        "    pool.submit(task)"
    )
    default_severity: ClassVar[Severity] = Severity.ERROR
    category: ClassVar[str] = "unowned"
