"""Rule framework: module context, import resolution, and the registry.

Every rule is an :class:`ast.NodeVisitor` subclass registered under a
stable ``ROPxxx`` id. Rules receive a :class:`ModuleContext` — the
parsed tree plus the import alias map — and emit
:class:`~repro.analysis.findings.Finding` objects through
:meth:`Rule.report`.

The import map is what lets rules reason about *canonical* dotted
names: ``np.random.default_rng()`` and
``numpy.random.default_rng()`` both resolve to
``numpy.random.default_rng`` regardless of how the module spelled its
imports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar, Iterator

from repro.analysis.findings import Finding, Severity


def dotted_name(node: ast.AST) -> str | None:
    """Collapse a ``Name``/``Attribute`` chain into ``a.b.c`` form.

    Returns ``None`` when the chain is rooted in anything other than a
    plain name (a call result, a subscript, ``self`` attributes are
    still returned — the resolver decides whether the root matters).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportMap:
    """Local-name to canonical-module resolution for one module.

    >>> import ast as _ast
    >>> imports = ImportMap(_ast.parse("import numpy as np"))
    >>> imports.resolve("np.random.default_rng")
    'numpy.random.default_rng'
    """

    def __init__(self, tree: ast.Module) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else local
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        """Rewrite the first segment of ``dotted`` through the alias map."""
        head, _, rest = dotted.partition(".")
        target = self._aliases.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def resolve_node(self, node: ast.AST) -> str | None:
        """Canonical dotted name of an expression, or ``None``."""
        dotted = dotted_name(node)
        return self.resolve(dotted) if dotted is not None else None

    def resolve_imported(self, node: ast.AST) -> str | None:
        """Canonical name, but only when the root is an imported name.

        Rules banning module calls (``random.*``, ``time.time``) use
        this form so a *local variable* that happens to shadow a module
        name never produces a false positive.
        """
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self._aliases.get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one analyzed module."""

    path: Path
    display_path: str
    tree: ast.Module
    source_lines: list[str]
    imports: ImportMap = field(init=False)

    def __post_init__(self) -> None:
        self.imports = ImportMap(self.tree)

    def posix_path(self) -> str:
        return self.path.as_posix()


class Rule(ast.NodeVisitor):
    """Base class for one invariant check.

    Subclasses set the class-level metadata, implement ``visit_*``
    methods, and call :meth:`report` for each violation. A fresh rule
    instance is created per module, so instances may keep per-module
    state freely.
    """

    rule_id: ClassVar[str] = "ROP000"
    name: ClassVar[str] = "abstract"
    description: ClassVar[str] = ""
    hint: ClassVar[str] = ""
    #: Why the invariant matters in this codebase — shown by
    #: ``ropus lint --explain ROPxxx`` alongside the examples.
    rationale: ClassVar[str] = ""
    #: A minimal violating snippet (``--explain`` prints it verbatim).
    example_bad: ClassVar[str] = ""
    #: The sanctioned equivalent of :attr:`example_bad`.
    example_good: ClassVar[str] = ""
    default_severity: ClassVar[Severity] = Severity.ERROR
    #: ``module`` rules visit one file at a time; ``project`` rules
    #: (see :class:`ProjectRule`) run once over the whole analyzed
    #: tree after every module has been parsed.
    scope: ClassVar[str] = "module"

    def __init__(self, context: ModuleContext) -> None:
        self.context = context
        self.findings: list[Finding] = []

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def applies_to(cls, context: ModuleContext) -> bool:
        """Whether this rule runs on the module at all (path exemptions)."""
        return True

    def check(self) -> list[Finding]:
        """Run the visitor over the module and return its findings."""
        self.visit(self.context.tree)
        return self.findings

    # -- reporting -----------------------------------------------------
    def report(self, node: ast.AST, message: str) -> None:
        """Record one violation anchored at ``node``."""
        self.findings.append(
            Finding(
                path=self.context.display_path,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0) + 1,
                rule=self.rule_id,
                message=message,
                hint=self.hint,
                severity=self.default_severity,
            )
        )


class ProjectRule(Rule):
    """Base class for interprocedural (whole-project) checks.

    A project rule is constructed once per analysis run with a
    :class:`repro.analysis.effects.project.ProjectContext` — every
    parsed module plus the lazily computed effect inference — and
    returns findings that may anchor anywhere in the tree. Inline
    ``# ropus: ignore`` suppression and the baseline still apply,
    keyed on the file each finding lands in.
    """

    scope: ClassVar[str] = "project"

    def __init__(self, project: Any) -> None:  # ProjectContext
        self.project = project
        self.findings: list[Finding] = []

    def check(self) -> list[Finding]:  # pragma: no cover - abstract
        raise NotImplementedError

    def report_at(
        self,
        *,
        path: str,
        line: int,
        column: int,
        message: str,
    ) -> None:
        """Record one violation at an explicit location."""
        self.findings.append(
            Finding(
                path=path,
                line=line,
                column=column,
                rule=self.rule_id,
                message=message,
                hint=self.hint,
                severity=self.default_severity,
            )
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry.

    Duplicate ids are a programming error in the analysis package
    itself, so they fail loudly at import time.
    """
    if rule_class.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.rule_id!r}")
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def registered_rules() -> dict[str, type[Rule]]:
    """The registry, keyed by rule id, in sorted-id order."""
    return {rule_id: _REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)}


def iter_rule_classes() -> Iterator[type[Rule]]:
    for rule_id in sorted(_REGISTRY):
        yield _REGISTRY[rule_id]
