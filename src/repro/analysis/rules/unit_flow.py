"""ROP008–ROP010 — flow-sensitive unit discipline for the QoS math.

The paper's formulas mix three scalar shapes ``float`` cannot
distinguish: fractions in ``[0, 1]``, percentages in ``[0, 100]``, and
slot counts. ``repro.units`` gives them ``Annotated`` markers; the
:mod:`repro.analysis.dataflow` interpreter propagates those markers
through assignments, arithmetic, calls, and branches; these rules turn
the interpreter's proven facts into findings:

* **ROP008** (``unit-confusion``) — a ``Percent`` meets a
  ``Fraction01``/``Probability`` in arithmetic, comparison, an
  annotated assignment, or a call argument, with no explicit
  ``/ 100.0`` / ``* 100.0`` conversion on the path. The canonical bug:
  comparing a measured degraded *fraction* against ``M_degr`` still in
  percent — off by 100x, silently.
* **ROP009** (``interval-violation``) — a value whose interval
  provably misses its declared domain: a probability assigned,
  passed, returned, or compared outside ``[0, 1]``.
* **ROP010** (``unconverted-return``) — a function annotated to
  return one unit returning an expression of an incompatible unit.

All three share one fixpoint per module (cached on the context), so
enabling them costs one dataflow pass, not three.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.dataflow import analyze_module
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.base import Rule, register


class _DataflowRule(Rule):
    """Base for rules that read the shared module dataflow analysis."""

    #: Which diagnostic kinds this rule reports.
    kinds: ClassVar[tuple[str, ...]] = ()

    def check(self) -> list[Finding]:
        analysis = analyze_module(self.context)
        for kind in self.kinds:
            for function, diagnostic in analysis.diagnostics(kind):
                self.report(
                    diagnostic.node,
                    f"in {function.qualname}(): {diagnostic.message}",
                )
        return self.findings


@register
class UnitConfusionRule(_DataflowRule):
    """Flags percent/fraction (and cross-dimension) mixing without conversion."""

    rule_id: ClassVar[str] = "ROP008"
    name: ClassVar[str] = "unit-confusion"
    description: ClassVar[str] = (
        "a Percent value may not meet a Fraction01/Probability (or a "
        "slot count meet CPU shares) in arithmetic, comparisons, "
        "annotated assignments, or unit-annotated parameters without "
        "an explicit conversion; a missed /100 corrupts every "
        "downstream compliance number."
    )
    hint: ClassVar[str] = (
        "convert explicitly (`/ 100.0` to a fraction, `* 100.0` to a "
        "percent) or use the m_degr_fraction/compliance_fraction "
        "properties"
    )
    rationale: ClassVar[str] = (
        "The paper's QoS metrics come in both percent (0-100) and "
        "fraction (0-1) forms; mixing them without the /100 is a "
        "factor-of-100 error that still type-checks and still "
        "produces plausible-looking plans — only the tracked unit "
        "annotations make it mechanically detectable."
    )
    example_bad: ClassVar[str] = (
        "penalty = m_degr_percent * weight  # weight is Fraction01"
    )
    example_good: ClassVar[str] = (
        "penalty = (m_degr_percent / 100.0) * weight"
    )
    kinds: ClassVar[tuple[str, ...]] = ("unit-mix", "call-arg")


@register
class IntervalViolationRule(_DataflowRule):
    """Flags values provably outside their declared unit domain."""

    rule_id: ClassVar[str] = "ROP009"
    name: ClassVar[str] = "interval-violation"
    description: ClassVar[str] = (
        "a value whose interval provably lies outside its declared "
        "unit domain (a probability assigned, passed, returned, or "
        "compared outside [0, 1]) indicates dead validation or a "
        "missed conversion."
    )
    hint: ClassVar[str] = (
        "fix the value or the annotation; if the comparison guards "
        "impossible input, validate with the matching require_* helper "
        "instead"
    )
    rationale: ClassVar[str] = (
        "A probability compared against 50 or assigned 1.5 means the "
        "declared unit and the actual value disagree; one of them is "
        "wrong, and whichever it is, downstream consumers trusting "
        "the annotation compute garbage."
    )
    example_bad: ClassVar[str] = (
        "availability: Probability = 99.9"
    )
    example_good: ClassVar[str] = (
        "availability: Probability = 0.999"
    )
    kinds: ClassVar[tuple[str, ...]] = ("interval",)


@register
class UnconvertedReturnRule(_DataflowRule):
    """Flags returns whose unit contradicts the function's annotation."""

    rule_id: ClassVar[str] = "ROP010"
    name: ClassVar[str] = "unconverted-return"
    description: ClassVar[str] = (
        "a function annotated to return one unit (e.g. Fraction01) "
        "must not return an expression of an incompatible unit (e.g. "
        "Percent); callers trust the annotation."
    )
    hint: ClassVar[str] = (
        "apply the conversion before returning, or correct the return "
        "annotation"
    )
    rationale: ClassVar[str] = (
        "The return annotation is the only unit contract callers "
        "see; returning a percent from a function annotated "
        "Fraction01 poisons every call site at once, and the error "
        "surfaces far from the function that caused it."
    )
    example_bad: ClassVar[str] = (
        "def degradation(node) -> Fraction01:\n"
        "    return node.m_degr_percent"
    )
    example_good: ClassVar[str] = (
        "def degradation(node) -> Fraction01:\n"
        "    return node.m_degr_percent / 100.0"
    )
    kinds: ClassVar[tuple[str, ...]] = ("return",)


@register
class UnvalidatedBoundaryRule(Rule):
    """ROP011 — unit-annotated dataclass fields must be validated.

    A frozen dataclass is the translation pipeline's trust boundary:
    once constructed, every consumer believes its fields. A field
    annotated with a unit marker therefore must be range-checked in
    ``__post_init__`` — either through the matching ``require_*``
    helper or an explicit comparison — or the annotation is a promise
    nobody keeps.
    """

    rule_id: ClassVar[str] = "ROP011"
    name: ClassVar[str] = "unvalidated-boundary"
    description: ClassVar[str] = (
        "a dataclass field annotated with a repro.units marker must be "
        "validated in __post_init__ (require_* call or explicit range "
        "comparison); an unchecked unit annotation is an unenforced "
        "contract."
    )
    hint: ClassVar[str] = (
        "add a __post_init__ validating the field with "
        "require_fraction/require_probability or an explicit range "
        "check"
    )
    rationale: ClassVar[str] = (
        "Dataclasses are the ingestion boundary: workload specs and "
        "SLA parameters enter here from config files. A unit "
        "annotation without a __post_init__ check documents a range "
        "nothing enforces, so a 99.9 meant as 0.999 sails straight "
        "into the planner."
    )
    example_bad: ClassVar[str] = (
        "@dataclass(frozen=True)\n"
        "class Sla:\n"
        "    target: Probability"
    )
    example_good: ClassVar[str] = (
        "@dataclass(frozen=True)\n"
        "class Sla:\n"
        "    target: Probability\n"
        "    def __post_init__(self):\n"
        "        require_probability(self.target, 'target')"
    )
    default_severity: ClassVar[Severity] = Severity.ERROR

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._is_dataclass(node):
            self._check_dataclass(node)
        self.generic_visit(node)

    def _is_dataclass(self, node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            canonical = self.context.imports.resolve_node(target)
            if canonical in {"dataclasses.dataclass", "dataclass"}:
                return True
        return False

    def _check_dataclass(self, node: ast.ClassDef) -> None:
        from repro.analysis.dataflow.signatures import annotation_unit

        unit_fields: dict[str, tuple[ast.AnnAssign, str]] = {}
        post_init: ast.FunctionDef | None = None
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                unit = annotation_unit(
                    statement.annotation, self.context.imports
                )
                if unit is not None:
                    unit_fields[statement.target.id] = (statement, unit.name)
            elif (
                isinstance(statement, ast.FunctionDef)
                and statement.name == "__post_init__"
            ):
                post_init = statement

        if not unit_fields:
            return
        validated = (
            self._validated_fields(post_init) if post_init is not None else set()
        )
        for field_name, (statement, unit_name) in unit_fields.items():
            if field_name not in validated:
                where = (
                    "no __post_init__ exists"
                    if post_init is None
                    else "__post_init__ never checks it"
                )
                self.report(
                    statement,
                    f"field {field_name!r} of {node.name} is annotated "
                    f"{unit_name} but {where}",
                )

    def _validated_fields(self, post_init: ast.FunctionDef) -> set[str]:
        """Field names ``__post_init__`` validates.

        A field counts as validated when ``self.<field>`` appears as an
        argument to a ``require_*``-style call or as an operand of a
        comparison (the manual ``if not 0 < self.x <= 1: raise``
        idiom).
        """
        validated: set[str] = set()
        for node in ast.walk(post_init):
            if isinstance(node, ast.Call):
                canonical = self.context.imports.resolve_node(node.func)
                name = (canonical or "").rsplit(".", 1)[-1]
                if name.startswith("require_"):
                    for argument in node.args:
                        validated |= self._self_fields(argument)
            elif isinstance(node, ast.Compare):
                for operand in (node.left, *node.comparators):
                    validated |= self._self_fields(operand)
        return validated

    @staticmethod
    def _self_fields(node: ast.expr) -> set[str]:
        fields: set[str] = set()
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Attribute)
                and isinstance(child.value, ast.Name)
                and child.value.id == "self"
            ):
                fields.add(child.attr)
        return fields
