"""Domain rules for the R-Opus invariant linter.

Importing this package registers every built-in rule; the registry in
:mod:`repro.analysis.rules.base` is the single source of truth the
runner and the reporters consult.
"""

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    bare_assert,
    effect_rules,
    executor_submission,
    float_equality,
    mutable_default,
    naked_rng,
    seed_discipline,
    shared_mutation,
    swallowed_failure,
    typestate_rules,
    unit_flow,
    wall_clock,
)
from repro.analysis.rules.base import (
    ImportMap,
    ModuleContext,
    ProjectRule,
    Rule,
    dotted_name,
    iter_rule_classes,
    register,
    registered_rules,
)

__all__ = [
    "ImportMap",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "dotted_name",
    "iter_rule_classes",
    "register",
    "registered_rules",
]
