"""Project-scope determinism rules built on the effect engine.

These rules consume :class:`repro.analysis.effects.ProjectContext`
(the whole-project function index plus inferred effect summaries)
instead of a single module, so they can see *through* call chains:
a worker function that calls a helper that calls ``random.random()``
is just as flagged as one that draws directly.

The imports from :mod:`repro.analysis.effects` are deliberately
deferred into the method bodies — rule modules are imported by
``repro.analysis.rules.__init__`` while the effects package may still
be mid-import (it imports :mod:`repro.analysis.rules.base` for the
ImportMap), and a module-level import here would complete the cycle.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, ClassVar

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.base import ProjectRule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.effects.lattice import Origin
    from repro.analysis.effects.project import (
        EffectProject,
        FunctionInfo,
        SaveSite,
    )


def _origin_note(origin: "Origin | None") -> str:
    """Cite an effect's primitive site without the line number.

    Finding fingerprints are ``(rule, path, message)`` so baselines
    survive unrelated edits; embedding the line would defeat that.
    """
    if origin is None:
        return ""
    detail = getattr(origin, "detail", "")
    path = getattr(origin, "path", "")
    return f" ({detail} in {path})" if detail else ""


@register
class TransitivelyImpureSubmission(ProjectRule):
    """ROP013: impure callables must not cross the executor boundary.

    A work unit submitted to ``Executor.map``/``submit`` runs in a
    worker process; if it (or anything it transitively calls) draws
    ambient RNG, reads the wall clock, or mutates module globals, then
    serial and parallel runs of the same plan diverge — precisely the
    failure mode the engine's hash-parity tests exist to catch, found
    here before the code ever runs.
    """

    rule_id: ClassVar[str] = "ROP013"
    name: ClassVar[str] = "impure-task-submission"
    description: ClassVar[str] = (
        "Transitively impure callable (ambient RNG, wall clock, or "
        "global mutation) submitted to an executor."
    )
    hint: ClassVar[str] = (
        "Thread determinism through arguments: derive a per-task "
        "generator with derive_shard_seed()/derive_rng(seed), take "
        "timestamps in the driver, and pass state explicitly instead "
        "of mutating module globals from workers."
    )
    rationale: ClassVar[str] = (
        "The impurity may live three calls below the submitted "
        "function, where no module-scope rule can see it; the effect "
        "fixpoint propagates it to the submission site, which is the "
        "one place the fix (threading seeds and clocks through "
        "arguments) must be applied."
    )
    example_bad: ClassVar[str] = (
        "def run_shard(shard):\n"
        "    return simulate(shard)  # simulate() uses random.random\n"
        "pool.submit(run_shard, shard)"
    )
    example_good: ClassVar[str] = (
        "def run_shard(shard, seed):\n"
        "    return simulate(shard, derive_rng(seed))\n"
        "pool.submit(run_shard, shard, derive_shard_seed(base, i))"
    )
    default_severity: ClassVar[Severity] = Severity.ERROR

    def check(self) -> list[Finding]:
        from repro.analysis.effects.intrinsics import KNOWN_EFFECTS
        from repro.analysis.effects.lattice import TASK_UNSAFE

        effects_project = self.project.effects
        for info in effects_project.functions.values():
            for site in info.submissions:
                if site.work_target is None:
                    continue
                override = KNOWN_EFFECTS.get(site.work_target)
                if override is not None:
                    unsafe = override.exported & TASK_UNSAFE
                    summary = None
                else:
                    summary = effects_project.summaries.get(
                        site.work_target
                    )
                    if summary is None:
                        continue
                    unsafe = summary.effects & TASK_UNSAFE
                if not unsafe:
                    continue
                names = ", ".join(sorted(e.value for e in unsafe))
                note = ""
                if summary is not None:
                    first = min(unsafe, key=lambda e: e.value)
                    note = _origin_note(summary.origin(first))
                self.report_at(
                    path=info.display_path,
                    line=site.line,
                    column=site.col + 1,
                    message=(
                        f"'{site.work_repr}' is submitted to an "
                        f"executor but is transitively impure: "
                        f"{names}{note}."
                    ),
                )
        return self.findings


@register
class NondetOrderIntoDecision(ProjectRule):
    """ROP014: nondeterministic iteration order feeding decisions.

    Iterating a ``set``/``frozenset`` or an unsorted directory listing
    is harmless in isolation — the order only matters once it can
    influence a *decision*: a placement outcome, a checkpoint payload,
    or a hash input. The rule therefore fires on a nondeterministic
    iteration site only when the surrounding function transitively
    reaches such a sink (or lives in the placement package, whose
    entire output is a decision).
    """

    rule_id: ClassVar[str] = "ROP014"
    name: ClassVar[str] = "nondet-order-into-decision"
    description: ClassVar[str] = (
        "Nondeterministic iteration order (set iteration, unsorted "
        "directory listing) flows into a placement decision, "
        "checkpoint payload, or hash input."
    )
    hint: ClassVar[str] = (
        "Materialize a stable order first: sorted(the_set), "
        "sorted(os.listdir(...)), or keep the data in an "
        "insertion-ordered list/dict from the start."
    )
    rationale: ClassVar[str] = (
        "Set iteration order varies with hash seeding and insertion "
        "history, so a greedy pass that walks a set picks different "
        "winners run to run — same seed, different placement plan. "
        "Decisions, checkpoints, and hashes must consume a "
        "materialized, sorted order."
    )
    example_bad: ClassVar[str] = (
        "for app in pending_apps:  # a set\n"
        "    assign(app, best_node(app))"
    )
    example_good: ClassVar[str] = (
        "for app in sorted(pending_apps, key=lambda a: a.name):\n"
        "    assign(app, best_node(app))"
    )
    default_severity: ClassVar[Severity] = Severity.ERROR

    #: Module prefixes whose results are decisions by construction.
    _DECISION_PREFIXES: ClassVar[tuple[str, ...]] = ("repro.placement.",)

    def _sink_phrase(
        self, info: "FunctionInfo", kinds: frozenset[str]
    ) -> str:
        phrases: list[str] = []
        if any(
            info.module.startswith(prefix)
            for prefix in self._DECISION_PREFIXES
        ):
            phrases.append("placement decisions")
        if "checkpoint" in kinds:
            phrases.append("checkpoint payloads")
        if "hash" in kinds:
            phrases.append("hash inputs")
        return " and ".join(phrases)

    def check(self) -> list[Finding]:
        from repro.analysis.effects.lattice import Effect

        effects_project = self.project.effects
        for qualified, info in effects_project.functions.items():
            kinds = effects_project.reaches_sink.get(
                qualified, frozenset()
            )
            phrase = self._sink_phrase(info, kinds)
            if not phrase:
                continue
            for effect, origin in info.direct_sites:
                if effect is not Effect.NONDET_ITERATION:
                    continue
                self.report_at(
                    path=info.display_path,
                    line=origin.line,
                    column=1,
                    message=(
                        f"{origin.detail} in '{info.short_name}' "
                        f"flows into {phrase}; the order is not "
                        f"reproducible across runs."
                    ),
                )
        return self.findings


@register
class UnstableCheckpointPayload(ProjectRule):
    """ROP016: checkpoint payloads must round-trip bit-stably.

    ``Checkpointer.save`` serializes with ``json.dumps(sort_keys=...)``
    and resume-equivalence depends on the reloaded payload being
    byte-identical to what a fresh run would produce. Sets (order- and
    JSON-unstable), wall-clock timestamps, ambient RNG draws, and NaN
    (``nan != nan`` breaks the fingerprint round-trip) inside a payload
    all violate that contract.
    """

    rule_id: ClassVar[str] = "ROP016"
    name: ClassVar[str] = "unstable-checkpoint-payload"
    description: ClassVar[str] = (
        "Checkpoint payload contains a value that does not round-trip "
        "bit-stably through JSON (set, wall-clock timestamp, ambient "
        "RNG draw, or NaN)."
    )
    hint: ClassVar[str] = (
        "Checkpoint only stable, replayable values: sorted lists "
        "instead of sets, explicit seeds or bit_generator.state "
        "instead of fresh draws, and no timestamps inside the payload "
        "(log them outside the checkpoint instead)."
    )
    rationale: ClassVar[str] = (
        "Resume correctness depends on the checkpoint meaning the "
        "same thing when read back: a set loses its order, a "
        "timestamp never matches, and a fresh RNG draw differs every "
        "write — each one makes resumed runs diverge from "
        "uninterrupted ones."
    )
    example_bad: ClassVar[str] = (
        "save_checkpoint({'done': done_set,\n"
        "                 'at': time.time()})"
    )
    example_good: ClassVar[str] = (
        "save_checkpoint({'done': sorted(done_set)})\n"
        "log.info('checkpoint at %s', time.time())"
    )
    default_severity: ClassVar[Severity] = Severity.ERROR

    def check(self) -> list[Finding]:
        effects_project = self.project.effects
        for info in effects_project.functions.values():
            for site in info.saves:
                if site.payload is None:
                    continue
                for expr_info, expr in self._payload_exprs(
                    effects_project, info, site.payload
                ):
                    self._scan_payload(expr_info, site, expr)
        return self.findings

    def _payload_exprs(
        self,
        effects_project: "EffectProject",
        info: "FunctionInfo",
        payload: ast.expr,
    ) -> list[tuple["FunctionInfo", ast.expr]]:
        """Expressions that (may) build the saved payload.

        Follows one level of indirection: a local name back to its
        assignments, and a call to a project function into that
        function's ``return`` expressions. Deeper chains fall back to
        scanning nothing — optimistic, like the rest of the engine.
        """
        if isinstance(payload, ast.Name):
            exprs: list[tuple["FunctionInfo", ast.expr]] = []
            for node in ast.walk(info.node):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id == payload.id
                        ):
                            exprs.append((info, node.value))
                elif (
                    isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Name)
                    and node.target.id == payload.id
                    and node.value is not None
                ):
                    exprs.append((info, node.value))
            resolved: list[tuple["FunctionInfo", ast.expr]] = []
            for owner, expr in exprs:
                resolved.extend(
                    self._follow_call(effects_project, owner, expr)
                )
            return resolved
        return self._follow_call(effects_project, info, payload)

    def _follow_call(
        self,
        effects_project: "EffectProject",
        info: "FunctionInfo",
        expr: ast.expr,
    ) -> list[tuple["FunctionInfo", ast.expr]]:
        if not isinstance(expr, ast.Call):
            return [(info, expr)]
        for site in info.calls:
            if site.node is not expr or site.kind != "name":
                continue
            target = site.target
            if target is None:
                break
            callee = effects_project.functions.get(target)
            if callee is None:
                break
            returns = [
                (callee, node.value)
                for node in ast.walk(callee.node)
                if isinstance(node, ast.Return) and node.value is not None
            ]
            if returns:
                return returns
            break
        return [(info, expr)]

    #: Consumers that impose a stable order (or reduce to a scalar),
    #: sanctioning whatever they wrap.
    _SANCTIONING_CALLS: ClassVar[frozenset[str]] = frozenset(
        {"sorted", "min", "max", "sum", "len"}
    )

    def _scan_payload(
        self, info: "FunctionInfo", site: "SaveSite", expr: ast.expr
    ) -> None:
        from repro.analysis.effects.intrinsics import (
            WALL_CLOCK_CALLS,
            external_effects,
        )
        from repro.analysis.effects.lattice import Effect

        imports = info.context.imports
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Set, ast.SetComp)):
                self._report_payload(
                    info,
                    site,
                    node,
                    "a set value (iteration order and JSON encoding "
                    "are both unstable)",
                )
                continue
            if isinstance(node, ast.Call):
                callee = imports.resolve_node(node.func)
                if callee in self._SANCTIONING_CALLS:
                    continue  # sorted(...)/len(...) stabilize contents
                if callee in {"set", "frozenset"}:
                    self._report_payload(
                        info, site, node, "a set value"
                    )
                    continue
                if (
                    callee == "float"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and str(node.args[0].value).lower()
                    in {"nan", "inf", "-inf"}
                ):
                    self._report_payload(
                        info,
                        site,
                        node,
                        f"float({node.args[0].value!r}) (not "
                        "JSON-round-trippable)",
                    )
                    continue
                canonical = imports.resolve_imported(node.func)
                if canonical is not None:
                    if canonical in WALL_CLOCK_CALLS:
                        self._report_payload(
                            info,
                            site,
                            node,
                            f"a wall-clock timestamp "
                            f"({canonical}())",
                        )
                        continue
                    effects = external_effects(canonical, node)
                    if Effect.AMBIENT_RNG in effects:
                        self._report_payload(
                            info,
                            site,
                            node,
                            f"an ambient RNG draw ({canonical}())",
                        )
                        continue
            stack.extend(ast.iter_child_nodes(node))

    def _report_payload(
        self,
        info: "FunctionInfo",
        site: "SaveSite",
        node: ast.AST,
        what: str,
    ) -> None:
        self.report_at(
            path=info.display_path,
            line=getattr(node, "lineno", site.line),
            column=getattr(node, "col_offset", site.col) + 1,
            message=(
                f"checkpoint payload saved in '{info.short_name}' "
                f"contains {what}; resume-equivalence requires "
                f"bit-stable JSON round-trips."
            ),
        )
