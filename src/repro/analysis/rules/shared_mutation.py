"""ROP007 — engine work units never mutate their broadcast payload.

The executor contract (:mod:`repro.engine.executor`) broadcasts the
``shared`` payload once per worker process. Under the serial backend a
mutation is visible to every later work unit; under the process pool it
is visible only within one worker — the two backends diverge silently.
Work units must treat the payload as immutable and communicate only
through their return value.

A *work unit* is detected as a module-level function that is either
passed to an executor-ish ``.map(...)``/``submit(...)`` call in the
same module, or follows the naming convention (``worker`` in the
function name). Within one, the rule flags writes through the first
parameter: attribute/subscript assignment, augmented assignment,
``del``, and calls to known mutating methods.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, dotted_name, register

_SUBMIT_METHODS = frozenset({"map", "submit"})

#: Method names that mutate common containers/objects in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "add",
        "discard",
        "setdefault",
        "sort",
        "reverse",
        "fill",
        "resize",
        "put",
    }
)


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class _WorkerNameCollector(ast.NodeVisitor):
    """Function names passed to ``*.map(...)``/``*.submit(...)`` calls."""

    def __init__(self) -> None:
        self.submitted: set[str] = set()

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SUBMIT_METHODS
            and dotted_name(node.func.value) is not None
        ):
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    self.submitted.add(arg.id)
        self.generic_visit(node)


@register
class SharedMutationRule(Rule):
    """Flags mutation of the broadcast payload inside work units."""

    rule_id: ClassVar[str] = "ROP007"
    name: ClassVar[str] = "no-shared-payload-mutation"
    description: ClassVar[str] = (
        "executor work units must treat the broadcast shared payload as "
        "immutable; in-place writes diverge between serial and "
        "process-pool backends."
    )
    hint: ClassVar[str] = (
        "return new values from the work unit and fold them in the "
        "driver; keep the payload a frozen dataclass of plain data"
    )
    rationale: ClassVar[str] = (
        "Each pool worker mutates its own copy of the shared payload, "
        "so writes to it are silently discarded — the driver never "
        "sees them, and results differ from the in-process execution "
        "path that does see them. Data must flow back through return "
        "values."
    )
    example_bad: ClassVar[str] = (
        "def work(shared, item):\n"
        "    shared.results.append(score(item))"
    )
    example_good: ClassVar[str] = (
        "def work(shared, item):\n"
        "    return score(item)\n"
        "# driver folds the returned scores"
    )

    def check(self) -> list[Finding]:
        collector = _WorkerNameCollector()
        collector.visit(self.context.tree)
        submitted = collector.submitted
        for node in self.context.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            is_worker = "worker" in node.name.lower() or node.name in submitted
            if is_worker:
                self._check_worker(node)
        return self.findings

    def _check_worker(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        params = node.args.posonlyargs + node.args.args
        if not params:
            return
        payload = params[0].arg
        if payload in ("self", "cls"):
            return
        for statement in ast.walk(node):
            self._check_statement(statement, payload, node.name)

    def _check_statement(
        self, node: ast.AST, payload: str, worker: str
    ) -> None:
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, (ast.Attribute, ast.Subscript))
                    and _root_name(target) == payload
                ):
                    self.report(
                        node,
                        f"work unit {worker}() writes through its shared "
                        f"payload {payload!r}",
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, (ast.Attribute, ast.Subscript))
                    and _root_name(target) == payload
                ):
                    self.report(
                        node,
                        f"work unit {worker}() deletes from its shared "
                        f"payload {payload!r}",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and _root_name(func.value) == payload
            ):
                self.report(
                    node,
                    f"work unit {worker}() calls mutating method "
                    f".{func.attr}() on its shared payload {payload!r}",
                )
