"""ROP003 — no ``==``/``!=`` against float literals.

The paper's acceptance clauses (formulas 1-11) compare accumulated
fractions and utilizations against thresholds like ``U_high`` and
``M_degr``. Exact equality on such floats flips verdicts on one-ulp
error — ``violation_fraction == 0.0`` is the canonical bug this rule
exists to keep out. Integer-literal comparisons are exact and remain
allowed.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.rules.base import Rule, register


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # Cover ``-1.0`` / ``+0.5``: a unary sign around a float literal.
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        return _is_float_literal(node.operand)
    return False


@register
class FloatEqualityRule(Rule):
    """Flags ``x == 0.0``-style comparisons on metric/threshold values."""

    rule_id: ClassVar[str] = "ROP003"
    name: ClassVar[str] = "no-float-equality"
    description: ClassVar[str] = (
        "metric and threshold comparisons must be tolerance-based; raw "
        "==/!= against a float literal silently misfires on accumulated "
        "rounding error."
    )
    hint: ClassVar[str] = (
        "use repro.util.floats.isclose / is_zero / at_most with an "
        "explicit tolerance"
    )
    rationale: ClassVar[str] = (
        "Exact == on floats flips with summation order, BLAS builds, "
        "and optimization levels — the degradation and compliance "
        "fractions here are all products of float arithmetic. A "
        "tolerance-based comparison states the intended precision "
        "instead of relying on bit-identical rounding."
    )
    example_bad: ClassVar[str] = (
        "if utilization == 1.0:\n"
        "    mark_saturated(node)"
    )
    example_good: ClassVar[str] = (
        "if isclose(utilization, 1.0):\n"
        "    mark_saturated(node)"
    )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            for side in (left, right):
                if _is_float_literal(side):
                    literal = ast.unparse(side)
                    self.report(
                        node,
                        f"float equality against literal {literal} "
                        "(use a tolerance)",
                    )
                    break
        self.generic_visit(node)
