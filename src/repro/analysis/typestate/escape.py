"""Interprocedural escape index: what a callee does with each parameter.

The typestate checker is intraprocedural — it tracks a resource from
its acquire site through one function's CFG. When the resource is
passed to another *project* function, this index answers the only
question the caller needs: does the callee **release** the argument,
take **ownership** of it (store it somewhere that outlives the call,
or return it), or neither? A helper that releases its argument is then
understood at every call site, and a constructor that stashes the
resource on ``self`` counts as an ownership transfer.

Dispositions are syntactic facts about the callee body, closed
transitively over the project call graph by a simple fixpoint: if
``close_all(pool)`` forwards ``pool`` to ``shutdown_pool(pool)``, the
``releases`` disposition propagates back. The lattice is three
independent bits that only ever turn on, so the iteration terminates
in at most ``O(params)`` rounds.

Unknown external callees are *not* consulted here; the checker treats
passing a resource to them as an ownership escape (optimistic — the
house style throughout the analysis package).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.analysis.rules.base import dotted_name
from repro.analysis.typestate.protocols import (
    ALL_RELEASE_METHODS,
    RELEASE_FUNCTIONS,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.effects.project import EffectProject, FunctionInfo

RELEASES = "releases"
STORES = "stores"
RETURNS = "returns"

#: qualified function name -> parameter name -> disposition set.
EscapeIndex = dict[str, dict[str, frozenset[str]]]


def parameter_names(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[str]:
    args = node.args
    return [arg.arg for arg in [*args.posonlyargs, *args.args]]


def _names_in(expr: ast.expr) -> set[str]:
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


def _argument_bindings(
    call: ast.Call, callee_params: list[str]
) -> Iterable[tuple[str, ast.expr]]:
    """Pair each call argument with the callee parameter receiving it.

    The implicit ``self``/``cls`` slot is always skipped: constructor
    calls and bound-method calls both leave it out of the argument
    list, and explicit unbound calls are rare enough to misalign
    optimistically.
    """
    params = list(callee_params)
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if index < len(params):
            yield params[index], arg
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in callee_params:
            yield keyword.arg, keyword.value


class _Collector(ast.NodeVisitor):
    """One pass over a function body collecting dispositions and deps."""

    _STORING_METHODS = frozenset(
        {"append", "add", "insert", "setdefault", "update", "register"}
    )

    def __init__(
        self, info: "FunctionInfo", project: "EffectProject"
    ) -> None:
        self.info = info
        self.project = project
        self.params = parameter_names(info.node)
        self.tracked = set(self.params) - {"self", "cls"}
        self.dispositions: dict[str, set[str]] = {
            name: set() for name in self.params
        }
        self.deps: list[tuple[str, str, str]] = []
        self._sites = {
            id(site.node): site
            for site in info.calls
            if site.node is not None
        }

    def _mark(self, expr: ast.expr, disposition: str) -> None:
        for name in _names_in(expr) & self.tracked:
            self.dispositions[name].add(disposition)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._mark(node.value, RETURNS)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if any(
            isinstance(target, (ast.Attribute, ast.Subscript))
            for target in node.targets
        ):
            self._mark(node.value, STORES)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            # ``param.close()`` — a release method on the parameter.
            if (
                isinstance(base, ast.Name)
                and base.id in self.tracked
                and func.attr in ALL_RELEASE_METHODS
            ):
                self.dispositions[base.id].add(RELEASES)
            # ``registry.append(param)`` — stored in a container.
            if func.attr in self._STORING_METHODS:
                for arg in node.args:
                    self._mark(arg, STORES)
            # ``super().__init__(param, ...)`` — the base class almost
            # certainly stashes its constructor arguments on the
            # instance; the call itself resolves to nothing statically,
            # so treat forwarding through it as an ownership store.
            if (
                isinstance(base, ast.Call)
                and isinstance(base.func, ast.Name)
                and base.func.id == "super"
            ):
                for arg in node.args:
                    self._mark(arg, STORES)
                for keyword in node.keywords:
                    self._mark(keyword.value, STORES)

        canonical = self.info.context.imports.resolve(
            dotted_name(func) or ""
        )
        release = RELEASE_FUNCTIONS.get(canonical)
        if release is not None:
            _, index = release
            if index < len(node.args):
                # The released argument may be the parameter itself or
                # a value derived from it (``release(segment.name)``).
                self._mark(node.args[index], RELEASES)

        site = self._sites.get(id(node))
        if (
            site is not None
            and site.kind == "name"
            and site.target is not None
        ):
            callee = self.project.functions.get(site.target)
            if callee is not None:
                callee_params = parameter_names(callee.node)
                for param, arg in _argument_bindings(
                    node, callee_params
                ):
                    if isinstance(arg, ast.Name) and arg.id in self.tracked:
                        self.deps.append((arg.id, site.target, param))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.info.node:
            return  # nested defs have their own FunctionInfo
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]


def build_escape_index(project: "EffectProject") -> EscapeIndex:
    """Compute per-parameter dispositions for every project function."""
    raw: dict[str, dict[str, set[str]]] = {}
    all_deps: dict[str, list[tuple[str, str, str]]] = {}
    for qualified, info in project.functions.items():
        collector = _Collector(info, project)
        collector.visit(info.node)
        raw[qualified] = collector.dispositions
        all_deps[qualified] = collector.deps

    changed = True
    while changed:
        changed = False
        for qualified, deps in all_deps.items():
            for param, callee, callee_param in deps:
                inherited = raw.get(callee, {}).get(callee_param)
                if not inherited:
                    continue
                mine = raw[qualified][param]
                if not inherited <= mine:
                    mine |= inherited
                    changed = True

    return {
        qualified: {
            name: frozenset(values) for name, values in params.items()
        }
        for qualified, params in raw.items()
    }


__all__ = [
    "RELEASES",
    "RETURNS",
    "STORES",
    "EscapeIndex",
    "build_escape_index",
    "parameter_names",
]
