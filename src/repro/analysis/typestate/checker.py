"""The typestate abstract interpreter over the exception-edge CFG.

Per function, the checker tracks every resource acquired through the
:data:`~repro.analysis.typestate.protocols.KNOWN_PROTOCOLS` table as a
*possible-state set* drawn from ``{open, released, escaped}``:

* ``open`` — acquired, this function still owns it;
* ``released`` — a release method/function ran;
* ``escaped`` — ownership was transferred somewhere sanctioned
  (returned, stored in an attribute/registry/container, passed to a
  callee the escape index says keeps or releases it, or managed by a
  ``with`` statement).

The analysis is a forward fixpoint over the function's CFG with
set-union joins; exception edges propagate the source block's *entry*
state (the raising statement never completed), matching the unit
dataflow engine's convention. Because the builder isolates every
may-raise statement in a singleton block, the entry state is exactly
the pre-statement state for all protocol-relevant operations (which
are calls, hence always may-raise).

Findings (consumed by rules ROP017–ROP020):

* ``leak`` — ``open`` survives to a function exit. Normal-path exits
  and the implicit exception exit are distinguished in the message,
  since the latter is precisely the defect class the upgraded CFG
  exists to expose;
* ``use-after-release`` — a non-release, non-neutral method call on a
  resource that is released on *every* path reaching it (a must-fact,
  so joins cannot produce false positives);
* ``double-release`` — a release on a resource possibly already
  released, reported only for protocols whose release is not
  idempotent (``SharedMemory.unlink`` raises the second time);
* ``unowned`` — an acquired resource never bound to a name nor
  transferred: dropped on the floor (``ProcessPoolExecutor().submit``)
  or passed straight into an external call with no local owner.

Everything unknown is optimistic: resources handed to unresolvable
callees are treated as ownership escapes, and names captured by nested
functions or lambdas escape too (the closure may release them later).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.dataflow.cfg import ControlFlowGraph, build_cfg
from repro.analysis.rules.base import dotted_name
from repro.analysis.typestate.escape import (
    RELEASES,
    EscapeIndex,
    build_escape_index,
    parameter_names,
)
from repro.analysis.typestate.protocols import (
    KNOWN_PROTOCOLS,
    RELEASE_FUNCTIONS,
    ResourceProtocol,
    match_acquire,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.effects.project import EffectProject, FunctionInfo

OPEN = "open"
RELEASED = "released"
ESCAPED = "escaped"

#: Finding categories, keyed by the rule that reports them.
LEAK = "leak"
USE_AFTER_RELEASE = "use-after-release"
DOUBLE_RELEASE = "double-release"
UNOWNED = "unowned"

#: External callables that neither retain nor release their arguments.
_TRANSPARENT_CALLS = frozenset(
    {
        "abs",
        "bool",
        "float",
        "format",
        "getattr",
        "hasattr",
        "id",
        "int",
        "isinstance",
        "issubclass",
        "len",
        "max",
        "min",
        "next",
        "print",
        "repr",
        "round",
        "sorted",
        "str",
        "sum",
        "type",
        "vars",
    }
)

#: Tail names of acquire callables; functions whose bodies mention none
#: of these are skipped without building a CFG.
_ACQUIRE_TAILS = frozenset(
    tail.rsplit(".", 1)[-1]
    for protocol in KNOWN_PROTOCOLS
    for tail in protocol.acquire
)

#: Fixpoint safety valve: blocks visited more often than this abort the
#: function's analysis (optimistically, with no findings).
_VISIT_CAP = 100


@dataclass(frozen=True)
class TypestateFinding:
    """One protocol violation, located and categorised."""

    category: str
    path: str
    line: int
    column: int  # 0-based, like ast col_offset
    message: str


@dataclass
class _Resource:
    """One acquire site discovered during the walk."""

    rid: int
    protocol: ResourceProtocol
    line: int
    col: int
    #: Best-known variable name, for messages.
    label: str | None = None


#: env (name -> rid set), states (rid -> possible-state set).
_State = tuple[dict[str, frozenset[int]], dict[int, frozenset[str]]]


def _copy(state: _State) -> tuple[dict, dict]:
    env, states = state
    return dict(env), dict(states)


def _join(left: _State, right: _State) -> _State:
    lenv, lstates = left
    renv, rstates = right
    env = dict(lenv)
    for name, rids in renv.items():
        env[name] = env.get(name, frozenset()) | rids
    states = dict(lstates)
    for rid, values in rstates.items():
        states[rid] = states.get(rid, frozenset()) | values
    return env, states


def _none_branch_name(guard: ast.expr, value: bool) -> str | None:
    """The name proven None/falsy along this guarded edge, if any.

    Recognises ``X is None`` / ``X is not None`` comparisons, bare
    ``if X:`` truthiness tests, and ``if not X:``. On the branch where
    ``X`` is None, resources bound to ``X`` are phantom — the acquire
    that might have produced them returned None instead (the
    ``publish()`` pickle fallback), so nothing exists to leak.
    """
    if isinstance(guard, ast.Compare) and len(guard.ops) == 1:
        left, op = guard.left, guard.ops[0]
        comparator = guard.comparators[0]
        if (
            isinstance(left, ast.Name)
            and isinstance(comparator, ast.Constant)
            and comparator.value is None
        ):
            if isinstance(op, ast.Is) and value:
                return left.id
            if isinstance(op, ast.IsNot) and not value:
                return left.id
        return None
    if isinstance(guard, ast.Name) and not value:
        return guard.id
    if (
        isinstance(guard, ast.UnaryOp)
        and isinstance(guard.op, ast.Not)
        and isinstance(guard.operand, ast.Name)
        and value
    ):
        return guard.operand.id
    return None


def _refine(state: _State, guard: ast.expr | None, value: bool) -> _State:
    """Apply a None-test guard to the state flowing along an edge."""
    if guard is None:
        return state
    name = _none_branch_name(guard, value)
    if name is None:
        return state
    env, states = state
    rids = env.get(name)
    if not rids:
        return state
    env = dict(env)
    env[name] = frozenset()
    states = dict(states)
    for rid in rids:
        states[rid] = frozenset({ESCAPED})
    return env, states


def _mentions_acquire(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            name = dotted_name(child.func)
            if name is not None and name.rsplit(".", 1)[-1] in _ACQUIRE_TAILS:
                return True
    return False


class _Machine:
    """Transfer functions for one function under analysis."""

    def __init__(
        self,
        info: "FunctionInfo",
        project: "EffectProject",
        escape_index: EscapeIndex,
    ) -> None:
        self.info = info
        self.project = project
        self.escape_index = escape_index
        self.imports = info.context.imports
        self.call_sites = {
            id(site.node): site
            for site in info.calls
            if site.node is not None
        }
        #: (line, col, protocol name) -> _Resource; shared across the
        #: fixpoint so re-executing a block maps to the same rid.
        self.resources: dict[tuple[int, int, str], _Resource] = {}
        self.reporting = False
        #: Exceptional mode: the block's statement raised mid-flight.
        #: Acquisitions and ownership transfers did not complete, but a
        #: release that raised still counts as released — flagging
        #: "the unlink itself may fail" on every try/finally release
        #: would bury the genuine leaks this analysis exists for.
        self.exceptional = False
        self.findings: dict[tuple, TypestateFinding] = {}
        # Per-statement scratch, reset in exec_statement.
        self._env: dict[str, frozenset[int]] = {}
        self._states: dict[int, frozenset[str]] = {}
        self._fresh: set[int] = set()

    # -- reporting -----------------------------------------------------
    def _report(
        self, category: str, node: ast.AST, message: str
    ) -> None:
        if not self.reporting or self.exceptional:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (category, line, col, message)
        if key not in self.findings:
            self.findings[key] = TypestateFinding(
                category=category,
                path=self.info.display_path,
                line=line,
                column=col,
                message=message,
            )

    def _describe(self, rid: int) -> str:
        resource = next(
            r for r in self.resources.values() if r.rid == rid
        )
        label = f" {resource.label!r}" if resource.label else ""
        return f"{resource.protocol.describe}{label}"

    # -- state helpers -------------------------------------------------
    def _resource_at(
        self, node: ast.Call, protocol: ResourceProtocol
    ) -> _Resource:
        key = (node.lineno, node.col_offset, protocol.name)
        resource = self.resources.get(key)
        if resource is None:
            resource = _Resource(
                rid=len(self.resources),
                protocol=protocol,
                line=node.lineno,
                col=node.col_offset,
            )
            self.resources[key] = resource
        return resource

    def _protocol(self, rid: int) -> ResourceProtocol:
        return next(
            r.protocol for r in self.resources.values() if r.rid == rid
        )

    def _release(self, rids: frozenset[int], node: ast.AST) -> None:
        for rid in rids:
            protocol = self._protocol(rid)
            state = self._states.get(rid, frozenset())
            if RELEASED in state and not protocol.double_release_ok:
                self._report(
                    DOUBLE_RELEASE,
                    node,
                    f"{self._describe(rid)} may already be released "
                    f"here; releasing a {protocol.describe} twice "
                    f"raises.",
                )
            self._states[rid] = frozenset({RELEASED})

    def _escape(self, rids: frozenset[int]) -> None:
        if self.exceptional:
            return  # the transferring statement never completed
        for rid in rids:
            self._states[rid] = frozenset({ESCAPED})

    def _use(self, rids: frozenset[int], node: ast.AST, what: str) -> None:
        for rid in rids:
            protocol = self._protocol(rid)
            if not protocol.track_use:
                continue
            if self._states.get(rid) == frozenset({RELEASED}):
                self._report(
                    USE_AFTER_RELEASE,
                    node,
                    f"{what} on {self._describe(rid)} after it was "
                    f"released.",
                )

    def _escape_captured(self, node: ast.AST) -> None:
        """Names captured by a nested def/lambda escape (optimistic)."""
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and child.id in self._env:
                self._escape(self._env[child.id])

    # -- expression evaluation -----------------------------------------
    def eval(self, expr: ast.expr | None) -> frozenset[int]:
        if expr is None:
            return frozenset()
        if isinstance(expr, ast.Name):
            return self._env.get(expr.id, frozenset())
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Attribute):
            # A derived value (``segment.name``) carries the resource:
            # storing or releasing by it counts for the segment itself.
            return self.eval(expr.value)
        if isinstance(expr, (ast.Lambda,)):
            self._escape_captured(expr)
            return frozenset()
        if isinstance(expr, ast.NamedExpr):
            rids = self.eval(expr.value)
            if isinstance(expr.target, ast.Name):
                self._env[expr.target.id] = rids
            return rids
        rids: frozenset[int] = frozenset()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                rids |= self.eval(child)
        return rids

    def _call(self, call: ast.Call) -> frozenset[int]:
        receiver_rids: frozenset[int] = frozenset()
        if isinstance(call.func, ast.Attribute):
            receiver_rids = self.eval(call.func.value)

        arg_rids = [self.eval(arg) for arg in call.args]
        keyword_rids = [self.eval(kw.value) for kw in call.keywords]

        dotted = dotted_name(call.func)
        canonical = self.imports.resolve(dotted) if dotted else None

        # Release functions: release(segment.name), os.replace(tmp, p).
        release = RELEASE_FUNCTIONS.get(canonical or "")
        if release is not None:
            _, index = release
            if index < len(arg_rids):
                self._release(arg_rids[index], call)
            return frozenset()

        # Acquisitions (skipped in exceptional mode: the constructor
        # raised, so no resource exists on that edge).
        result: frozenset[int] = frozenset()
        acquired = (
            [] if self.exceptional else match_acquire(canonical, call)
        )
        for protocol, bound_arg in acquired:
            resource = self._resource_at(call, protocol)
            self._states[resource.rid] = frozenset({OPEN})
            if bound_arg is not None and isinstance(bound_arg, ast.Name):
                resource.label = bound_arg.id
                self._env[bound_arg.id] = frozenset({resource.rid})
            else:
                self._fresh.add(resource.rid)
                result |= frozenset({resource.rid})

        # Method calls on tracked receivers: release, neutral, or use.
        if isinstance(call.func, ast.Attribute) and receiver_rids:
            attr = call.func.attr
            releases = frozenset(
                rid
                for rid in receiver_rids
                if attr in self._protocol(rid).release_methods
            )
            neutral = frozenset(
                rid
                for rid in receiver_rids
                if attr in self._protocol(rid).neutral_methods
            )
            if self.exceptional:
                # On the exception edge out of a cleanup sequence the
                # neutral step counts as progress: ``close()`` raising
                # inside a ``close(); unlink()`` finally must not read
                # as the segment leaking — the attempted cleanup is the
                # release, same as an attempted release itself.
                releases |= neutral
            if releases:
                self._release(releases, call)
            uses = receiver_rids - releases - neutral
            if uses:
                self._use(uses, call, f"method call '.{attr}()'")

        # Ownership flow of tracked arguments through the call.
        tracked_args = [
            (arg, rids)
            for arg, rids in [
                *zip(call.args, arg_rids),
                *zip([kw.value for kw in call.keywords], keyword_rids),
            ]
            if rids
        ]
        if tracked_args:
            self._flow_arguments(call, canonical, tracked_args)
        return result

    def _flow_arguments(
        self,
        call: ast.Call,
        canonical: str | None,
        tracked_args: list[tuple[ast.expr, frozenset[int]]],
    ) -> None:
        site = self.call_sites.get(id(call))
        callee = None
        if site is not None and site.kind == "name" and site.target:
            callee = self.project.functions.get(site.target)
        if callee is not None:
            dispositions = self.escape_index.get(callee.qualified, {})
            callee_params = parameter_names(callee.node)
            params = list(callee_params)
            if params and params[0] in ("self", "cls"):
                params = params[1:]
            positional = {
                id(arg): params[index]
                for index, arg in enumerate(call.args)
                if index < len(params)
                and not isinstance(arg, ast.Starred)
            }
            by_keyword = {
                id(kw.value): kw.arg
                for kw in call.keywords
                if kw.arg is not None
            }
            for arg, rids in tracked_args:
                param = positional.get(id(arg)) or by_keyword.get(id(arg))
                if param is None:
                    self._escape(rids)
                    continue
                disposition = dispositions.get(param, frozenset())
                if RELEASES in disposition:
                    self._release(rids, call)
                elif disposition:
                    self._escape(rids)
                # An empty disposition: the callee neither keeps nor
                # releases it — the caller still owns the resource.
            return
        if canonical in _TRANSPARENT_CALLS:
            return
        # Unknown external callee: ownership may transfer. A resource
        # acquired in this very statement and never bound has no owner
        # at all — that is ROP020, not a sanctioned escape.
        for arg, rids in tracked_args:
            for rid in rids & self._fresh:
                if OPEN in self._states.get(rid, frozenset()):
                    self._report(
                        UNOWNED,
                        call,
                        f"{self._describe(rid)} is passed straight to "
                        f"an external call without a local owner; "
                        f"nothing can release it if the callee does "
                        f"not.",
                    )
            self._escape(rids)

    # -- statement execution -------------------------------------------
    def _bind(self, target: ast.expr, rids: frozenset[int]) -> None:
        if isinstance(target, ast.Name):
            self._env[target.id] = rids
        elif isinstance(target, ast.Starred):
            self._bind(target.value, rids)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # Stored into an attribute/registry: ownership transfer.
            self.eval(target.value)
            self._escape(rids)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, rids)

    def _assign(self, targets: list[ast.expr], value: ast.expr) -> None:
        rids = self.eval(value)
        for target in targets:
            if (
                isinstance(target, (ast.Tuple, ast.List))
                and isinstance(value, ast.Call)
                and rids
            ):
                # Tuple-unpacked acquire (``_, segment, _ = publish()``):
                # bind only the protocol's result_index element.
                indexed = self._tuple_acquire_binding(value, target, rids)
                if indexed:
                    continue
            self._bind(target, rids)

    def _tuple_acquire_binding(
        self,
        value: ast.Call,
        target: ast.Tuple | ast.List,
        rids: frozenset[int],
    ) -> bool:
        bound = False
        for rid in rids:
            resource = next(
                r for r in self.resources.values() if r.rid == rid
            )
            index = resource.protocol.result_index
            if index is None or index >= len(target.elts):
                continue
            element = target.elts[index]
            if isinstance(element, ast.Name):
                resource.label = element.id
                self._env[element.id] = frozenset({rid})
                for other in target.elts:
                    if other is not element and isinstance(
                        other, ast.Name
                    ):
                        self._env[other.id] = frozenset()
                bound = True
        return bound

    def exec_statement(self, statement: ast.stmt) -> None:
        self._fresh = set()
        if isinstance(statement, ast.Assign):
            self._assign(statement.targets, statement.value)
        elif isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                self._assign([statement.target], statement.value)
        elif isinstance(statement, ast.AugAssign):
            rids = self.eval(statement.value)
            if isinstance(statement.target, (ast.Attribute, ast.Subscript)):
                self._escape(rids)
        elif isinstance(statement, ast.Expr):
            self.eval(statement.value)
        elif isinstance(statement, ast.Return):
            self._escape(self.eval(statement.value))
        elif isinstance(statement, (ast.Raise,)):
            self.eval(statement.exc)
            self.eval(statement.cause)
        elif isinstance(statement, ast.Assert):
            self.eval(statement.test)
            self.eval(statement.msg)
        elif isinstance(statement, ast.Delete):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    self._env.pop(target.id, None)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            # Only the header lives in this block; the body is
            # sequenced into its own blocks by the CFG builder.
            for item in statement.items:
                rids = self.eval(item.context_expr)
                # The context manager owns whatever it wraps — both a
                # fresh ``with open(...)`` and ``with existing_pool:``.
                self._escape(rids)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, rids)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            self.eval(statement.iter)
            self._bind(statement.target, frozenset())
        elif isinstance(statement, ast.Match):
            self.eval(statement.subject)
        elif isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            self._escape_captured(statement)
        # Everything else (Pass, Import, Global, ...) is protocol-inert.

        # A resource acquired in this statement that ends it unbound
        # and un-transferred has no owner: nothing can release it.
        for rid in self._fresh:
            if OPEN not in self._states.get(rid, frozenset()):
                continue
            if any(rid in rids for rids in self._env.values()):
                continue
            resource = next(
                r for r in self.resources.values() if r.rid == rid
            )
            self._report(
                UNOWNED,
                statement,
                f"{resource.protocol.describe} acquired here is never "
                f"bound or transferred; it cannot be released "
                f"({resource.protocol.release_hint}).",
            )
            self._states[rid] = frozenset({ESCAPED})

    def transfer(
        self,
        statements: list[ast.stmt],
        state: _State,
        exceptional: bool = False,
    ) -> _State:
        self._env, self._states = _copy(state)
        self.exceptional = exceptional
        try:
            for statement in statements:
                self.exec_statement(statement)
        finally:
            self.exceptional = False
        return self._env, self._states


def check_function(
    info: "FunctionInfo",
    project: "EffectProject",
    escape_index: EscapeIndex,
) -> list[TypestateFinding]:
    """Run the typestate fixpoint over one function."""
    if not _mentions_acquire(info.node):
        return []
    cfg: ControlFlowGraph = build_cfg(info.node)
    machine = _Machine(info, project, escape_index)

    empty: _State = ({}, {})
    in_states: dict[int, _State] = {0: empty}
    visits = [0] * len(cfg.blocks)
    worklist = [0]
    while worklist:
        index = worklist.pop()
        visits[index] += 1
        if visits[index] > _VISIT_CAP:  # pragma: no cover - safety valve
            return []
        successors = cfg.successors(index)
        statements = cfg.blocks[index].statements
        out = machine.transfer(statements, in_states[index])
        out_exc: _State | None = None
        for edge in successors:
            if edge.kind == "exception":
                # The raising statement did not complete — but any
                # release it attempted still counts (see _Machine).
                if out_exc is None:
                    out_exc = machine.transfer(
                        statements, in_states[index], exceptional=True
                    )
                candidate = out_exc
            else:
                candidate = _refine(out, edge.guard, edge.guard_value)
            existing = in_states.get(edge.target)
            joined = (
                candidate
                if existing is None
                else _join(existing, candidate)
            )
            if existing is None or joined != existing:
                in_states[edge.target] = joined
                worklist.append(edge.target)

    # Replay reachable blocks once against the converged states to
    # collect use/double-release/unowned findings deterministically.
    machine.reporting = True
    out_states: dict[int, _State] = {}
    for index in sorted(in_states):
        out_states[index] = machine.transfer(
            cfg.blocks[index].statements, in_states[index]
        )
    machine.reporting = False

    findings = list(machine.findings.values())
    findings.extend(
        _leak_findings(info, cfg, machine, in_states, out_states)
    )
    return findings


def _leak_findings(
    info: "FunctionInfo",
    cfg: ControlFlowGraph,
    machine: _Machine,
    in_states: dict[int, _State],
    out_states: dict[int, _State],
) -> list[TypestateFinding]:
    normal_exit: _State = ({}, {})
    for index, out in out_states.items():
        if index == cfg.exception_exit:
            continue
        # A normal exit is a reachable block with no *normal* outgoing
        # edge — a trailing block or a return site (whose own raise
        # edges do not make it any less of a function exit). Blocks
        # ending in an explicit ``raise`` leave exceptionally and are
        # never normal exits.
        statements = cfg.blocks[index].statements
        if statements and isinstance(statements[-1], ast.Raise):
            continue
        if not any(
            edge.kind == "normal" for edge in cfg.successors(index)
        ):
            normal_exit = _join(normal_exit, out)
    exception_exit = in_states.get(cfg.exception_exit, ({}, {}))

    findings: list[TypestateFinding] = []
    for resource in machine.resources.values():
        label = f" {resource.label!r}" if resource.label else ""
        described = f"{resource.protocol.describe}{label}"
        on_normal = OPEN in normal_exit[1].get(resource.rid, frozenset())
        on_exception = OPEN in exception_exit[1].get(
            resource.rid, frozenset()
        )
        if on_normal:
            where = "on a normal path"
        elif on_exception:
            where = "on an exception path"
        else:
            continue
        findings.append(
            TypestateFinding(
                category=LEAK,
                path=info.display_path,
                line=resource.line,
                column=resource.col,
                message=(
                    f"{described} acquired in '{info.short_name}' may "
                    f"never be released {where}; "
                    f"{resource.protocol.release_hint}."
                ),
            )
        )
    return findings


def check_project(project: "EffectProject") -> list[TypestateFinding]:
    """Typestate findings for every function in the project, sorted."""
    escape_index = build_escape_index(project)
    findings: list[TypestateFinding] = []
    for qualified in sorted(project.functions):
        findings.extend(
            check_function(project.functions[qualified], project, escape_index)
        )
    return sorted(
        findings,
        key=lambda f: (f.path, f.line, f.column, f.category, f.message),
    )


__all__ = [
    "DOUBLE_RELEASE",
    "LEAK",
    "TypestateFinding",
    "UNOWNED",
    "USE_AFTER_RELEASE",
    "check_function",
    "check_project",
]
