"""Path-sensitive typestate analysis of resource lifecycles.

The package checks *object protocols*: a resource is acquired (a
shared-memory segment published, a process pool spawned, a temp file
written), moves through a small finite-state automaton, and must be
released on **every** path out of the acquiring function — including
the exception paths the upgraded CFG now models — unless ownership is
transferred somewhere sanctioned (returned to the caller, stored in a
registry or attribute, or passed to a callee the interprocedural
escape index knows will release or keep it).

Layout:

* :mod:`~repro.analysis.typestate.protocols` — the declarative
  ``KNOWN_PROTOCOLS`` table of resource automata;
* :mod:`~repro.analysis.typestate.escape` — per-parameter disposition
  index (releases / stores / returns) over the PR-7 effects project;
* :mod:`~repro.analysis.typestate.checker` — the abstract interpreter
  over the exception-edge CFG that produces
  :class:`~repro.analysis.typestate.checker.TypestateFinding` records
  consumed by rules ROP017–ROP020.
"""

from repro.analysis.typestate.checker import TypestateFinding, check_project
from repro.analysis.typestate.protocols import (
    KNOWN_PROTOCOLS,
    ResourceProtocol,
)

__all__ = [
    "KNOWN_PROTOCOLS",
    "ResourceProtocol",
    "TypestateFinding",
    "check_project",
]
