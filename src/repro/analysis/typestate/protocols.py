"""The declarative protocol table: resource automata the checker enforces.

Each :class:`ResourceProtocol` is a two-state automaton — *open* after
the acquire call, *released* after any release operation — plus the
metadata the checker needs to recognise both ends in source form:
canonical acquire callables (resolved through each module's ImportMap,
so ``from multiprocessing import shared_memory`` and ``import
multiprocessing.shared_memory`` both match), release *methods* on the
tracked object, and release *functions* that take the object (or a
name derived from it) as an argument.

Two refinements keep the table honest against the engine's real
idioms:

* ``require_kwarg`` distinguishes owning from non-owning constructor
  forms — ``SharedMemory(create=True)`` owns a fresh segment while
  ``SharedMemory(name=...)`` merely attaches to someone else's;
* ``result_index`` tracks resources returned inside a tuple —
  ``broadcast.publish`` hands back ``(handle, segment, nbytes)`` and
  only element 1 is the caller's to release;
* ``acquire_from_arg`` tracks resources that are *arguments* rather
  than results — ``open(tmp, "w")`` creates an on-disk temp file whose
  lifecycle belongs to the **path** variable (rename-or-unlink), not
  to the returned handle. It is gated to write modes and temp-looking
  names so ordinary output files are not policed.

``neutral_methods`` are lifecycle-irrelevant calls that neither
release nor count as use-after-release — ``SharedMemory.close()``
detaches the local mapping and is legal both before and after
``unlink()``, so treating it as either a use or a release would
produce false positives on the canonical close-then-unlink sequence.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

#: Substrings that mark a path variable as a temporary file (the
#: ``acquire_from_arg`` gate).
_TEMP_NAME_PARTS = ("tmp", "temp")

#: ``open()`` mode characters that create/modify the file on disk.
_WRITE_MODE_CHARS = frozenset("wxa+")


@dataclass(frozen=True)
class ResourceProtocol:
    """One resource automaton: how it is acquired and released."""

    name: str
    #: Human noun for messages ("SharedMemory segment").
    describe: str
    #: Canonical dotted callables whose call acquires the resource.
    acquire: frozenset[str]
    #: Methods on the tracked object that release it.
    release_methods: frozenset[str]
    #: Canonical functions that release it, mapped to the positional
    #: index of the argument being released.
    release_functions: Mapping[str, int] = field(
        default_factory=lambda: MappingProxyType({})
    )
    #: Methods that neither release nor constitute use.
    neutral_methods: frozenset[str] = frozenset()
    #: Keyword that must be present (and truthy-constant) for the call
    #: to count as an acquisition.
    require_kwarg: str | None = None
    #: When the acquire call returns a tuple, the element that is the
    #: resource; ``None`` means the call result itself.
    result_index: int | None = None
    #: When set, the resource is the *argument* at this index (see the
    #: module docstring); the temp-name/write-mode gates apply.
    acquire_from_arg: int | None = None
    #: Whether releasing twice is harmless (``Executor.shutdown`` is
    #: idempotent; ``SharedMemory.unlink`` raises the second time).
    double_release_ok: bool = True
    #: Whether calling other methods after release is an error worth
    #: reporting (paths and name-registries are reusable; handles are
    #: not).
    track_use: bool = True
    #: Remediation text appended to findings.
    release_hint: str = ""


KNOWN_PROTOCOLS: tuple[ResourceProtocol, ...] = (
    ResourceProtocol(
        name="shared-memory-segment",
        describe="SharedMemory segment",
        acquire=frozenset({"multiprocessing.shared_memory.SharedMemory"}),
        require_kwarg="create",
        release_methods=frozenset({"unlink"}),
        neutral_methods=frozenset({"close"}),
        release_functions=MappingProxyType(
            {"repro.engine.broadcast.release": 0}
        ),
        double_release_ok=False,
        release_hint=(
            "unlink() the segment on every path (try/finally), register "
            "it with repro.engine.broadcast, or hand it to an owner"
        ),
    ),
    ResourceProtocol(
        name="broadcast-segment",
        describe="published broadcast segment",
        acquire=frozenset({"repro.engine.broadcast.publish"}),
        result_index=1,
        release_methods=frozenset({"unlink"}),
        neutral_methods=frozenset({"close"}),
        release_functions=MappingProxyType(
            {"repro.engine.broadcast.release": 0}
        ),
        release_hint=(
            "call repro.engine.broadcast.release(segment.name) when the "
            "session ends, or store the segment on the owning session"
        ),
    ),
    ResourceProtocol(
        name="process-pool",
        describe="process pool",
        acquire=frozenset(
            {
                "concurrent.futures.ProcessPoolExecutor",
                "concurrent.futures.process.ProcessPoolExecutor",
                "concurrent.futures.ThreadPoolExecutor",
                "concurrent.futures.thread.ThreadPoolExecutor",
            }
        ),
        release_methods=frozenset({"shutdown"}),
        release_hint=(
            "shutdown() the pool on every path, or use it as a context "
            "manager"
        ),
    ),
    ResourceProtocol(
        name="engine-executor",
        describe="executor/engine",
        acquire=frozenset(
            {
                "repro.engine.executor.ParallelExecutor",
                "repro.engine.core.ExecutionEngine.with_workers",
                "repro.engine.core.ExecutionEngine.resilient",
                "repro.engine.ExecutionEngine.with_workers",
                "repro.engine.ExecutionEngine.resilient",
            }
        ),
        release_methods=frozenset({"close"}),
        release_hint=(
            "close() the engine on every path, or use it as a context "
            "manager"
        ),
    ),
    ResourceProtocol(
        name="file-handle",
        describe="file handle",
        acquire=frozenset({"open", "io.open", "gzip.open", "bz2.open"}),
        release_methods=frozenset({"close"}),
        release_hint="use `with open(...)` or close() in a finally block",
    ),
    ResourceProtocol(
        name="temp-directory",
        describe="temporary directory",
        acquire=frozenset({"tempfile.TemporaryDirectory"}),
        release_methods=frozenset({"cleanup"}),
        release_hint=(
            "cleanup() the directory or use it as a context manager"
        ),
    ),
    ResourceProtocol(
        name="written-temp-file",
        describe="on-disk temp file",
        acquire=frozenset({"open", "io.open"}),
        acquire_from_arg=0,
        release_methods=frozenset({"unlink", "rename", "replace"}),
        release_functions=MappingProxyType(
            {
                "os.replace": 0,
                "os.rename": 0,
                "os.remove": 0,
                "os.unlink": 0,
            }
        ),
        track_use=False,
        release_hint=(
            "rename the temp file into place (os.replace) on success "
            "and unlink it on every failure path"
        ),
    ),
)


#: Union of all release-method names, used by the escape index (which
#: does not know which protocol a parameter carries).
ALL_RELEASE_METHODS: frozenset[str] = frozenset().union(
    *(protocol.release_methods for protocol in KNOWN_PROTOCOLS)
)

#: canonical release function -> (protocol, released-argument index).
RELEASE_FUNCTIONS: dict[str, tuple[ResourceProtocol, int]] = {
    canonical: (protocol, index)
    for protocol in KNOWN_PROTOCOLS
    for canonical, index in protocol.release_functions.items()
}


def _constant_truthy(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and bool(node.value)


def _open_mode(call: ast.Call) -> str | None:
    """The mode string of an ``open``-style call, when statically known."""
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _looks_like_temp_name(name: str) -> bool:
    lowered = name.lower()
    return any(part in lowered for part in _TEMP_NAME_PARTS)


def match_acquire(
    canonical: str | None, call: ast.Call
) -> list[tuple[ResourceProtocol, ast.expr | None]]:
    """Protocols acquired by ``call`` (usually zero or one).

    Returns ``(protocol, bound_argument)`` pairs; the bound argument is
    the path expression for ``acquire_from_arg`` protocols and ``None``
    for result-style acquisitions. A single call can acquire both — an
    ``open(tmp, "w")`` produces a file handle *and* an on-disk temp
    file.
    """
    if canonical is None:
        return []
    matches: list[tuple[ResourceProtocol, ast.expr | None]] = []
    for protocol in KNOWN_PROTOCOLS:
        if canonical not in protocol.acquire:
            continue
        if protocol.require_kwarg is not None:
            supplied = {
                keyword.arg: keyword.value for keyword in call.keywords
            }
            value = supplied.get(protocol.require_kwarg)
            if value is None or not _constant_truthy(value):
                continue
        if protocol.acquire_from_arg is not None:
            index = protocol.acquire_from_arg
            if index >= len(call.args):
                continue
            target = call.args[index]
            name = target.id if isinstance(target, ast.Name) else None
            if name is None or not _looks_like_temp_name(name):
                continue
            mode = _open_mode(call)
            if mode is None or not (set(mode) & _WRITE_MODE_CHARS):
                continue
            matches.append((protocol, target))
        else:
            matches.append((protocol, None))
    return matches


__all__ = [
    "ALL_RELEASE_METHODS",
    "KNOWN_PROTOCOLS",
    "RELEASE_FUNCTIONS",
    "ResourceProtocol",
    "match_acquire",
]
