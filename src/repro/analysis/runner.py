"""Analysis driver: file discovery, rule execution, suppression, CLI.

``python -m repro.analysis src`` (or ``ropus lint``) walks the given
paths, parses every ``.py`` file once, runs each enabled module rule's
visitor over the tree, then runs the project-scope rules (ROP013+,
built on the interprocedural effect engine) over the whole parsed set,
and finally applies the two suppression layers:

* inline ``# ropus: ignore`` / ``# ropus: ignore[ROP001]`` comments on
  the flagged line;
* the optional JSON baseline file (:mod:`repro.analysis.baseline`).

Exit codes: ``0`` clean, ``1`` at least one error-severity finding,
``2`` configuration/usage failure.
"""

from __future__ import annotations

import argparse
import ast
import re
import subprocess
import sys
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Sequence

from repro.analysis import baseline as baseline_module
from repro.analysis import cache as cache_module
from repro.analysis.config import (
    DEFAULT_EXCLUDED_DIRS,
    AnalysisConfig,
    load_pyproject_table,
    resolve_config,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.rules.base import ModuleContext, Rule, iter_rule_classes
from repro.exceptions import ConfigurationError

#: Inline suppression marker: ``# ropus: ignore`` silences every rule on
#: the line; ``# ropus: ignore[ROP001,ROP003]`` silences the listed ids.
_IGNORE_PATTERN = re.compile(
    r"#\s*ropus:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


@dataclass(frozen=True)
class AnalysisResult:
    """Everything one run produced, before rendering."""

    findings: tuple[Finding, ...]
    suppressed_inline: int
    suppressed_baseline: int
    files_analyzed: int

    @property
    def error_count(self) -> int:
        return sum(
            1 for finding in self.findings if finding.severity is Severity.ERROR
        )

    @property
    def clean(self) -> bool:
        return self.error_count == 0


def iter_python_files(
    paths: Sequence[Path], config: AnalysisConfig
) -> list[Path]:
    """Every ``.py`` file under ``paths``, deterministic order."""
    files: list[Path] = []
    seen: set[Path] = set()
    for path in paths:
        if not path.exists():
            raise ConfigurationError(f"no such path: {path}")
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not (
                    set(candidate.parts) & DEFAULT_EXCLUDED_DIRS
                )
            )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen or config.path_excluded(candidate):
                continue
            seen.add(resolved)
            files.append(candidate)
    return files


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def _inline_suppressed(finding: Finding, source_lines: list[str]) -> bool:
    if not 1 <= finding.line <= len(source_lines):
        return False
    match = _IGNORE_PATTERN.search(source_lines[finding.line - 1])
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True
    listed = {item.strip() for item in rules.split(",")}
    return finding.rule in listed


def _parse_module(path: Path) -> tuple[ModuleContext | None, Finding | None]:
    """Parse one file into a ModuleContext, or a ROP000 finding."""
    display = _display_path(path)
    source = path.read_text(encoding="utf-8")
    source_lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return None, Finding(
            path=display,
            line=error.lineno or 1,
            column=(error.offset or 0) + 1,
            rule="ROP000",
            message=f"file does not parse: {error.msg}",
            hint="fix the syntax error; no rules were run",
        )
    return (
        ModuleContext(
            path=path,
            display_path=display,
            tree=tree,
            source_lines=source_lines,
        ),
        None,
    )


def _apply_severity(finding: Finding, config: AnalysisConfig) -> Finding:
    severity = config.severity_for(finding.rule, finding.severity)
    if severity is not finding.severity:
        return replace(finding, severity=severity)
    return finding


def _run_module_rules(
    context: ModuleContext, config: AnalysisConfig
) -> list[Finding]:
    raw: list[Finding] = []
    for rule_class in iter_rule_classes():
        if rule_class.scope != "module":
            continue
        if not config.rule_enabled(rule_class.rule_id):
            continue
        if not rule_class.applies_to(context):
            continue
        for finding in rule_class(context).check():
            raw.append(_apply_severity(finding, config))
    return raw


def _run_project_rules(
    contexts: Sequence[ModuleContext], config: AnalysisConfig
) -> list[Finding]:
    """Run every enabled project-scope rule over the parsed set.

    The effect inference inside :class:`ProjectContext` is lazy, so a
    run with every project rule deselected never builds the call graph.
    """
    rule_classes: list[type[Rule]] = [
        rule_class
        for rule_class in iter_rule_classes()
        if rule_class.scope == "project"
        and config.rule_enabled(rule_class.rule_id)
    ]
    if not rule_classes or not contexts:
        return []

    cache_key: str | None = None
    if config.cache_dir is not None:
        cache_key = cache_module.project_cache_key(
            contexts,
            [rule_class.rule_id for rule_class in rule_classes],
            [
                config.severity_for(
                    rule_class.rule_id, rule_class.default_severity
                ).value
                for rule_class in rule_classes
            ],
        )
        cached = cache_module.load_project_findings(
            config.cache_dir, cache_key
        )
        if cached is not None:
            return cached

    from repro.analysis.effects.project import ProjectContext

    project = ProjectContext(list(contexts))
    raw: list[Finding] = []
    for rule_class in rule_classes:
        for finding in rule_class(project).check():  # type: ignore[call-arg]
            raw.append(_apply_severity(finding, config))
    if cache_key is not None and config.cache_dir is not None:
        cache_module.store_project_findings(
            config.cache_dir, cache_key, raw
        )
    return raw


def analyze_file(
    path: Path, config: AnalysisConfig
) -> tuple[list[Finding], int]:
    """Run every enabled rule over one file.

    Returns ``(findings, inline_suppressed_count)``. Project-scope
    rules run with the single file as the whole project, so
    intra-module interprocedural findings still surface. A file that
    does not parse yields a single ``ROP000`` syntax-error finding
    rather than aborting the run.
    """
    context, parse_error = _parse_module(path)
    if context is None:
        return [parse_error] if parse_error is not None else [], 0

    raw = _run_module_rules(context, config)
    raw.extend(_run_project_rules([context], config))
    findings = [
        finding
        for finding in raw
        if not _inline_suppressed(finding, context.source_lines)
    ]
    return findings, len(raw) - len(findings)


def analyze_paths(
    paths: Sequence[str | Path], config: AnalysisConfig | None = None
) -> AnalysisResult:
    """Analyze files/directories and apply every suppression layer."""
    config = config if config is not None else AnalysisConfig()
    files = iter_python_files([Path(path) for path in paths], config)
    raw: list[Finding] = []
    contexts: list[ModuleContext] = []
    sources: dict[str, list[str]] = {}
    for path in files:
        context, parse_error = _parse_module(path)
        if context is None:
            if parse_error is not None:
                raw.append(parse_error)
            continue
        contexts.append(context)
        sources[context.display_path] = context.source_lines
        raw.extend(_run_module_rules(context, config))

    raw.extend(_run_project_rules(contexts, config))

    findings = [
        finding
        for finding in raw
        if not _inline_suppressed(
            finding, sources.get(finding.path, [])
        )
    ]
    inline_suppressed = len(raw) - len(findings)

    baseline_suppressed = 0
    if config.baseline is not None and config.baseline.exists():
        fingerprints = baseline_module.load_baseline(config.baseline)
        findings, baseline_suppressed = baseline_module.apply_baseline(
            findings, fingerprints
        )

    return AnalysisResult(
        findings=tuple(sorted(findings, key=Finding.sort_key)),
        suppressed_inline=inline_suppressed,
        suppressed_baseline=baseline_suppressed,
        files_analyzed=len(files),
    )


def changed_python_files(roots: Sequence[Path]) -> list[Path]:
    """Python files touched relative to ``HEAD``, scoped to ``roots``.

    Union of worktree+index modifications and untracked files, so the
    mode sees exactly what a ``git commit -a`` would ship. Deleted
    files drop out naturally (they no longer exist on disk). Project
    rules then see *only* the changed files, which keeps the mode fast
    at the cost of cross-module edges into unchanged code — the full
    run in CI retains complete coverage.
    """
    names: set[str] = set()
    for command in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                command, capture_output=True, text=True, check=False
            )
        except OSError as error:  # pragma: no cover - git missing
            raise ConfigurationError(
                f"--changed requires git: {error}"
            ) from error
        if proc.returncode != 0:
            raise ConfigurationError(
                "--changed requires a git checkout: "
                + proc.stderr.strip()
            )
        names.update(
            line.strip() for line in proc.stdout.splitlines() if line.strip()
        )

    resolved_roots = [root.resolve() for root in roots]
    selected: list[Path] = []
    for name in sorted(names):
        candidate = Path(name)
        if candidate.suffix != ".py" or not candidate.is_file():
            continue
        resolved = candidate.resolve()
        if any(
            resolved == root or root in resolved.parents
            for root in resolved_roots
        ):
            selected.append(candidate)
    return selected


def add_analysis_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the analyzer's options on ``parser``.

    Shared between the standalone ``python -m repro.analysis`` parser
    and the ``ropus lint`` subcommand so both speak the same flags.
    """
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--exclude", action="append", default=[],
        help="path substring to skip (repeatable)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="JSON baseline file of accepted findings",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings into --baseline and exit 0",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help=(
            "prune baseline entries that no longer match a finding "
            "(listing each stale suppression) and exit 0"
        ),
    )
    parser.add_argument(
        "--changed", action="store_true",
        help=(
            "analyze only files changed relative to git HEAD "
            "(scoped to the given paths)"
        ),
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="skip the [tool.repro-analysis] pyproject table",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--explain", metavar="ROPxxx", default=None,
        help=(
            "print one rule's description, rationale, and good/bad "
            "examples, then exit"
        ),
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the .ropus_cache project-pass cache",
    )


def build_parser(prog: str = "repro.analysis") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "AST-based invariant linter for the R-Opus pipeline "
            "(determinism, pickle-safety, tolerance discipline)"
        ),
    )
    add_analysis_arguments(parser)
    return parser


def _list_rules() -> str:
    lines = []
    for rule_class in iter_rule_classes():
        lines.append(
            f"{rule_class.rule_id} {rule_class.name} "
            f"[{rule_class.default_severity}]"
        )
        lines.append(f"    {rule_class.description}")
    return "\n".join(lines) + "\n"


def explain_rule(rule_id: str) -> str:
    """Human-readable card for one registered rule.

    Raises :class:`ConfigurationError` for unknown ids, so both the
    CLI and the README generator share one lookup.
    """
    from repro.analysis.rules import registered_rules

    rule_class = registered_rules().get(rule_id)
    if rule_class is None:
        raise ConfigurationError(
            f"--explain names an unknown rule id: {rule_id} "
            "(see --list-rules)"
        )
    sections = [
        f"{rule_class.rule_id}: {rule_class.name} "
        f"[{rule_class.default_severity.value}]",
        "",
        rule_class.description,
    ]
    if rule_class.rationale:
        sections += ["", "Why it matters:", f"  {rule_class.rationale}"]
    if rule_class.example_bad:
        sections += ["", "Flagged:"]
        sections += [
            f"    {line}" for line in rule_class.example_bad.splitlines()
        ]
    if rule_class.example_good:
        sections += ["", "Sanctioned:"]
        sections += [
            f"    {line}" for line in rule_class.example_good.splitlines()
        ]
    if rule_class.hint:
        sections += ["", f"Hint: {rule_class.hint}"]
    return "\n".join(sections) + "\n"


def rule_table_markdown() -> str:
    """Markdown table over every registered rule, for the README.

    The README embeds this between ``<!-- rule-table:begin -->`` /
    ``<!-- rule-table:end -->`` markers and a test regenerates it from
    the registry, so the documented rule list can never drift from the
    enforced one.
    """
    rows = [
        "| Rule | Name | Severity | Checks that |",
        "| --- | --- | --- | --- |",
    ]
    for rule_class in iter_rule_classes():
        description = " ".join(rule_class.description.split())
        rows.append(
            f"| {rule_class.rule_id} | `{rule_class.name}` "
            f"| {rule_class.default_severity.value} | {description} |"
        )
    return "\n".join(rows) + "\n"


def run_analysis_command(args: argparse.Namespace) -> int:
    """Execute an already-parsed analyzer invocation."""
    if args.list_rules:
        sys.stdout.write(_list_rules())
        return 0
    if getattr(args, "explain", None):
        try:
            sys.stdout.write(explain_rule(args.explain))
        except ConfigurationError as error:
            sys.stderr.write(f"repro.analysis: {error}\n")
            return 2
        return 0

    try:
        pyproject = (
            {} if args.no_config else load_pyproject_table(Path(args.paths[0]))
        )
        config = resolve_config(
            select=args.select,
            ignore=args.ignore,
            exclude=args.exclude,
            baseline=args.baseline,
            pyproject=pyproject,
            no_cache=getattr(args, "no_cache", False),
        )
        paths: Sequence[str | Path] = args.paths
        if getattr(args, "changed", False):
            paths = changed_python_files(
                [Path(path) for path in args.paths]
            )
            if not paths:
                sys.stdout.write("no changed Python files to analyze\n")
                return 0
        if args.write_baseline or getattr(args, "update_baseline", False):
            if config.baseline is None:
                raise ConfigurationError(
                    "--write-baseline/--update-baseline require "
                    "--baseline PATH"
                )
            # Record findings pre-baseline so the file is complete.
            scan_config = replace(config, baseline=None)
            result = analyze_paths(paths, scan_config)
            if args.write_baseline:
                count = baseline_module.write_baseline(
                    result.findings, config.baseline
                )
                sys.stdout.write(
                    f"wrote {count} suppression(s) to {config.baseline}\n"
                )
                return 0
            kept, stale = baseline_module.prune_baseline(
                result.findings, config.baseline
            )
            for rule, file_path, message in stale:
                sys.stderr.write(
                    f"warning: stale suppression pruned: "
                    f"{rule} {file_path}: {message}\n"
                )
            sys.stdout.write(
                f"baseline {config.baseline}: kept {kept} "
                f"suppression(s), pruned {len(stale)} stale\n"
            )
            return 0
        result = analyze_paths(paths, config)
    except ConfigurationError as error:
        sys.stderr.write(f"repro.analysis: {error}\n")
        return 2

    suppressed = result.suppressed_baseline
    if args.format == "json":
        sys.stdout.write(render_json(result.findings, suppressed=suppressed))
    elif args.format == "sarif":
        sys.stdout.write(render_sarif(result.findings, suppressed=suppressed))
    else:
        sys.stdout.write(render_text(result.findings, suppressed=suppressed))
    return 0 if result.clean else 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    return run_analysis_command(parser.parse_args(argv))
