"""The abstract domain: intervals tagged with units and defining lines.

Each tracked variable maps to an :class:`AbstractValue` — the product
of three lattices:

* an **interval** ``[low, high]`` over the extended reals
  (:class:`Interval`), joined by convex hull and widened to infinity
  at loop heads so the fixpoint terminates;
* a **unit** tag (:class:`repro.units.Unit` or ``None`` for unknown),
  joined to ``None`` on disagreement — the *diagnosis* of disagreement
  happens at operation sites in the interpreter, where the offending
  expression is known, never at joins;
* the **reaching definitions**: the set of source lines whose
  assignments may have produced the value, giving diagnostics their
  "defined at line N" provenance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.units import Unit

_INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A closed interval over the extended reals; ``[-inf, inf]`` is top.

    The analysis only needs *provable* facts, so bounds are kept
    conservative: any operation it cannot model precisely widens to
    top rather than guessing.
    """

    low: float = -_INF
    high: float = _INF

    @classmethod
    def top(cls) -> "Interval":
        return cls()

    @classmethod
    def point(cls, value: float) -> "Interval":
        return cls(value, value)

    @property
    def is_top(self) -> bool:
        return self.low == -_INF and self.high == _INF

    @property
    def is_empty(self) -> bool:
        return self.low > self.high

    def join(self, other: "Interval") -> "Interval":
        """Convex hull: the smallest interval containing both."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.low, other.low), max(self.high, other.high))

    def meet(self, other: "Interval") -> "Interval":
        """Intersection; may be empty (an infeasible path)."""
        return Interval(max(self.low, other.low), min(self.high, other.high))

    def widen(self, newer: "Interval") -> "Interval":
        """Classic interval widening: any bound that moved jumps to inf."""
        low = self.low if newer.low >= self.low else -_INF
        high = self.high if newer.high <= self.high else _INF
        return Interval(low, high)

    # -- arithmetic ----------------------------------------------------
    def add(self, other: "Interval") -> "Interval":
        return Interval(self.low + other.low, self.high + other.high)

    def sub(self, other: "Interval") -> "Interval":
        return Interval(self.low - other.high, self.high - other.low)

    def mul(self, other: "Interval") -> "Interval":
        corners = [
            a * b
            for a in (self.low, self.high)
            for b in (other.low, other.high)
            if not math.isnan(a * b)
        ]
        if not corners:
            return Interval.top()
        return Interval(min(corners), max(corners))

    def div(self, other: "Interval") -> "Interval":
        # Division by an interval containing zero is unbounded.
        if other.low <= 0.0 <= other.high:
            return Interval.top()
        corners = [
            a / b
            for a in (self.low, self.high)
            for b in (other.low, other.high)
            if not math.isnan(a / b)
        ]
        if not corners:
            return Interval.top()
        return Interval(min(corners), max(corners))

    def neg(self) -> "Interval":
        return Interval(-self.high, -self.low)

    # -- queries -------------------------------------------------------
    def entirely_outside(self, unit: Unit, *, atol: float = 0.0) -> bool:
        """Provably no point of this interval lies in ``unit``'s domain.

        ``atol`` widens the unit's domain before deciding, so values a
        rounding error past a bound are not reported as violations.
        """
        if self.is_empty or self.is_top:
            return False
        return self.high < unit.low - atol or self.low > unit.high + atol

    def __str__(self) -> str:
        return f"[{self.low:g}, {self.high:g}]"


#: Singleton top for cheap comparisons.
TOP_INTERVAL = Interval.top()


@dataclass(frozen=True)
class AbstractValue:
    """What the analysis knows about one value at one program point."""

    unit: Unit | None = None
    interval: Interval = TOP_INTERVAL
    defs: frozenset[int] = frozenset()

    @classmethod
    def top(cls) -> "AbstractValue":
        return _TOP_VALUE

    @classmethod
    def constant(cls, value: float, line: int | None = None) -> "AbstractValue":
        defs = frozenset() if line is None else frozenset({line})
        return cls(unit=None, interval=Interval.point(value), defs=defs)

    @classmethod
    def of_unit(
        cls, unit: Unit | None, line: int | None = None
    ) -> "AbstractValue":
        """A value known only by its unit: interval = declared domain."""
        defs = frozenset() if line is None else frozenset({line})
        if unit is None:
            return cls(defs=defs)
        return cls(unit=unit, interval=Interval(unit.low, unit.high), defs=defs)

    def join(self, other: "AbstractValue") -> "AbstractValue":
        unit = self.unit if self.unit is other.unit else None
        return AbstractValue(
            unit=unit,
            interval=self.interval.join(other.interval),
            defs=self.defs | other.defs,
        )

    def widen(self, newer: "AbstractValue") -> "AbstractValue":
        unit = self.unit if self.unit is newer.unit else None
        return AbstractValue(
            unit=unit,
            interval=self.interval.widen(newer.interval),
            defs=self.defs | newer.defs,
        )

    def with_interval(self, interval: Interval) -> "AbstractValue":
        return AbstractValue(unit=self.unit, interval=interval, defs=self.defs)

    def with_unit(self, unit: Unit | None) -> "AbstractValue":
        return AbstractValue(unit=unit, interval=self.interval, defs=self.defs)

    def describe(self) -> str:
        """Human form for diagnostics: ``Percent [0, 100]``."""
        unit = self.unit.name if self.unit is not None else "unitless"
        return f"{unit} {self.interval}"


_TOP_VALUE = AbstractValue()


class Environment:
    """An immutable-by-convention map from variable name to value.

    Join is pointwise; a variable bound on only one side joins with top
    (it *may* hold anything on the unbound path).
    """

    __slots__ = ("bindings",)

    def __init__(self, bindings: Mapping[str, AbstractValue] | None = None):
        self.bindings: dict[str, AbstractValue] = dict(bindings or {})

    def get(self, name: str) -> AbstractValue:
        return self.bindings.get(name, _TOP_VALUE)

    def set(self, name: str, value: AbstractValue) -> "Environment":
        updated = dict(self.bindings)
        updated[name] = value
        return Environment(updated)

    def copy(self) -> "Environment":
        return Environment(self.bindings)

    def join(self, other: "Environment") -> "Environment":
        joined: dict[str, AbstractValue] = {}
        for name in self.bindings.keys() | other.bindings.keys():
            joined[name] = self.get(name).join(other.get(name))
        return Environment(joined)

    def widen(self, newer: "Environment") -> "Environment":
        widened: dict[str, AbstractValue] = {}
        for name in self.bindings.keys() | newer.bindings.keys():
            widened[name] = self.get(name).widen(newer.get(name))
        return Environment(widened)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Environment):
            return NotImplemented
        return self.bindings == other.bindings

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{name}={value.describe()}"
            for name, value in sorted(self.bindings.items())
        )
        return f"Environment({inner})"


def join_all(environments: Iterable[Environment]) -> Environment:
    result: Environment | None = None
    for environment in environments:
        result = environment if result is None else result.join(environment)
    return result if result is not None else Environment()
