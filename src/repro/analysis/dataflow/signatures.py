"""Unit knowledge the interpreter seeds its states from.

Three sources, in decreasing order of authority:

* **Annotations** — parameters, returns, and dataclass fields marked
  with the :mod:`repro.units` aliases. Resolved syntactically through
  the module's :class:`~repro.analysis.rules.base.ImportMap` (the
  analysis never imports the code it checks).
* **Validation helpers** — a call to ``require_fraction(x, ...)``
  proves ``x`` is a ``Fraction01`` on every path past it
  (:data:`repro.units.VALIDATOR_UNITS` ties helper to unit);
  ``require_positive``/``require_non_negative`` refine the interval
  while preserving whatever unit is already known.
* **Known signatures** — the unit contracts of the repro core
  functions, so cross-module calls are checked even though the
  analysis is intraprocedural. ``tests/analysis/test_dataflow.py``
  asserts this table agrees with the live annotations, so it cannot
  silently drift.

Plus one *convention*: attribute names that spell a paper symbol
(``u_low``, ``theta``, ``m_degr_percent``, ...) carry that symbol's
unit wherever they are read — ``qos.m_degr_percent`` is a ``Percent``
no matter what object ``qos`` is. The names are specific enough that
a colliding non-QoS attribute would be a naming bug in its own right.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.rules.base import ImportMap
from repro.units import Unit, unit_for_annotation

#: Canonical names of the repro.units markers, for annotation checks.
_UNITS_MODULE = "repro.units"


@dataclass(frozen=True)
class Signature:
    """The unit contract of one callable."""

    params: tuple[tuple[str, str | None], ...]  # (name, unit name | None)
    returns: str | None = None

    def param_unit(self, index: int, keyword: str | None) -> Unit | None:
        if keyword is not None:
            for name, unit_name in self.params:
                if name == keyword:
                    return _unit(unit_name)
            return None
        if 0 <= index < len(self.params):
            return _unit(self.params[index][1])
        return None

    def param_name(self, index: int, keyword: str | None) -> str:
        if keyword is not None:
            return keyword
        if 0 <= index < len(self.params):
            return self.params[index][0]
        return f"#{index + 1}"

    @property
    def return_unit(self) -> Unit | None:
        return _unit(self.returns)


def _unit(name: str | None) -> Unit | None:
    return None if name is None else unit_for_annotation(name)


#: Unit contracts of repro callables checked at cross-module call
#: sites. Keyed by canonical dotted name (post ImportMap resolution).
KNOWN_SIGNATURES: dict[str, Signature] = {
    "repro.core.partition.breakpoint_fraction": Signature(
        params=(
            ("u_low", "Fraction01"),
            ("u_high", "Fraction01"),
            ("theta", "Probability"),
        ),
        returns="Fraction01",
    ),
    "repro.core.partition.partition_demand": Signature(
        params=(
            ("demand_values", None),
            ("demand_cap", "CpuShares"),
            ("breakpoint_demand", "CpuShares"),
        ),
    ),
    "repro.core.partition.worst_case_granted_allocation": Signature(
        params=(
            ("cos1_demand", None),
            ("cos2_demand", None),
            ("theta", "Probability"),
            ("u_low", "Fraction01"),
        ),
    ),
    "repro.core.qos.case_study_qos": Signature(
        params=(
            ("m_degr_percent", "Percent"),
            ("t_degr_minutes", None),
            ("u_low", "Fraction01"),
            ("u_high", "Fraction01"),
            ("u_degr", "Fraction01"),
        ),
    ),
    "repro.metrics.access.measure_theta": Signature(
        params=(("allocation", None), ("capacity", "CpuShares")),
        returns="Probability",
    ),
    "repro.metrics.access.theta_by_slot": Signature(
        params=(("allocation", None), ("capacity", "CpuShares")),
    ),
    "repro.metrics.access.required_capacity_for_theta": Signature(
        params=(
            ("allocation", None),
            ("theta", "Probability"),
            ("capacity_limit", "CpuShares"),
            ("tolerance", None),
        ),
        returns="CpuShares",
    ),
    "repro.engine.faults.seeded_occurrences": Signature(
        params=(
            ("seed", None),
            ("label", None),
            ("rate", "Probability"),
            ("horizon", None),
        ),
    ),
    "repro.placement.clustering.cluster_workloads": Signature(
        params=(
            ("features", None),
            ("n_clusters", None),
            ("seed", None),
            ("method", None),
        ),
    ),
    "repro.placement.clustering.demand_shape_features": Signature(
        params=(("demands", None), ("translations", None)),
    ),
    "repro.placement.kernels.evaluate_capacities": Signature(
        params=(("simulator", None), ("capacities", None)),
    ),
    "repro.placement.kernels.required_capacity_batch": Signature(
        params=(
            ("batch", None),
            ("capacity_limits", None),
            ("commitment", None),
            ("tolerance", "CpuShares"),
            ("probes", None),
            ("mode", None),
        ),
    ),
    "repro.placement.sharding.derive_shard_seed": Signature(
        params=(("seed", None), ("shard_index", None)),
    ),
    "repro.placement.sharding.pair_shape_features": Signature(
        params=(("pairs", None),),
    ),
    "repro.placement.sharding.partition_pool": Signature(
        params=(
            ("pool", None),
            ("masses", None),
            ("min_servers_per_shard", None),
        ),
    ),
    "repro.workloads.ensemble.scaled_ensemble": Signature(
        params=(
            ("n_apps", None),
            ("seed", None),
            ("weeks", None),
            ("slot_minutes", None),
        ),
    ),
    "repro.util.validation.require_fraction": Signature(
        params=(("value", None), ("name", None)), returns="Fraction01"
    ),
    "repro.util.validation.require_probability": Signature(
        params=(("value", None), ("name", None)), returns="Probability"
    ),
}

#: Validation helpers that *refine* their first argument without
#: assigning it a unit: canonical name -> (low, high) interval facts.
REFINING_VALIDATORS: dict[str, tuple[float, float]] = {
    "repro.util.validation.require_positive": (0.0, float("inf")),
    "repro.util.validation.require_non_negative": (0.0, float("inf")),
}

#: Paper-symbol attribute names and the unit they always denote.
ATTRIBUTE_UNITS: dict[str, str | None] = {
    "u_low": "Fraction01",
    "u_high": "Fraction01",
    "u_degr": "Fraction01",
    "m_degr_percent": "Percent",
    "m_degr_fraction": "Fraction01",
    "compliance_percent": "Percent",
    "compliance_fraction": "Fraction01",
    "theta": "Probability",
    "acceptable_fraction": "Fraction01",
    "degraded_fraction": "Fraction01",
    "violation_fraction": "Fraction01",
    "breakpoint": "Fraction01",
    "burst_factor": None,  # 1/U_low: unbounded above, deliberately unitless
    "longest_degraded_run_slots": "Slots",
}


def attribute_unit(attribute: str) -> Unit | None:
    """The conventional unit of a paper-symbol attribute name."""
    return _unit(ATTRIBUTE_UNITS.get(attribute))


def annotation_unit(node: ast.expr | None, imports: ImportMap) -> Unit | None:
    """The unit named by an annotation expression, if any.

    Recognizes the markers by canonical name (``repro.units.Percent``
    however the module imported it), by bare name when spelled
    directly, and inside ``Optional[...]`` / ``X | None`` wrappers.
    String (quoted) annotations are parsed and resolved the same way.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    # Optional[X] / Union[X, None] / X | None wrappers.
    if isinstance(node, ast.Subscript):
        wrapper = imports.resolve_node(node.value)
        if wrapper in {
            "typing.Optional",
            "typing.Union",
            "Optional",
            "Union",
        }:
            inner = node.slice
            elements = (
                list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
            )
            for element in elements:
                unit = annotation_unit(element, imports)
                if unit is not None:
                    return unit
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            unit = annotation_unit(side, imports)
            if unit is not None:
                return unit
        return None
    canonical = imports.resolve_node(node)
    if canonical is None:
        return None
    if canonical.startswith(f"{_UNITS_MODULE}."):
        return unit_for_annotation(canonical)
    # A bare spelling that did not resolve through an import only
    # counts when it is exactly a marker name (fixture/doc usage).
    if "." not in canonical:
        return unit_for_annotation(canonical)
    return None


def collect_local_signatures(
    tree: ast.Module, imports: ImportMap
) -> dict[str, Signature]:
    """Unit contracts of functions defined at module top level.

    Intraprocedural analysis still checks *calls* to module-local
    functions against their declared parameter units; only top-level
    ``def``s participate (methods would need receiver tracking).
    """
    signatures: dict[str, Signature] = {}
    for node in tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params: list[tuple[str, str | None]] = []
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            unit = annotation_unit(arg.annotation, imports)
            params.append((arg.arg, unit.name if unit is not None else None))
        return_unit = annotation_unit(node.returns, imports)
        signatures[node.name] = Signature(
            params=tuple(params),
            returns=return_unit.name if return_unit is not None else None,
        )
    return signatures
