"""Per-function control-flow graphs for the abstract interpreter.

One :class:`ControlFlowGraph` is built per ``def``. Blocks hold simple
statements only; branching constructs (``if``/``while``/``for``) end a
block and contribute *guarded edges* — the edge records the test
expression and which boolean outcome takes it, so the interpreter can
refine intervals along each branch (``if theta > 0:`` narrows
``theta`` on the true edge).

Constructs the interpreter cannot usefully model are handled
conservatively rather than rejected: ``try`` bodies flow into their
handlers with no guard, ``with`` bodies are inlined, ``match`` arms
become unguarded alternatives. Nested function/class definitions are
opaque single statements (the analysis is intraprocedural; inner defs
get their own CFGs).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class Edge:
    """A directed edge, optionally guarded by a branch condition."""

    source: int
    target: int
    guard: ast.expr | None = None
    guard_value: bool = True


@dataclass
class BasicBlock:
    """A straight-line run of simple statements."""

    index: int
    statements: list[ast.stmt] = field(default_factory=list)


@dataclass
class ControlFlowGraph:
    """Blocks plus guarded edges; block 0 is the unique entry."""

    blocks: list[BasicBlock] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)

    def new_block(self) -> BasicBlock:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def connect(
        self,
        source: BasicBlock,
        target: BasicBlock,
        guard: ast.expr | None = None,
        guard_value: bool = True,
    ) -> None:
        self.edges.append(Edge(source.index, target.index, guard, guard_value))

    def predecessors(self, index: int) -> list[Edge]:
        return [edge for edge in self.edges if edge.target == index]

    def successors(self, index: int) -> list[Edge]:
        return [edge for edge in self.edges if edge.source == index]


#: Statements that end a block with no fall-through successor.
_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)

#: ``try`` statement types; ``ast.TryStar`` exists on 3.11+ only.
_TRY_TYPES: tuple[type, ...] = tuple(
    t
    for t in (ast.Try, getattr(ast, "TryStar", None))
    if isinstance(t, type)
)


class _Builder:
    """Recursive-descent CFG construction with loop/exit bookkeeping."""

    def __init__(self) -> None:
        self.cfg = ControlFlowGraph()
        # (loop_head, loop_exit) stack for break/continue targets.
        self._loops: list[tuple[BasicBlock, BasicBlock]] = []

    def build(self, body: list[ast.stmt]) -> ControlFlowGraph:
        entry = self.cfg.new_block()
        self._sequence(body, entry)
        return self.cfg

    def _sequence(
        self, statements: list[ast.stmt], current: BasicBlock
    ) -> BasicBlock | None:
        """Append ``statements`` starting in ``current``.

        Returns the live fall-through block, or ``None`` when every
        path through the statements terminates (return/raise/...).
        """
        block: BasicBlock | None = current
        for statement in statements:
            if block is None:
                # Unreachable code after a terminator: give it its own
                # disconnected block so rules still see the nodes.
                block = self.cfg.new_block()
            block = self._statement(statement, block)
        return block

    def _statement(
        self, statement: ast.stmt, block: BasicBlock
    ) -> BasicBlock | None:
        if isinstance(statement, ast.If):
            return self._if(statement, block)
        if isinstance(statement, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(statement, block)
        if isinstance(statement, _TRY_TYPES):
            return self._try(statement, block)
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            block.statements.append(statement)
            return self._sequence(statement.body, block)
        if isinstance(statement, ast.Match):
            return self._match(statement, block)

        block.statements.append(statement)
        if isinstance(statement, _TERMINATORS):
            if isinstance(statement, ast.Break) and self._loops:
                self.cfg.connect(block, self._loops[-1][1])
            elif isinstance(statement, ast.Continue) and self._loops:
                self.cfg.connect(block, self._loops[-1][0])
            return None
        return block

    def _if(self, statement: ast.If, block: BasicBlock) -> BasicBlock | None:
        then_entry = self.cfg.new_block()
        self.cfg.connect(block, then_entry, statement.test, True)
        then_exit = self._sequence(statement.body, then_entry)

        if statement.orelse:
            else_entry = self.cfg.new_block()
            self.cfg.connect(block, else_entry, statement.test, False)
            else_exit = self._sequence(statement.orelse, else_entry)
        else:
            else_exit = None

        live = [exit_ for exit_ in (then_exit, else_exit) if exit_ is not None]
        if not statement.orelse:
            # No else: the false edge falls through to the merge block.
            merge = self.cfg.new_block()
            self.cfg.connect(block, merge, statement.test, False)
            for exit_ in live:
                self.cfg.connect(exit_, merge)
            return merge
        if not live:
            return None
        merge = self.cfg.new_block()
        for exit_ in live:
            self.cfg.connect(exit_, merge)
        return merge

    def _loop(
        self,
        statement: ast.While | ast.For | ast.AsyncFor,
        block: BasicBlock,
    ) -> BasicBlock:
        head = self.cfg.new_block()
        exit_block = self.cfg.new_block()
        self.cfg.connect(block, head)

        if isinstance(statement, ast.While):
            guard: ast.expr | None = statement.test
            body_entry = self.cfg.new_block()
            self.cfg.connect(head, body_entry, guard, True)
            self.cfg.connect(head, exit_block, guard, False)
        else:
            # ``for target in iter``: bind the target opaquely in the
            # head, then branch unguarded (iteration count unknown).
            head.statements.append(statement)
            body_entry = self.cfg.new_block()
            self.cfg.connect(head, body_entry)
            self.cfg.connect(head, exit_block)

        self._loops.append((head, exit_block))
        body_exit = self._sequence(statement.body, body_entry)
        self._loops.pop()
        if body_exit is not None:
            self.cfg.connect(body_exit, head)

        if statement.orelse:
            # The else arm runs on normal loop exit; fold it into the
            # exit path conservatively.
            else_exit = self._sequence(statement.orelse, exit_block)
            return else_exit if else_exit is not None else exit_block
        return exit_block

    def _try(self, statement: ast.stmt, block: BasicBlock) -> BasicBlock | None:
        body = getattr(statement, "body", [])
        handlers = getattr(statement, "handlers", [])
        orelse = getattr(statement, "orelse", [])
        finalbody = getattr(statement, "finalbody", [])

        body_entry = self.cfg.new_block()
        self.cfg.connect(block, body_entry)
        body_exit = self._sequence([*body, *orelse], body_entry)

        exits: list[BasicBlock] = []
        if body_exit is not None:
            exits.append(body_exit)
        for handler in handlers:
            handler_entry = self.cfg.new_block()
            # Any point in the body may raise: conservatively enter the
            # handler straight from the pre-try block with no facts
            # from the body.
            self.cfg.connect(block, handler_entry)
            handler_exit = self._sequence(handler.body, handler_entry)
            if handler_exit is not None:
                exits.append(handler_exit)

        if not exits:
            merge: BasicBlock | None = None
        else:
            merge = self.cfg.new_block()
            for exit_ in exits:
                self.cfg.connect(exit_, merge)
        if finalbody:
            if merge is None:
                merge = self.cfg.new_block()
            return self._sequence(finalbody, merge)
        return merge

    def _match(self, statement: ast.Match, block: BasicBlock) -> BasicBlock | None:
        block.statements.append(statement)
        exits: list[BasicBlock] = []
        for case in statement.cases:
            case_entry = self.cfg.new_block()
            self.cfg.connect(block, case_entry)
            case_exit = self._sequence(case.body, case_entry)
            if case_exit is not None:
                exits.append(case_exit)
        merge = self.cfg.new_block()
        # No case may match: fall through.
        self.cfg.connect(block, merge)
        for exit_ in exits:
            self.cfg.connect(exit_, merge)
        return merge


def build_cfg(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> ControlFlowGraph:
    """The control-flow graph of one function body."""
    return _Builder().build(function.body)
