"""Per-function control-flow graphs with real exception edges.

One :class:`ControlFlowGraph` is built per ``def``. Blocks hold simple
statements only; branching constructs (``if``/``while``/``for``) end a
block and contribute *guarded edges* — the edge records the test
expression and which boolean outcome takes it, so the interpreter can
refine intervals along each branch (``if theta > 0:`` narrows
``theta`` on the true edge).

Exception flow is modelled explicitly rather than with the historical
"try body flows into handler with no guard" shortcut:

* every statement that **may raise** (it contains a call, a subscript,
  an ``await``, or is a ``raise``/``assert``) gets its own block, with
  ``kind="exception"`` edges to the enclosing handler entries, through
  the enclosing ``finally`` (as a duplicated *exceptional* copy of the
  final body whose exit re-raises outward), and — when no enclosing
  handler is a catch-all — to the function's implicit
  :attr:`~ControlFlowGraph.exception_exit` block;
* an exception edge is taken *before* the raising statement completes,
  so consumers propagate the **entry** state of the source block along
  it (the source block holds exactly the one may-raise statement);
* ``return`` under a ``try``/``finally`` routes through the final body
  first; ``with contextlib.suppress(...)`` additionally lets body
  exceptions resume at the statement after the ``with``.

Deliberate approximations, documented so rule authors can rely on
them: attribute access, arithmetic, and store/delete-context
subscripts are treated as non-raising
(``AttributeError``/``ZeroDivisionError`` sites are legion and almost
never protocol-relevant); except clauses are not matched by exception
*type* — any handler of the nearest enclosing ``try`` may receive any
exception, and propagation past the try stops only at a catch-all
handler (bare ``except``, ``except Exception``/``BaseException``);
``break``/``continue`` jump straight to their loop edges without
running intervening ``finally`` bodies. Nested function/class
definitions are opaque single statements (the analysis is
intraprocedural; inner defs get their own CFGs).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class Edge:
    """A directed edge, optionally guarded by a branch condition.

    ``kind`` is ``"normal"`` for fall-through/branch edges and
    ``"exception"`` for edges taken when the source block's statement
    raises. Exception edges are never guarded, and they carry the
    source block's *entry* state (the raising statement did not
    complete).
    """

    source: int
    target: int
    guard: ast.expr | None = None
    guard_value: bool = True
    kind: str = "normal"


@dataclass
class BasicBlock:
    """A straight-line run of simple statements."""

    index: int
    statements: list[ast.stmt] = field(default_factory=list)


@dataclass
class ControlFlowGraph:
    """Blocks plus guarded edges; block 0 is the unique entry.

    ``exception_exit`` indexes the implicit function-exit-via-exception
    block: an empty block that every uncaught raise site reaches. It is
    always allocated (index 1), even for functions that cannot raise —
    it simply stays unreachable there.
    """

    blocks: list[BasicBlock] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)
    exception_exit: int = -1

    def new_block(self) -> BasicBlock:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def connect(
        self,
        source: BasicBlock,
        target: BasicBlock,
        guard: ast.expr | None = None,
        guard_value: bool = True,
        kind: str = "normal",
    ) -> None:
        self.edges.append(
            Edge(source.index, target.index, guard, guard_value, kind)
        )

    def predecessors(self, index: int) -> list[Edge]:
        return [edge for edge in self.edges if edge.target == index]

    def successors(self, index: int) -> list[Edge]:
        return [edge for edge in self.edges if edge.source == index]


#: Statements that end a block with no fall-through successor.
_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)

#: ``try`` statement types; ``ast.TryStar`` exists on 3.11+ only.
_TRY_TYPES: tuple[type, ...] = tuple(
    t
    for t in (ast.Try, getattr(ast, "TryStar", None))
    if isinstance(t, type)
)

#: Expression node types whose evaluation may raise. Attribute loads
#: and arithmetic are deliberately excluded (see the module docstring).
_RAISING_EXPRS = (ast.Call, ast.Subscript, ast.Await)

#: Handler type names that catch (effectively) everything.
_CATCH_ALL_TYPES = frozenset({"Exception", "BaseException"})


def _expr_may_raise(node: ast.AST | None) -> bool:
    if node is None:
        return False
    for child in ast.walk(node):
        if not isinstance(child, _RAISING_EXPRS):
            continue
        # Store/delete-context subscripts (``d[k] = v``, ``del d[k]``)
        # are modelled as non-raising, like attribute access: flagging
        # every registry insertion as a raise site would put an
        # exception edge between a resource acquisition and the store
        # that transfers its ownership.
        if isinstance(child, ast.Subscript) and isinstance(
            child.ctx, (ast.Store, ast.Del)
        ):
            continue
        return True
    return False


def _may_raise(statement: ast.stmt) -> bool:
    """Whether executing ``statement`` itself can raise.

    Compound statements are decomposed by the builder before this is
    consulted, so only the *header* expressions of a compound statement
    matter here (a ``With`` item's context expression, a ``Return``
    value) — their bodies are sequenced into their own blocks.
    """
    if isinstance(statement, (ast.Raise, ast.Assert)):
        return True
    if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return False
    if isinstance(statement, (ast.Pass, ast.Break, ast.Continue,
                              ast.Global, ast.Nonlocal,
                              ast.Import, ast.ImportFrom)):
        return False
    return _expr_may_raise(statement)


def _handler_catches_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        name = node.attr if isinstance(node, ast.Attribute) else (
            node.id if isinstance(node, ast.Name) else None
        )
        if name in _CATCH_ALL_TYPES:
            return True
    return False


def _is_suppress_item(item: ast.withitem) -> bool:
    """``with contextlib.suppress(...)`` (matched on the call's tail name)."""
    expr = item.context_expr
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    return name == "suppress"


@dataclass
class _Layer:
    """One ring of exception interception on the builder's stack.

    ``targets`` are the blocks an in-flight exception enters (handler
    entries, or the exceptional copy of a final body). ``catches_all``
    stops outward propagation; ``is_finally`` marks the layer as a
    ``finally`` so ``return`` can route through it.
    """

    targets: list[BasicBlock]
    catches_all: bool
    is_finally: bool = False


class _Builder:
    """Recursive-descent CFG construction with loop/exception bookkeeping."""

    def __init__(self) -> None:
        self.cfg = ControlFlowGraph()
        # (loop_head, loop_exit) stack for break/continue targets.
        self._loops: list[tuple[BasicBlock, BasicBlock]] = []
        self._layers: list[_Layer] = []

    def build(self, body: list[ast.stmt]) -> ControlFlowGraph:
        entry = self.cfg.new_block()
        self.cfg.exception_exit = self.cfg.new_block().index
        self._sequence(body, entry)
        return self.cfg

    # -- exception plumbing --------------------------------------------
    def _raise_edges(self, block: BasicBlock) -> None:
        """Connect a may-raise block to every reachable interceptor.

        Walks the layer stack innermost-first; a catch-all layer stops
        propagation, otherwise the exception may escape the function
        entirely (the implicit exception-exit block).
        """
        for layer in reversed(self._layers):
            for target in layer.targets:
                self.cfg.connect(block, target, kind="exception")
            if layer.catches_all:
                return
        self.cfg.connect(
            block,
            self.cfg.blocks[self.cfg.exception_exit],
            kind="exception",
        )

    def _return_through_finally(self, block: BasicBlock) -> None:
        """Route a ``return`` through the innermost ``finally``.

        The exceptional copy of the final body is reused: its own exit
        re-raises outward, which over-approximates the genuine
        return-after-finally path but keeps every release in the final
        body visible on it.
        """
        for layer in reversed(self._layers):
            if layer.is_finally:
                for target in layer.targets:
                    self.cfg.connect(block, target)
                return

    def _isolated(self, statement: ast.stmt, block: BasicBlock) -> BasicBlock:
        """Put a may-raise statement in its own block with raise edges.

        Returns the block holding the statement; callers decide whether
        a normal fall-through successor exists.
        """
        if block.statements:
            fresh = self.cfg.new_block()
            self.cfg.connect(block, fresh)
            block = fresh
        block.statements.append(statement)
        self._raise_edges(block)
        return block

    # -- sequencing ----------------------------------------------------
    def _sequence(
        self, statements: list[ast.stmt], current: BasicBlock
    ) -> BasicBlock | None:
        """Append ``statements`` starting in ``current``.

        Returns the live fall-through block, or ``None`` when every
        path through the statements terminates (return/raise/...).
        """
        block: BasicBlock | None = current
        for statement in statements:
            if block is None:
                # Unreachable code after a terminator: give it its own
                # disconnected block so rules still see the nodes.
                block = self.cfg.new_block()
            block = self._statement(statement, block)
        return block

    def _statement(
        self, statement: ast.stmt, block: BasicBlock
    ) -> BasicBlock | None:
        if isinstance(statement, ast.If):
            return self._if(statement, block)
        if isinstance(statement, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(statement, block)
        if isinstance(statement, _TRY_TYPES):
            return self._try(statement, block)
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            return self._with(statement, block)
        if isinstance(statement, ast.Match):
            return self._match(statement, block)

        if isinstance(statement, _TERMINATORS):
            if _may_raise(statement):
                block = self._isolated(statement, block)
            else:
                block.statements.append(statement)
            if isinstance(statement, ast.Break) and self._loops:
                self.cfg.connect(block, self._loops[-1][1])
            elif isinstance(statement, ast.Continue) and self._loops:
                self.cfg.connect(block, self._loops[-1][0])
            elif isinstance(statement, ast.Return):
                self._return_through_finally(block)
            return None

        if _may_raise(statement):
            block = self._isolated(statement, block)
            after = self.cfg.new_block()
            self.cfg.connect(block, after)
            return after
        block.statements.append(statement)
        return block

    def _if(self, statement: ast.If, block: BasicBlock) -> BasicBlock | None:
        if _expr_may_raise(statement.test):
            self._raise_edges(block)
        then_entry = self.cfg.new_block()
        self.cfg.connect(block, then_entry, statement.test, True)
        then_exit = self._sequence(statement.body, then_entry)

        if statement.orelse:
            else_entry = self.cfg.new_block()
            self.cfg.connect(block, else_entry, statement.test, False)
            else_exit = self._sequence(statement.orelse, else_entry)
        else:
            else_exit = None

        live = [exit_ for exit_ in (then_exit, else_exit) if exit_ is not None]
        if not statement.orelse:
            # No else: the false edge falls through to the merge block.
            merge = self.cfg.new_block()
            self.cfg.connect(block, merge, statement.test, False)
            for exit_ in live:
                self.cfg.connect(exit_, merge)
            return merge
        if not live:
            return None
        merge = self.cfg.new_block()
        for exit_ in live:
            self.cfg.connect(exit_, merge)
        return merge

    def _loop(
        self,
        statement: ast.While | ast.For | ast.AsyncFor,
        block: BasicBlock,
    ) -> BasicBlock:
        head = self.cfg.new_block()
        exit_block = self.cfg.new_block()
        self.cfg.connect(block, head)

        if isinstance(statement, ast.While):
            guard: ast.expr | None = statement.test
            if _expr_may_raise(guard):
                self._raise_edges(head)
            body_entry = self.cfg.new_block()
            self.cfg.connect(head, body_entry, guard, True)
            self.cfg.connect(head, exit_block, guard, False)
        else:
            # ``for target in iter``: bind the target opaquely in the
            # head, then branch unguarded (iteration count unknown).
            # Evaluating the iterable / advancing the iterator may raise.
            head.statements.append(statement)
            if _expr_may_raise(statement.iter):
                self._raise_edges(head)
            body_entry = self.cfg.new_block()
            self.cfg.connect(head, body_entry)
            self.cfg.connect(head, exit_block)

        self._loops.append((head, exit_block))
        body_exit = self._sequence(statement.body, body_entry)
        self._loops.pop()
        if body_exit is not None:
            self.cfg.connect(body_exit, head)

        if statement.orelse:
            # The else arm runs on normal loop exit; fold it into the
            # exit path conservatively.
            else_exit = self._sequence(statement.orelse, exit_block)
            return else_exit if else_exit is not None else exit_block
        return exit_block

    def _try(self, statement: ast.stmt, block: BasicBlock) -> BasicBlock | None:
        body = getattr(statement, "body", [])
        handlers = getattr(statement, "handlers", [])
        orelse = getattr(statement, "orelse", [])
        finalbody = getattr(statement, "finalbody", [])

        # Exceptional copy of the final body, built against the *outer*
        # layer stack: an exception inside ``finally`` propagates
        # outward, and after the final body runs the original exception
        # re-raises outward too.
        finally_layer: _Layer | None = None
        if finalbody:
            exc_final_entry = self.cfg.new_block()
            exc_final_exit = self._sequence(finalbody, exc_final_entry)
            if exc_final_exit is not None:
                self._raise_edges(exc_final_exit)
            finally_layer = _Layer(
                targets=[exc_final_entry], catches_all=True, is_finally=True
            )
            self._layers.append(finally_layer)

        handler_entries = [self.cfg.new_block() for _ in handlers]
        if handlers:
            catches_all = any(
                _handler_catches_all(handler) for handler in handlers
            )
            self._layers.append(
                _Layer(targets=list(handler_entries), catches_all=catches_all)
            )

        body_entry = self.cfg.new_block()
        self.cfg.connect(block, body_entry)
        body_exit = self._sequence(body, body_entry)
        if handlers:
            # Handler bodies and the else arm are not protected by this
            # try's own handlers.
            self._layers.pop()
        if body_exit is not None and orelse:
            body_exit = self._sequence(orelse, body_exit)

        exits: list[BasicBlock] = []
        if body_exit is not None:
            exits.append(body_exit)
        for handler, handler_entry in zip(handlers, handler_entries):
            handler_exit = self._sequence(handler.body, handler_entry)
            if handler_exit is not None:
                exits.append(handler_exit)

        if finally_layer is not None:
            self._layers.pop()

        if not exits:
            merge: BasicBlock | None = None
        else:
            merge = self.cfg.new_block()
            for exit_ in exits:
                self.cfg.connect(exit_, merge)
        if finalbody:
            # The normal-path copy of the final body. When nothing
            # falls through (every path raised or returned) the
            # exceptional copy above already covers the final body.
            if merge is None:
                return None
            return self._sequence(finalbody, merge)
        return merge

    def _with(
        self, statement: ast.With | ast.AsyncWith, block: BasicBlock
    ) -> BasicBlock | None:
        """``with`` header plus inlined body.

        The header (the ``__enter__`` calls) may raise; the body's
        exceptions propagate to the enclosing layers — except under
        ``contextlib.suppress``, where they resume after the ``with``.
        """
        header_raises = any(
            _expr_may_raise(item.context_expr) for item in statement.items
        )
        if header_raises:
            block = self._isolated(statement, block)
            body_entry = self.cfg.new_block()
            self.cfg.connect(block, body_entry)
        else:
            block.statements.append(statement)
            body_entry = block

        if any(_is_suppress_item(item) for item in statement.items):
            after = self.cfg.new_block()
            self._layers.append(
                _Layer(targets=[after], catches_all=True)
            )
            body_exit = self._sequence(statement.body, body_entry)
            self._layers.pop()
            if body_exit is not None:
                self.cfg.connect(body_exit, after)
            return after
        return self._sequence(statement.body, body_entry)

    def _match(self, statement: ast.Match, block: BasicBlock) -> BasicBlock | None:
        block.statements.append(statement)
        if _expr_may_raise(statement.subject):
            self._raise_edges(block)
        exits: list[BasicBlock] = []
        for case in statement.cases:
            case_entry = self.cfg.new_block()
            self.cfg.connect(block, case_entry)
            case_exit = self._sequence(case.body, case_entry)
            if case_exit is not None:
                exits.append(case_exit)
        merge = self.cfg.new_block()
        # No case may match: fall through.
        self.cfg.connect(block, merge)
        for exit_ in exits:
            self.cfg.connect(exit_, merge)
        return merge


def build_cfg(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> ControlFlowGraph:
    """The control-flow graph of one function body."""
    return _Builder().build(function.body)
