"""Abstract interpretation of one function over the unit/interval domain.

The interpreter runs each function's CFG to a fixpoint (worklist order,
interval widening at frequently revisited blocks), then replays every
block once on the stable input states, emitting :class:`Diagnostic`
events the ROP008–ROP010 rules translate into findings:

``unit-mix``
    additive arithmetic or comparison over scale-incompatible units
    (``Percent`` meets ``Fraction01`` with no ``/100``/``*100``), and
    unit-annotated assignments fed a mismatched unit;
``call-arg``
    a value of one unit flowing into a parameter declared as an
    incompatible unit;
``interval``
    a value whose interval provably misses its declared domain — an
    out-of-domain annotated assignment, argument, return, or a
    comparison against a constant the unit can never reach;
``return``
    a function annotated to return one unit returning an expression of
    an incompatible unit.

Everything the interpreter cannot prove stays silent: unknown calls,
attribute stores, numpy expressions and comprehensions all evaluate to
top. The goal is zero false positives on idiomatic code, at the price
of missing some true ones — the same contract as the per-node rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.dataflow.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dataflow.domain import (
    AbstractValue,
    Environment,
    Interval,
)
from repro.analysis.dataflow.signatures import (
    KNOWN_SIGNATURES,
    REFINING_VALIDATORS,
    Signature,
    annotation_unit,
    attribute_unit,
    collect_local_signatures,
)
from repro.units import VALIDATOR_UNITS, Unit, unit_for_annotation
from repro.util.floats import METRIC_ATOL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.rules.base import ImportMap, ModuleContext

#: Blocks revisited more often than this are widened to force
#: termination of the interval fixpoint.
_WIDEN_AFTER = 3

#: Canonical names treated as tolerance-equality guards.
_ISCLOSE_FUNCTIONS = {
    "repro.util.floats.isclose",
    "math.isclose",
}

_NUMERIC = (int, float)


@dataclass(frozen=True)
class Diagnostic:
    """One unit-discipline fact the interpreter could prove."""

    kind: str
    node: ast.AST
    message: str


@dataclass
class FunctionAnalysis:
    """The diagnostics produced for one function definition."""

    function: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str
    cfg: ControlFlowGraph
    diagnostics: list[Diagnostic] = field(default_factory=list)


@dataclass
class ModuleAnalysis:
    """Per-function results for one module, computed once and cached."""

    functions: list[FunctionAnalysis] = field(default_factory=list)

    def diagnostics(self, kind: str) -> list[tuple[FunctionAnalysis, Diagnostic]]:
        return [
            (function, diagnostic)
            for function in self.functions
            for diagnostic in function.diagnostics
            if diagnostic.kind == kind
        ]


def _constant_value(node: ast.expr) -> float | None:
    """The numeric value of a literal (allowing a unary sign), else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, _NUMERIC):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _constant_value(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    return None


class _Interpreter:
    """Transfer functions and expression evaluation for one function."""

    def __init__(
        self,
        imports: "ImportMap",
        local_signatures: dict[str, Signature],
        module_constants: dict[str, AbstractValue],
        function: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        self.imports = imports
        self.local_signatures = local_signatures
        self.module_constants = module_constants
        self.function = function
        self.return_unit = annotation_unit(function.returns, imports)
        self.sink: list[Diagnostic] | None = None

    # -- diagnostics ---------------------------------------------------
    def _emit(self, kind: str, node: ast.AST, message: str) -> None:
        if self.sink is not None:
            self.sink.append(Diagnostic(kind=kind, node=node, message=message))

    # -- seeding -------------------------------------------------------
    def initial_environment(self) -> Environment:
        environment = Environment(self.module_constants)
        args = self.function.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            unit = annotation_unit(arg.annotation, self.imports)
            environment = environment.set(
                arg.arg, AbstractValue.of_unit(unit, self.function.lineno)
            )
        if args.vararg is not None:
            environment = environment.set(args.vararg.arg, AbstractValue.top())
        if args.kwarg is not None:
            environment = environment.set(args.kwarg.arg, AbstractValue.top())
        return environment

    # -- statements ----------------------------------------------------
    def execute_block(
        self, statements: list[ast.stmt], environment: Environment
    ) -> Environment:
        env = environment.copy()
        for statement in statements:
            env = self._statement(statement, env)
        return env

    def _statement(self, statement: ast.stmt, env: Environment) -> Environment:
        if isinstance(statement, ast.Assign):
            value, env = self._eval(statement.value, env)
            for target in statement.targets:
                env = self._assign_target(target, value, statement, env)
            return env
        if isinstance(statement, ast.AnnAssign):
            declared = annotation_unit(statement.annotation, self.imports)
            if statement.value is not None:
                value, env = self._eval(statement.value, env)
            else:
                value = AbstractValue.top()
            if declared is not None and statement.value is not None:
                self._check_against_unit(
                    statement, value, declared, context="assignment to"
                )
                value = AbstractValue(
                    unit=declared,
                    interval=value.interval,
                    defs=frozenset({statement.lineno}),
                )
            if isinstance(statement.target, ast.Name):
                env = env.set(statement.target.id, value)
            return env
        if isinstance(statement, ast.AugAssign):
            synthetic = ast.BinOp(
                left=statement.target, op=statement.op, right=statement.value
            )
            ast.copy_location(synthetic, statement)
            value, env = self._eval(synthetic, env)
            return self._assign_target(statement.target, value, statement, env)
        if isinstance(statement, ast.Return):
            if statement.value is not None:
                value, env = self._eval(statement.value, env)
                self._check_return(statement, value)
            return env
        if isinstance(statement, ast.Expr):
            _, env = self._eval(statement.value, env)
            return env
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            # Loop heads carry the For itself: bind targets opaquely.
            _, env = self._eval(statement.iter, env)
            return self._assign_target(
                statement.target, AbstractValue.top(), statement, env
            )
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                _, env = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    env = self._assign_target(
                        item.optional_vars, AbstractValue.top(), statement, env
                    )
            return env
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return env.set(statement.name, AbstractValue.top())
        if isinstance(statement, ast.ClassDef):
            return env.set(statement.name, AbstractValue.top())
        if isinstance(statement, (ast.Assert, ast.If, ast.While)):
            test = getattr(statement, "test", None)
            if test is not None:
                _, env = self._eval(test, env)
            if isinstance(statement, ast.Assert):
                env = self.refine(statement.test, True, env)
            return env
        if isinstance(statement, ast.Delete):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    env = env.set(target.id, AbstractValue.top())
            return env
        if isinstance(statement, ast.Raise):
            if statement.exc is not None:
                _, env = self._eval(statement.exc, env)
            return env
        return env

    def _assign_target(
        self,
        target: ast.expr,
        value: AbstractValue,
        statement: ast.stmt,
        env: Environment,
    ) -> Environment:
        if isinstance(target, ast.Name):
            stamped = AbstractValue(
                unit=value.unit,
                interval=value.interval,
                defs=frozenset({statement.lineno}),
            )
            return env.set(target.id, stamped)
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                env = self._assign_target(
                    element, AbstractValue.top(), statement, env
                )
            return env
        # Attribute/subscript stores are not tracked.
        return env

    # -- checks --------------------------------------------------------
    def _check_against_unit(
        self,
        node: ast.AST,
        value: AbstractValue,
        declared: Unit,
        *,
        context: str,
        target: str = "",
    ) -> None:
        label = f"{context} {target}".strip()
        if value.unit is not None and not value.unit.mixes_with(declared):
            self._emit(
                "unit-mix",
                node,
                f"{value.unit.name} value used in {label} declared "
                f"{declared.name} (convert explicitly"
                f"{_conversion_hint(value.unit, declared)})",
            )
        elif value.interval.entirely_outside(declared, atol=METRIC_ATOL):
            self._emit(
                "interval",
                node,
                f"value in {value.interval} can never satisfy {label} "
                f"declared {declared.name} {declared.bounds}",
            )

    def _check_return(self, statement: ast.Return, value: AbstractValue) -> None:
        if self.return_unit is None:
            return
        if value.unit is not None and not value.unit.mixes_with(self.return_unit):
            self._emit(
                "return",
                statement,
                f"function is annotated to return {self.return_unit.name} "
                f"but returns a {value.unit.name} expression"
                f"{_conversion_hint(value.unit, self.return_unit)}",
            )
        elif value.interval.entirely_outside(self.return_unit, atol=METRIC_ATOL):
            self._emit(
                "interval",
                statement,
                f"returned value in {value.interval} lies outside the "
                f"declared {self.return_unit.name} domain "
                f"{self.return_unit.bounds}",
            )

    # -- expressions ---------------------------------------------------
    def _eval(
        self, node: ast.expr, env: Environment
    ) -> tuple[AbstractValue, Environment]:
        constant = _constant_value(node)
        if constant is not None:
            return AbstractValue.constant(constant, node.lineno), env
        if isinstance(node, ast.Name):
            return env.get(node.id), env
        if isinstance(node, ast.Attribute):
            _, env = self._eval(node.value, env)
            unit = attribute_unit(node.attr)
            if unit is not None:
                return AbstractValue.of_unit(unit, node.lineno), env
            return AbstractValue.top(), env
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            value, env = self._eval(node.operand, env)
            if isinstance(node.op, ast.USub):
                return value.with_interval(value.interval.neg()), env
            if isinstance(node.op, ast.UAdd):
                return value, env
            return AbstractValue.top(), env
        if isinstance(node, ast.Compare):
            return self._eval_compare(node, env)
        if isinstance(node, ast.BoolOp):
            for operand in node.values:
                _, env = self._eval(operand, env)
            return AbstractValue.top(), env
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.IfExp):
            _, env = self._eval(node.test, env)
            then_value, env = self._eval(node.body, env)
            else_value, env = self._eval(node.orelse, env)
            return then_value.join(else_value), env
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                _, env = self._eval(element, env)
            return AbstractValue.top(), env
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    _, env = self._eval(key, env)
            for value_node in node.values:
                _, env = self._eval(value_node, env)
            return AbstractValue.top(), env
        if isinstance(node, ast.Subscript):
            _, env = self._eval(node.value, env)
            return AbstractValue.top(), env
        if isinstance(node, ast.NamedExpr):
            value, env = self._eval(node.value, env)
            env = self._assign_target(
                node.target, value, _statement_for(node), env
            )
            return value, env
        # Comprehensions, lambdas, f-strings, starred, awaits: opaque.
        return AbstractValue.top(), env

    def _eval_binop(
        self, node: ast.BinOp, env: Environment
    ) -> tuple[AbstractValue, Environment]:
        left, env = self._eval(node.left, env)
        right, env = self._eval(node.right, env)

        if isinstance(node.op, (ast.Add, ast.Sub)):
            interval = (
                left.interval.add(right.interval)
                if isinstance(node.op, ast.Add)
                else left.interval.sub(right.interval)
            )
            unit = self._additive_unit(node, left, right)
            return AbstractValue(unit=unit, interval=interval), env
        if isinstance(node.op, ast.Mult):
            interval = left.interval.mul(right.interval)
            unit = self._scaled_unit(node, left, right, multiply=True)
            return AbstractValue(unit=unit, interval=interval), env
        if isinstance(node.op, ast.Div):
            interval = left.interval.div(right.interval)
            unit = self._scaled_unit(node, left, right, multiply=False)
            return AbstractValue(unit=unit, interval=interval), env
        return AbstractValue.top(), env

    def _additive_unit(
        self, node: ast.BinOp, left: AbstractValue, right: AbstractValue
    ) -> Unit | None:
        if left.unit is not None and right.unit is not None:
            if not left.unit.mixes_with(right.unit):
                self._emit(
                    "unit-mix",
                    node,
                    f"arithmetic mixes {left.unit.name} with "
                    f"{right.unit.name}"
                    f"{_conversion_hint(left.unit, right.unit)}",
                )
                return None
            return left.unit
        return left.unit if left.unit is not None else right.unit

    def _scaled_unit(
        self,
        node: ast.BinOp,
        left: AbstractValue,
        right: AbstractValue,
        *,
        multiply: bool,
    ) -> Unit | None:
        """Unit of ``x * c`` / ``x / c``, honouring declared conversions.

        ``Percent / 100`` becomes ``Fraction01``; ``Fraction01 * 100``
        becomes ``Percent``. Any other scaling of a unit-tagged value
        (or a product of two tagged values) is unit-unknown, never an
        error: scaling by amounts and fractions is ordinary arithmetic.
        """
        tagged, other_node = (
            (left, node.right) if left.unit is not None else (right, node.left)
        )
        if tagged.unit is None:
            return None
        if not multiply and right.unit is not None and left.unit is None:
            # ``c / percent`` is a reciprocal, not a conversion.
            return None
        constant = _constant_value(other_node)
        if constant is None or constant == 0:
            return None
        factor = constant if multiply else 1.0 / constant
        for target_name, declared_factor in tagged.unit.scale_to:
            if abs(factor - declared_factor) <= METRIC_ATOL:
                return unit_for_annotation(target_name)
        return None

    def _eval_compare(
        self, node: ast.Compare, env: Environment
    ) -> tuple[AbstractValue, Environment]:
        operands: list[AbstractValue] = []
        for expression in [node.left, *node.comparators]:
            value, env = self._eval(expression, env)
            operands.append(value)
        expressions = [node.left, *node.comparators]
        for index in range(len(node.ops)):
            left, right = operands[index], operands[index + 1]
            if (
                left.unit is not None
                and right.unit is not None
                and not left.unit.mixes_with(right.unit)
            ):
                self._emit(
                    "unit-mix",
                    node,
                    f"comparison mixes {left.unit.name} with "
                    f"{right.unit.name}"
                    f"{_conversion_hint(left.unit, right.unit)}",
                )
                continue
            for tagged, untagged_node in (
                (left, expressions[index + 1]),
                (right, expressions[index]),
            ):
                if tagged.unit is None:
                    continue
                constant = _constant_value(untagged_node)
                if constant is None:
                    continue
                if (
                    constant < tagged.unit.low - METRIC_ATOL
                    or constant > tagged.unit.high + METRIC_ATOL
                ):
                    self._emit(
                        "interval",
                        node,
                        f"{tagged.unit.name} value compared against "
                        f"{constant:g}, outside its domain "
                        f"{tagged.unit.bounds}",
                    )
        return AbstractValue.top(), env

    def _eval_call(
        self, node: ast.Call, env: Environment
    ) -> tuple[AbstractValue, Environment]:
        argument_values: list[AbstractValue] = []
        for argument in node.args:
            value, env = self._eval(argument, env)
            argument_values.append(value)
        keyword_values: list[AbstractValue] = []
        for keyword in node.keywords:
            value, env = self._eval(keyword.value, env)
            keyword_values.append(value)

        canonical = self.imports.resolve_imported(node.func)
        builtin = self._eval_builtin(node, argument_values, env)
        if builtin is not None:
            return builtin, env

        signature = self._signature_for(node, canonical)
        if signature is not None:
            self._check_call(node, signature, argument_values, keyword_values)

        if canonical in VALIDATOR_UNITS:
            unit = unit_for_annotation(VALIDATOR_UNITS[canonical])
            env = self._refine_validated(node, unit, env)
            return AbstractValue.of_unit(unit, node.lineno), env
        if canonical in REFINING_VALIDATORS:
            low, high = REFINING_VALIDATORS[canonical]
            env = self._refine_validated(node, None, env, low=low, high=high)
            if node.args and isinstance(node.args[0], ast.Name):
                refined = env.get(node.args[0].id)
                return refined, env
            value = argument_values[0] if argument_values else AbstractValue.top()
            return value.with_interval(
                value.interval.meet(Interval(low, high))
            ), env

        if signature is not None and signature.return_unit is not None:
            return AbstractValue.of_unit(signature.return_unit, node.lineno), env
        return AbstractValue.top(), env

    def _eval_builtin(
        self,
        node: ast.Call,
        argument_values: list[AbstractValue],
        env: Environment,
    ) -> AbstractValue | None:
        """min/max/abs/float/int pass values through transparently."""
        if not isinstance(node.func, ast.Name) or node.keywords:
            return None
        name = node.func.id
        if name in {"float", "int"} and len(argument_values) == 1:
            return argument_values[0]
        if name == "abs" and len(argument_values) == 1:
            value = argument_values[0]
            interval = value.interval
            low = (
                0.0
                if interval.low <= 0.0 <= interval.high
                else min(abs(interval.low), abs(interval.high))
            )
            return value.with_interval(
                Interval(low, max(abs(interval.low), abs(interval.high)))
            )
        if name in {"min", "max"} and len(argument_values) >= 2:
            units = {
                value.unit for value in argument_values if value.unit is not None
            }
            unit = units.pop() if len(units) == 1 else None
            lows = [value.interval.low for value in argument_values]
            highs = [value.interval.high for value in argument_values]
            if name == "min":
                interval = Interval(min(lows), min(highs))
            else:
                interval = Interval(max(lows), max(highs))
            return AbstractValue(unit=unit, interval=interval)
        return None

    def _signature_for(
        self, node: ast.Call, canonical: str | None
    ) -> Signature | None:
        if canonical is not None and canonical in KNOWN_SIGNATURES:
            return KNOWN_SIGNATURES[canonical]
        if isinstance(node.func, ast.Name):
            return self.local_signatures.get(node.func.id)
        return None

    def _check_call(
        self,
        node: ast.Call,
        signature: Signature,
        argument_values: list[AbstractValue],
        keyword_values: list[AbstractValue],
    ) -> None:
        callee = ast.unparse(node.func)
        checks: list[tuple[AbstractValue, Unit | None, str]] = []
        for index, value in enumerate(argument_values):
            checks.append(
                (
                    value,
                    signature.param_unit(index, None),
                    signature.param_name(index, None),
                )
            )
        for keyword, value in zip(node.keywords, keyword_values):
            if keyword.arg is None:
                continue
            checks.append(
                (value, signature.param_unit(0, keyword.arg), keyword.arg)
            )
        for value, declared, parameter in checks:
            if declared is None:
                continue
            if value.unit is not None and not value.unit.mixes_with(declared):
                self._emit(
                    "call-arg",
                    node,
                    f"{value.unit.name} value flows into parameter "
                    f"{parameter!r} of {callee}() declared {declared.name}"
                    f"{_conversion_hint(value.unit, declared)}",
                )
            elif value.interval.entirely_outside(declared, atol=METRIC_ATOL):
                self._emit(
                    "interval",
                    node,
                    f"argument {parameter!r} of {callee}() is in "
                    f"{value.interval}, outside the declared "
                    f"{declared.name} domain {declared.bounds}",
                )

    def _refine_validated(
        self,
        node: ast.Call,
        unit: Unit | None,
        env: Environment,
        *,
        low: float | None = None,
        high: float | None = None,
    ) -> Environment:
        """A successful ``require_*`` call proves facts about its arg."""
        if not node.args or not isinstance(node.args[0], ast.Name):
            return env
        name = node.args[0].id
        value = env.get(name)
        if unit is not None:
            interval = value.interval.meet(Interval(unit.low, unit.high))
            refined = AbstractValue(
                unit=unit, interval=interval, defs=value.defs
            )
        else:
            interval = value.interval.meet(
                Interval(
                    low if low is not None else -float("inf"),
                    high if high is not None else float("inf"),
                )
            )
            refined = value.with_interval(interval)
        return env.set(name, refined)

    # -- guard refinement ---------------------------------------------
    def refine(
        self, guard: ast.expr, taken: bool, env: Environment
    ) -> Environment:
        """Narrow ``env`` with the facts a branch outcome establishes."""
        if isinstance(guard, ast.UnaryOp) and isinstance(guard.op, ast.Not):
            return self.refine(guard.operand, not taken, env)
        if isinstance(guard, ast.BoolOp):
            if isinstance(guard.op, ast.And) and taken:
                for value in guard.values:
                    env = self.refine(value, True, env)
            elif isinstance(guard.op, ast.Or) and not taken:
                for value in guard.values:
                    env = self.refine(value, False, env)
            return env
        if isinstance(guard, ast.Call):
            canonical = self.imports.resolve_imported(guard.func)
            if canonical in _ISCLOSE_FUNCTIONS and taken and len(guard.args) >= 2:
                target, comparand = guard.args[0], guard.args[1]
                if not isinstance(target, ast.Name):
                    target, comparand = comparand, target
                constant = _constant_value(comparand)
                if isinstance(target, ast.Name) and constant is not None:
                    value = env.get(target.id)
                    interval = value.interval.meet(Interval.point(constant))
                    return env.set(target.id, value.with_interval(interval))
            return env
        if isinstance(guard, ast.Compare):
            return self._refine_compare(guard, taken, env)
        return env

    def _refine_compare(
        self, guard: ast.Compare, taken: bool, env: Environment
    ) -> Environment:
        operands = [guard.left, *guard.comparators]
        ops: list[ast.cmpop] = list(guard.ops)
        if not taken:
            if len(ops) != 1:
                return env  # cannot tell which leg of a chain failed
            inverted = _invert(ops[0])
            if inverted is None:
                return env
            ops = [inverted]
        for index, op in enumerate(ops):
            left_node, right_node = operands[index], operands[index + 1]
            left_value, _ = self._eval(left_node, env)
            right_value, _ = self._eval(right_node, env)
            if isinstance(left_node, ast.Name):
                env = self._refine_name(
                    env, left_node.id, op, right_value.interval
                )
            if isinstance(right_node, ast.Name):
                mirrored = _mirror(op)
                if mirrored is not None:
                    env = self._refine_name(
                        env, right_node.id, mirrored, left_value.interval
                    )
        return env

    def _refine_name(
        self,
        env: Environment,
        name: str,
        op: ast.cmpop,
        bound: Interval,
    ) -> Environment:
        value = env.get(name)
        interval = value.interval
        if isinstance(op, (ast.Lt, ast.LtE)):
            interval = interval.meet(Interval(-float("inf"), bound.high))
        elif isinstance(op, (ast.Gt, ast.GtE)):
            interval = interval.meet(Interval(bound.low, float("inf")))
        elif isinstance(op, ast.Eq):
            interval = interval.meet(bound)
        else:
            return env
        return env.set(name, value.with_interval(interval))


def _conversion_hint(source: Unit, target: Unit) -> str:
    factor = source.conversion_factor(target)
    if factor is None:
        return ""
    operation = "/ 100.0" if factor < 1 else "* 100.0"
    return f"; convert with `{operation}`"


def _invert(op: ast.cmpop) -> ast.cmpop | None:
    mapping: dict[type, type] = {
        ast.Lt: ast.GtE,
        ast.LtE: ast.Gt,
        ast.Gt: ast.LtE,
        ast.GtE: ast.Lt,
        ast.Eq: ast.NotEq,
        ast.NotEq: ast.Eq,
    }
    inverted = mapping.get(type(op))
    return inverted() if inverted is not None else None


def _mirror(op: ast.cmpop) -> ast.cmpop | None:
    mapping: dict[type, type] = {
        ast.Lt: ast.Gt,
        ast.LtE: ast.GtE,
        ast.Gt: ast.Lt,
        ast.GtE: ast.LtE,
        ast.Eq: ast.Eq,
    }
    mirrored = mapping.get(type(op))
    return mirrored() if mirrored is not None else None


def _statement_for(node: ast.expr) -> ast.stmt:
    """A synthetic statement carrying ``node``'s location (walrus defs)."""
    placeholder = ast.Pass()
    ast.copy_location(placeholder, node)
    return placeholder


def _module_constants(tree: ast.Module) -> dict[str, AbstractValue]:
    """Top-level ``NAME = <number>`` bindings, seeded into every env."""
    constants: dict[str, AbstractValue] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            value = _constant_value(node.value)
            if value is not None:
                constants[node.targets[0].id] = AbstractValue.constant(
                    value, node.lineno
                )
    return constants


def _analyze_function(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    imports: "ImportMap",
    local_signatures: dict[str, Signature],
    module_constants: dict[str, AbstractValue],
) -> FunctionAnalysis:
    cfg = build_cfg(function)
    interpreter = _Interpreter(
        imports, local_signatures, module_constants, function
    )

    in_envs: dict[int, Environment] = {0: interpreter.initial_environment()}
    visits: dict[int, int] = {}
    worklist = [0]
    while worklist:
        index = worklist.pop()
        visits[index] = visits.get(index, 0) + 1
        out_env = interpreter.execute_block(
            cfg.blocks[index].statements, in_envs[index]
        )
        for edge in cfg.successors(index):
            # Exception edges fire before the raising statement
            # completes; propagate the block's entry state along them
            # (may-raise statements sit in singleton blocks, so this is
            # exactly the pre-statement state).
            candidate = in_envs[index] if edge.kind == "exception" else out_env
            if edge.guard is not None:
                candidate = interpreter.refine(
                    edge.guard, edge.guard_value, out_env
                )
            if edge.target not in in_envs:
                merged = candidate
            else:
                merged = in_envs[edge.target].join(candidate)
                if visits.get(edge.target, 0) >= _WIDEN_AFTER:
                    merged = in_envs[edge.target].widen(merged)
            if edge.target not in in_envs or merged != in_envs[edge.target]:
                in_envs[edge.target] = merged
                if edge.target not in worklist:
                    worklist.append(edge.target)

    # Replay every block once on its stable input, collecting events.
    # Branch guards live on edges, not in blocks, so evaluate each
    # guard once too (on its true edge) for unit-mix diagnostics in
    # ``if``/``while`` tests.
    analysis = FunctionAnalysis(function=function, qualname=qualname, cfg=cfg)
    interpreter.sink = analysis.diagnostics
    for block in cfg.blocks:
        environment = in_envs.get(block.index)
        if environment is None:
            environment = Environment()  # unreachable: all-top
        out_env = interpreter.execute_block(block.statements, environment)
        for edge in cfg.successors(block.index):
            if edge.guard is not None and edge.guard_value:
                interpreter._eval(edge.guard, out_env)
    interpreter.sink = None
    return analysis


def analyze_module(context: "ModuleContext") -> ModuleAnalysis:
    """Run (or fetch the cached) dataflow analysis for one module.

    The result is cached on the context so ROP008/ROP009/ROP010 share
    one fixpoint per file.
    """
    cached = getattr(context, "_dataflow_analysis", None)
    if cached is not None:
        return cached  # type: ignore[no-any-return]

    local_signatures = collect_local_signatures(context.tree, context.imports)
    module_constants = _module_constants(context.tree)
    analysis = ModuleAnalysis()

    qualname_stack: list[str] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = ".".join([*qualname_stack, child.name])
                analysis.functions.append(
                    _analyze_function(
                        child,
                        qualname,
                        context.imports,
                        local_signatures,
                        module_constants,
                    )
                )
                qualname_stack.append(child.name)
                visit(child)
                qualname_stack.pop()
            elif isinstance(child, ast.ClassDef):
                qualname_stack.append(child.name)
                visit(child)
                qualname_stack.pop()
            else:
                visit(child)

    visit(context.tree)
    context._dataflow_analysis = analysis  # type: ignore[attr-defined]
    return analysis
