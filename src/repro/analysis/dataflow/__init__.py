"""Flow-sensitive unit/interval analysis underpinning ROP008–ROP010.

The per-node rules of :mod:`repro.analysis.rules` see one AST node at a
time; the unit-discipline rules need to know what *value* reaches each
expression. This package supplies that:

* :mod:`~repro.analysis.dataflow.cfg` — per-function control-flow
  graphs (basic blocks, guarded edges, loop back-edges);
* :mod:`~repro.analysis.dataflow.domain` — the abstract domain: an
  interval lattice paired with a :class:`repro.units.Unit` tag and the
  reaching-definition lines that produced the value;
* :mod:`~repro.analysis.dataflow.signatures` — unit knowledge: marker
  annotations, validation-helper contracts, known repro call
  signatures, and paper-symbol attribute conventions;
* :mod:`~repro.analysis.dataflow.interp` — the abstract interpreter: a
  worklist fixpoint over the CFG whose transfer functions evaluate
  expressions in the domain and emit :class:`Diagnostic` events for
  unit confusion, provable interval violations, and unconverted
  returns.

Rules call :func:`analyze_module` — results are computed once per
module and shared across every dataflow rule via a cache on the
:class:`~repro.analysis.rules.base.ModuleContext`.
"""

from repro.analysis.dataflow.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.analysis.dataflow.domain import (
    AbstractValue,
    Environment,
    Interval,
)
from repro.analysis.dataflow.interp import (
    Diagnostic,
    FunctionAnalysis,
    ModuleAnalysis,
    analyze_module,
)

__all__ = [
    "AbstractValue",
    "BasicBlock",
    "ControlFlowGraph",
    "Diagnostic",
    "Environment",
    "FunctionAnalysis",
    "Interval",
    "ModuleAnalysis",
    "analyze_module",
    "build_cfg",
]
