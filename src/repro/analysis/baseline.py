"""Baseline suppression: adopt the linter without boiling the ocean.

A baseline file records the findings a codebase had when the analyzer
was introduced; subsequent runs subtract them and fail only on *new*
violations. Entries match on :meth:`Finding.fingerprint` (rule, path,
message) rather than line numbers, so unrelated edits that shift code
do not resurrect suppressed findings.

The shipped R-Opus tree is clean, so the repo carries no baseline file;
the mechanism exists for downstream forks and for staging new rules.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.exceptions import ConfigurationError

BASELINE_VERSION = 1


def _write_fingerprints(
    fingerprints: Iterable[tuple[str, str, str]], path: Path
) -> int:
    entries = sorted(set(fingerprints))
    payload = {
        "version": BASELINE_VERSION,
        "suppressions": [
            {"rule": rule, "path": file_path, "message": message}
            for rule, file_path, message in entries
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def write_baseline(findings: Iterable[Finding], path: Path) -> int:
    """Record ``findings`` as the accepted baseline; returns the count."""
    return _write_fingerprints(
        (finding.fingerprint() for finding in findings), path
    )


def prune_baseline(
    findings: Iterable[Finding], path: Path
) -> tuple[int, list[tuple[str, str, str]]]:
    """Drop baseline entries that no longer match any current finding.

    Unlike :func:`write_baseline` this never *adds* suppressions —
    new findings stay visible — it only removes entries whose debt has
    been paid, so the baseline shrinks monotonically toward empty.
    Returns ``(kept_count, stale_entries)``; the stale list is sorted
    for stable warning output.
    """
    existing = load_baseline(path)
    current = {finding.fingerprint() for finding in findings}
    kept = existing & current
    stale = sorted(existing - current)
    _write_fingerprints(kept, path)
    return len(kept), stale


def load_baseline(path: Path) -> set[tuple[str, str, str]]:
    """Fingerprints recorded in a baseline file."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(f"unreadable baseline {path}: {error}") from error
    if payload.get("version") != BASELINE_VERSION:
        raise ConfigurationError(
            f"baseline {path} has unsupported version {payload.get('version')!r}"
        )
    suppressions = payload.get("suppressions", [])
    fingerprints: set[tuple[str, str, str]] = set()
    for entry in suppressions:
        try:
            fingerprints.add(
                (str(entry["rule"]), str(entry["path"]), str(entry["message"]))
            )
        except (TypeError, KeyError) as error:
            raise ConfigurationError(
                f"malformed baseline entry in {path}: {entry!r}"
            ) from error
    return fingerprints


def apply_baseline(
    findings: Sequence[Finding], baseline: set[tuple[str, str, str]]
) -> tuple[list[Finding], int]:
    """Split findings into (surviving, suppressed-count)."""
    surviving = [
        finding
        for finding in findings
        if finding.fingerprint() not in baseline
    ]
    return surviving, len(findings) - len(surviving)
