"""Analysis configuration: rule selection, severities, excludes.

Configuration merges three layers, later winning:

1. built-in defaults (all registered rules, everything an error);
2. an optional ``[tool.repro-analysis]`` table in ``pyproject.toml``
   (located by walking up from the first scanned path);
3. command-line flags (``--select``, ``--ignore``, ``--exclude``,
   ``--baseline``).

``tomllib`` only exists on Python 3.11+; on 3.10 the pyproject layer is
silently skipped — CLI flags still work everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.findings import Severity
from repro.exceptions import ConfigurationError

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - 3.10 fallback
    tomllib = None  # type: ignore[assignment]

#: pyproject table the analyzer reads.
PYPROJECT_TABLE = "repro-analysis"

#: Directory names never descended into.
DEFAULT_EXCLUDED_DIRS = frozenset(
    {".git", "__pycache__", ".venv", "build", "dist", ".mypy_cache",
     ".ruff_cache", "node_modules"}
)


@dataclass
class AnalysisConfig:
    """Resolved configuration for one analysis run."""

    select: frozenset[str] | None = None
    ignore: frozenset[str] = frozenset()
    exclude: tuple[str, ...] = ()
    baseline: Path | None = None
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    #: Where project-pass results are memoised; ``None`` disables the
    #: cache entirely (the ``--no-cache`` escape hatch).
    cache_dir: Path | None = Path(".ropus_cache")

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        if self.select is not None:
            return rule_id in self.select
        return True

    def severity_for(self, rule_id: str, default: Severity) -> Severity:
        return self.severity_overrides.get(rule_id, default)

    def path_excluded(self, path: Path) -> bool:
        posix = path.as_posix()
        return any(pattern in posix for pattern in self.exclude)


def _parse_rule_list(value: Any, option: str) -> frozenset[str]:
    if isinstance(value, str):
        value = [item.strip() for item in value.split(",") if item.strip()]
    if not isinstance(value, (list, tuple, set, frozenset)):
        raise ConfigurationError(f"{option} must be a list of rule ids")
    return frozenset(str(item) for item in value)


def _validate_rule_ids(ids: frozenset[str], option: str) -> None:
    """Reject ids no registered rule answers to.

    A typo in ``--select`` would otherwise silently run *zero* rules
    (or, in ``--ignore``, suppress nothing) — the worst possible
    failure mode for a linter gate.
    """
    # Imported here: the registry fills in when the rules package runs,
    # and config must stay importable before that happens.
    from repro.analysis.rules import registered_rules

    unknown = sorted(ids - set(registered_rules()))
    if unknown:
        raise ConfigurationError(
            f"{option} names unknown rule id(s): {', '.join(unknown)} "
            "(see --list-rules)"
        )


def load_pyproject_table(start: Path) -> dict[str, Any]:
    """The ``[tool.repro-analysis]`` table nearest ``start``, or ``{}``."""
    if tomllib is None:
        return {}
    directory = start if start.is_dir() else start.parent
    for candidate in (directory, *directory.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            with pyproject.open("rb") as handle:
                data = tomllib.load(handle)
            table = data.get("tool", {}).get(PYPROJECT_TABLE, {})
            if not isinstance(table, dict):
                raise ConfigurationError(
                    f"[tool.{PYPROJECT_TABLE}] must be a table"
                )
            return table
    return {}


def resolve_config(
    *,
    select: Sequence[str] | str | None = None,
    ignore: Sequence[str] | str | None = None,
    exclude: Sequence[str] | None = None,
    baseline: str | Path | None = None,
    pyproject: Mapping[str, Any] | None = None,
    no_cache: bool = False,
) -> AnalysisConfig:
    """Merge pyproject defaults with explicit (CLI) overrides."""
    pyproject = pyproject or {}

    if select is None and "select" in pyproject:
        select = _parse_rule_list(pyproject["select"], "select")
    if ignore is None and "ignore" in pyproject:
        ignore = _parse_rule_list(pyproject["ignore"], "ignore")
    if not exclude and "exclude" in pyproject:
        raw = pyproject["exclude"]
        if not isinstance(raw, (list, tuple)):
            raise ConfigurationError("exclude must be a list of path parts")
        exclude = [str(item) for item in raw]
    if baseline is None and "baseline" in pyproject:
        baseline = str(pyproject["baseline"])

    cache_dir: Path | None = Path(".ropus_cache")
    if "cache-dir" in pyproject:
        cache_dir = Path(str(pyproject["cache-dir"]))
    if no_cache:
        cache_dir = None

    overrides: dict[str, Severity] = {}
    for rule_id, name in dict(pyproject.get("severity", {})).items():
        try:
            overrides[str(rule_id)] = Severity(str(name))
        except ValueError as error:
            raise ConfigurationError(
                f"unknown severity {name!r} for rule {rule_id}"
            ) from error

    selected = _parse_rule_list(select, "select") if select is not None else None
    ignored = (
        _parse_rule_list(ignore, "ignore") if ignore is not None else frozenset()
    )
    if selected is not None:
        _validate_rule_ids(selected, "select")
    if ignored:
        _validate_rule_ids(ignored, "ignore")

    return AnalysisConfig(
        select=selected,
        ignore=ignored,
        exclude=tuple(exclude or ()),
        baseline=Path(baseline) if baseline is not None else None,
        severity_overrides=overrides,
        cache_dir=cache_dir,
    )
