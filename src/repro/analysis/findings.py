"""The unit of static-analysis output: one :class:`Finding` per defect.

A finding pins a rule violation to a ``file:line:column`` location and
carries everything a reader (human or tool) needs to act on it: the
rule id, a message describing *this* occurrence, and the rule's fix
hint describing the sanctioned alternative.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How a finding affects the analysis exit code.

    ``ERROR`` findings fail the run; ``WARNING`` findings are reported
    but do not block. ``NOTE`` is reserved for informational output
    (e.g. baseline bookkeeping).
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str
    hint: str
    severity: Severity = Severity.ERROR

    @property
    def location(self) -> str:
        """``path:line:column`` — clickable in most terminals/editors."""
        return f"{self.path}:{self.line}:{self.column}"

    def sort_key(self) -> tuple[str, int, int, str]:
        """Order findings top-to-bottom per file, then by rule id."""
        return (self.path, self.line, self.column, self.rule)

    def fingerprint(self) -> tuple[str, str, str]:
        """Line-independent identity used by baseline suppression.

        Deliberately excludes ``line``/``column`` so unrelated edits
        that shift code do not invalidate a recorded baseline entry.
        """
        return (self.rule, self.path, self.message)
