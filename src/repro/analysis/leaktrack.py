"""Runtime resource-leak tracker: the dynamic half of ROP017.

The static typestate analysis (:mod:`repro.analysis.typestate`) proves
what it can see; this module catches what it cannot — resources
acquired behind dynamic dispatch, in third-party code, or on paths the
analyzer never modelled. Under ``ROPUS_LEAKTRACK=1`` the tracker
monkey-patches the same acquire points the protocol table names:

* ``multiprocessing.shared_memory.SharedMemory`` created with
  ``create=True`` (attaching workers are not acquisitions), released
  by ``unlink()``;
* ``concurrent.futures.ProcessPoolExecutor``, released by
  ``shutdown()``;
* ``tempfile.TemporaryDirectory``, released by ``cleanup()`` (the
  context-manager exit goes through ``cleanup`` too).

Every tracked acquisition records the call stack of the acquire site.
:func:`report` lists resources still open; an ``atexit`` hook prints
the report to stderr at interpreter exit, and the test suite's
conftest calls :func:`report` at pytest-session close. The tracker
never raises and never alters program behaviour — it is a diagnostic,
mirroring the determinism sanitizer's install/uninstall discipline
(:mod:`repro.analysis.sanitizer`) so tests can arm and disarm it
freely within one process.
"""

from __future__ import annotations

import atexit
import itertools
import os
import sys
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, TextIO

#: Environment flag consulted by :func:`maybe_install` (and therefore
#: by every pool-worker initializer and the test conftest).
ENV_FLAG = "ROPUS_LEAKTRACK"

#: Stack frames kept per acquisition (innermost last); the tracker's
#: own wrapper frame is dropped.
_STACK_DEPTH = 12


@dataclass
class LiveResource:
    """One tracked acquisition that has not been released yet."""

    token: int
    kind: str
    label: str
    stack: list[str] = field(default_factory=list)

    def format(self) -> str:
        header = f"{self.kind} {self.label!r} acquired at:"
        return header + "\n" + "".join(self.stack).rstrip("\n")


#: id(resource object) -> live record. Identity keying means the
#: tracker holds no strong reference and never extends lifetimes.
_LIVE: dict[int, LiveResource] = {}
_TOKENS = itertools.count(1)

#: (class, attribute) -> original callable, while installed.
_SAVED: dict[tuple[Any, str], Any] = {}

#: Cumulative counters, surviving deregistration (for tests/smoke).
counters: dict[str, int] = {"acquired": 0, "released": 0, "errors": 0}


def _capture_stack() -> list[str]:
    # Drop the two innermost frames: this helper and the wrapper.
    return traceback.format_stack()[-(_STACK_DEPTH + 2) : -2]


def _register(obj: Any, kind: str, label: str) -> None:
    counters["acquired"] += 1
    _LIVE[id(obj)] = LiveResource(
        token=next(_TOKENS),
        kind=kind,
        label=label,
        stack=_capture_stack(),
    )


def _deregister(obj: Any) -> None:
    if _LIVE.pop(id(obj), None) is not None:
        counters["released"] += 1


def _wrap_init(
    cls: type,
    kind: str,
    tracked: Callable[[tuple, dict], bool],
    label: Callable[[Any], str],
) -> None:
    original = cls.__init__
    key = (cls, "__init__")
    if key in _SAVED:  # pragma: no cover - guarded by installed()
        return

    def wrapper(self: Any, *args: Any, **kwargs: Any) -> None:
        original(self, *args, **kwargs)
        try:
            if tracked(args, kwargs):
                _register(self, kind, label(self))
        except Exception:  # pragma: no cover - diagnostics never raise
            counters["errors"] += 1

    _SAVED[key] = original
    cls.__init__ = wrapper  # type: ignore[method-assign]


def _wrap_release(cls: type, method: str) -> None:
    original = getattr(cls, method)
    key = (cls, method)
    if key in _SAVED:  # pragma: no cover - guarded by installed()
        return

    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        _deregister(self)
        return original(self, *args, **kwargs)

    _SAVED[key] = original
    setattr(cls, method, wrapper)


def installed() -> bool:
    """Whether the tracker is currently armed in this process."""
    return bool(_SAVED)


def install() -> None:
    """Arm the tracker in this process. Idempotent."""
    if installed():
        return

    from multiprocessing import shared_memory

    def _is_create(args: tuple, kwargs: dict) -> bool:
        # SharedMemory(name=None, create=False, size=0): acquisition
        # means create=True; attaches (create omitted/False) are not.
        if kwargs.get("create"):
            return True
        return len(args) >= 2 and bool(args[1])

    _wrap_init(
        shared_memory.SharedMemory,
        "shared-memory segment",
        _is_create,
        lambda obj: getattr(obj, "name", "?"),
    )
    _wrap_release(shared_memory.SharedMemory, "unlink")

    from concurrent.futures import ProcessPoolExecutor

    _wrap_init(
        ProcessPoolExecutor,
        "process pool",
        lambda args, kwargs: True,
        lambda obj: f"{getattr(obj, '_max_workers', '?')} workers",
    )
    _wrap_release(ProcessPoolExecutor, "shutdown")

    import tempfile

    _wrap_init(
        tempfile.TemporaryDirectory,
        "temporary directory",
        lambda args, kwargs: True,
        lambda obj: getattr(obj, "name", "?"),
    )
    _wrap_release(tempfile.TemporaryDirectory, "cleanup")

    atexit.register(_atexit_report)


def uninstall() -> None:
    """Restore every patched entry point and forget live records."""
    while _SAVED:
        (cls, attribute), original = _SAVED.popitem()
        setattr(cls, attribute, original)
    _LIVE.clear()
    atexit.unregister(_atexit_report)


def maybe_install() -> bool:
    """Arm the tracker iff ``ROPUS_LEAKTRACK=1``; returns whether armed.

    Called from pool-worker initializers and the test conftest: the
    environment is inherited from the driver, so exporting the flag
    once tracks every process the run spawns.
    """
    if os.environ.get(ENV_FLAG) == "1":
        install()
        return True
    return False


def live_resources() -> list[LiveResource]:
    """Records for every tracked resource still open, oldest first."""
    return sorted(_LIVE.values(), key=lambda record: record.token)


def report(stream: TextIO | None = None) -> int:
    """Print still-open resources to ``stream``; returns their count.

    Quiet when nothing is open. Used at pytest-session close and by
    the ``atexit`` hook; diagnostic only — never raises, never exits.
    """
    records = live_resources()
    if not records:
        return 0
    out = stream if stream is not None else sys.stderr
    print(
        f"ropus leaktrack: {len(records)} resource(s) still open:",
        file=out,
    )
    for record in records:
        print(record.format(), file=out)
    return len(records)


def _atexit_report() -> None:  # pragma: no cover - interpreter exit
    try:
        report()
    except Exception:
        counters["errors"] += 1


__all__ = [
    "ENV_FLAG",
    "LiveResource",
    "counters",
    "install",
    "installed",
    "live_resources",
    "maybe_install",
    "report",
    "uninstall",
]
