"""Resource access probability measurement (Section IV).

The paper defines the measured theta for an attribute with capacity
limit ``L`` as::

    theta = min_w min_t  sum_x min(A_wxt, L) / sum_x A_wxt

where ``A_wxt`` is the aggregate allocation requested in week ``w``, day
``x``, slot-of-day ``t``: the *minimum* resource access probability
received in any week for any of the ``T`` slots per day. Time-of-day
slots are compared across the days of a week to capture the diurnal
nature of interactive enterprise workloads.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CapacityError, TraceError
from repro.traces.allocation import AllocationTrace
from repro.units import CpuShares, Probability


def theta_by_slot(
    allocation: AllocationTrace, capacity: CpuShares
) -> np.ndarray:
    """Per-(week, slot-of-day) access ratios, shape ``(weeks, T)``.

    Slots whose seven-day aggregate request is zero count as fully
    satisfied (ratio 1): no demand was denied.
    """
    if capacity <= 0:
        raise CapacityError(f"capacity must be > 0, got {capacity}")
    calendar = allocation.calendar
    requested = calendar.slot_of_day_view(allocation.values)
    satisfied = np.minimum(requested, capacity)
    weekly_requested = requested.sum(axis=1)
    weekly_satisfied = satisfied.sum(axis=1)
    ratios = np.ones_like(weekly_requested)
    positive = weekly_requested > 0
    ratios[positive] = weekly_satisfied[positive] / weekly_requested[positive]
    return ratios


def measure_theta(
    allocation: AllocationTrace, capacity: CpuShares
) -> Probability:
    """The paper's theta: the worst (week, slot-of-day) access ratio."""
    ratios = theta_by_slot(allocation, capacity)
    return float(ratios.min()) if ratios.size else 1.0


def required_capacity_for_theta(
    allocation: AllocationTrace,
    theta: Probability,
    capacity_limit: CpuShares,
    tolerance: float = 0.01,
) -> CpuShares | None:
    """Smallest capacity achieving ``theta`` for one allocation series.

    This is the single-CoS special case of the required-capacity search:
    monotone in capacity, so a binary search applies. Returns ``None``
    when even ``capacity_limit`` cannot reach ``theta``.
    """
    if not 0 < theta <= 1:
        raise TraceError(f"theta must be in (0, 1], got {theta}")
    if capacity_limit <= 0:
        raise CapacityError(
            f"capacity_limit must be > 0, got {capacity_limit}"
        )
    if tolerance <= 0:
        raise CapacityError(f"tolerance must be > 0, got {tolerance}")
    if measure_theta(allocation, capacity_limit) < theta:
        return None
    low, high = tolerance, float(capacity_limit)
    if measure_theta(allocation, low) >= theta:
        return low
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if measure_theta(allocation, mid) >= theta:
            high = mid
        else:
            low = mid
    return high
