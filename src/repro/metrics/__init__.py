"""Measurement and compliance metrics.

* :mod:`repro.metrics.access` — the resource access probability theta,
  measured exactly as Section IV defines it;
* :mod:`repro.metrics.compliance` — per-application QoS compliance
  checks (acceptable band, ``M_degr`` budget, ``T_degr`` run length);
* :mod:`repro.metrics.capacity` — capacity economics summaries (the
  Table I columns);
* :mod:`repro.metrics.report` — plain-text report rendering.
"""

from repro.metrics.access import measure_theta, theta_by_slot
from repro.metrics.capacity import CapacityCase, capacity_case
from repro.metrics.compliance import ComplianceReport, check_compliance
from repro.metrics.report import render_capacity_table, render_compliance_table
from repro.metrics.utilization import (
    ServerUtilizationSummary,
    consolidation_utilization,
    pool_balance,
    server_utilization,
)

__all__ = [
    "CapacityCase",
    "ComplianceReport",
    "ServerUtilizationSummary",
    "capacity_case",
    "check_compliance",
    "consolidation_utilization",
    "measure_theta",
    "pool_balance",
    "render_capacity_table",
    "render_compliance_table",
    "server_utilization",
    "theta_by_slot",
]
