"""Capacity economics summaries — the columns of the paper's Table I."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.placement.consolidation import ConsolidationResult


@dataclass(frozen=True)
class CapacityCase:
    """One row of a Table I-style comparison.

    Attributes mirror the paper's columns: the degradation budget
    ``M_degr`` (percent), the CoS2 access probability ``theta``, the
    contiguous-degradation limit ``T_degr`` (minutes, ``None`` for no
    limit), the number of servers the placement used, and the summed
    required (``C_requ``) and peak (``C_peak``) CPU capacities.
    """

    label: str
    m_degr_percent: float
    theta: float
    t_degr_minutes: Optional[float]
    servers_used: int
    sum_required: float
    sum_peak_allocations: float

    @property
    def sharing_savings(self) -> float:
        if self.sum_peak_allocations == 0:
            return 0.0
        return 1.0 - self.sum_required / self.sum_peak_allocations

    def t_degr_label(self) -> str:
        if self.t_degr_minutes is None:
            return "none"
        return f"{self.t_degr_minutes:g} min"


def capacity_case(
    label: str,
    m_degr_percent: float,
    theta: float,
    t_degr_minutes: Optional[float],
    result: ConsolidationResult,
) -> CapacityCase:
    """Build a comparison row from a consolidation result."""
    return CapacityCase(
        label=label,
        m_degr_percent=m_degr_percent,
        theta=theta,
        t_degr_minutes=t_degr_minutes,
        servers_used=result.servers_used,
        sum_required=result.sum_required,
        sum_peak_allocations=result.sum_peak_allocations,
    )
