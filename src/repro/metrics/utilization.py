"""Per-server utilization analysis of a consolidation plan.

The consolidation objective only sees one number per server (required
capacity over limit); operators want the time dimension back: how hot is
each server across the day, how much of the requested allocation rides
the guaranteed class, and how close do the aggregate requests come to
the capacity limit. These summaries feed capacity reviews and the
medium-term re-planning decisions of :mod:`repro.core.manager`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import PlacementError
from repro.placement.consolidation import ConsolidationResult
from repro.resources.pool import ResourcePool
from repro.traces.allocation import CoSAllocationPair, aggregate_pairs


@dataclass(frozen=True)
class ServerUtilizationSummary:
    """Requested-allocation statistics for one used server."""

    server: str
    capacity_limit: float
    required_capacity: float
    peak_requested: float
    mean_requested: float
    p95_requested: float
    cos1_share: float
    slots_above_limit: int

    @property
    def mean_utilization_of_limit(self) -> float:
        return self.mean_requested / self.capacity_limit

    @property
    def peak_utilization_of_limit(self) -> float:
        return self.peak_requested / self.capacity_limit


def server_utilization(
    pairs: Sequence[CoSAllocationPair],
    server_name: str,
    capacity_limit: float,
    required_capacity: float,
) -> ServerUtilizationSummary:
    """Summarise the aggregate allocation requests against one server."""
    if capacity_limit <= 0:
        raise PlacementError(
            f"capacity_limit must be > 0, got {capacity_limit}"
        )
    aggregate = aggregate_pairs(list(pairs), name=server_name)
    total = aggregate.cos1.values + aggregate.cos2.values
    cos1_volume = float(aggregate.cos1.values.sum())
    total_volume = float(total.sum())
    return ServerUtilizationSummary(
        server=server_name,
        capacity_limit=float(capacity_limit),
        required_capacity=float(required_capacity),
        peak_requested=float(total.max()),
        mean_requested=float(total.mean()),
        p95_requested=float(np.percentile(total, 95)),
        cos1_share=(cos1_volume / total_volume) if total_volume > 0 else 0.0,
        slots_above_limit=int(np.count_nonzero(total > capacity_limit)),
    )


def consolidation_utilization(
    result: ConsolidationResult,
    pairs_by_name: Mapping[str, CoSAllocationPair],
    pool: ResourcePool,
    attribute: str = "cpu",
) -> dict[str, ServerUtilizationSummary]:
    """Per-server utilization summaries for a whole plan.

    ``pairs_by_name`` maps workload names to their translated allocation
    pairs (e.g. ``{name: plan.translations[name].pair ...}``).
    """
    summaries: dict[str, ServerUtilizationSummary] = {}
    for server_name, workload_names in result.assignment.items():
        missing = [
            name for name in workload_names if name not in pairs_by_name
        ]
        if missing:
            raise PlacementError(
                f"no allocation pairs for workloads {missing} on "
                f"{server_name!r}"
            )
        server = pool[server_name]
        summaries[server_name] = server_utilization(
            [pairs_by_name[name] for name in workload_names],
            server_name,
            server.capacity_of(attribute),
            result.required_by_server[server_name],
        )
    return summaries


def pool_balance(
    summaries: Mapping[str, ServerUtilizationSummary],
) -> float:
    """Imbalance of mean utilization across used servers.

    Returns the coefficient of variation (std/mean) of the per-server
    mean utilizations: 0 for a perfectly balanced plan. A very high
    value flags a straggler server the next re-plan should fold in.
    """
    if not summaries:
        return 0.0
    means = np.array(
        [summary.mean_utilization_of_limit for summary in summaries.values()]
    )
    if means.mean() == 0:
        return 0.0
    return float(means.std() / means.mean())
