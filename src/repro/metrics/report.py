"""Plain-text rendering of metric tables."""

from __future__ import annotations

from typing import Sequence

from repro.metrics.capacity import CapacityCase
from repro.metrics.compliance import ComplianceReport
from repro.util.tables import format_table


def render_capacity_table(
    cases: Sequence[CapacityCase], title: str | None = None
) -> str:
    """Render Table I-style rows: one line per planning case."""
    headers = [
        "case",
        "M_degr %",
        "theta",
        "T_degr",
        "servers",
        "C_requ CPU",
        "C_peak CPU",
        "savings %",
    ]
    rows = [
        [
            case.label,
            case.m_degr_percent,
            case.theta,
            case.t_degr_label(),
            case.servers_used,
            case.sum_required,
            case.sum_peak_allocations,
            100.0 * case.sharing_savings,
        ]
        for case in cases
    ]
    return format_table(headers, rows, title=title)


def render_compliance_table(
    reports: Sequence[ComplianceReport], title: str | None = None
) -> str:
    """Render per-workload compliance results."""
    headers = [
        "workload",
        "acceptable %",
        "degraded %",
        "violations %",
        "max run (min)",
        "compliant",
    ]
    rows = [
        [
            report.workload,
            100.0 * report.acceptable_fraction,
            100.0 * report.degraded_fraction,
            100.0 * report.violation_fraction,
            report.longest_degraded_run_minutes,
            report.compliant,
        ]
        for report in reports
    ]
    return format_table(headers, rows, title=title)
