"""Per-application QoS compliance checking (Section III's contract).

Given what a workload actually demanded and what it was actually
granted, :func:`check_compliance` verifies the application QoS
requirement:

* **acceptable performance** — at least ``M%`` of measurements with
  utilization of allocation within ``[U_low, U_high]`` (utilizations
  below ``U_low`` also count as acceptable: the application is merely
  over-allocated);
* **degraded performance** — the remaining measurements must not exceed
  ``U_degr``;
* **time-limited degradation** — no more than ``T_degr`` *contiguous*
  minutes above ``U_high``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.qos import ApplicationQoS
from repro.exceptions import InvariantError, TraceError
from repro.units import Fraction01, Slots
from repro.util.floats import METRIC_ATOL, at_most, is_zero
from repro.traces.calendar import TraceCalendar
from repro.traces.ops import longest_run_above
from repro.traces.trace import DemandTrace


@dataclass(frozen=True)
class ComplianceReport:
    """Measured compliance of one workload against one QoS requirement."""

    workload: str
    n_observations: int
    acceptable_fraction: Fraction01
    degraded_fraction: Fraction01
    violation_fraction: Fraction01
    longest_degraded_run_slots: Slots
    longest_degraded_run_minutes: float
    meets_band_budget: bool
    meets_ceiling: bool
    meets_time_limit: bool

    def __post_init__(self) -> None:
        # Per-field checks are written out so ROP011 can see each one.
        if not 0.0 <= self.acceptable_fraction <= 1.0:
            raise InvariantError(
                f"acceptable_fraction must be in [0, 1], "
                f"got {self.acceptable_fraction}"
            )
        if not 0.0 <= self.degraded_fraction <= 1.0:
            raise InvariantError(
                f"degraded_fraction must be in [0, 1], "
                f"got {self.degraded_fraction}"
            )
        if not 0.0 <= self.violation_fraction <= 1.0:
            raise InvariantError(
                f"violation_fraction must be in [0, 1], "
                f"got {self.violation_fraction}"
            )
        if self.longest_degraded_run_slots < 0:
            raise InvariantError(
                f"longest_degraded_run_slots must be >= 0, "
                f"got {self.longest_degraded_run_slots}"
            )

    @property
    def compliant(self) -> bool:
        """True when every clause of the requirement is met."""
        return self.meets_band_budget and self.meets_ceiling and self.meets_time_limit


def utilization_series(
    demand: np.ndarray, granted: np.ndarray
) -> np.ndarray:
    """Utilization of allocation with the zero conventions of the paper.

    Zero demand yields utilization 0 regardless of allocation; positive
    demand with zero allocation yields ``inf`` (starvation).
    """
    demand = np.asarray(demand, dtype=float)
    granted = np.asarray(granted, dtype=float)
    if demand.shape != granted.shape:
        raise TraceError("demand and granted series must have matching shapes")
    utilization = np.zeros_like(demand)
    positive = granted > 0
    utilization[positive] = demand[positive] / granted[positive]
    utilization[(~positive) & (demand > 0)] = np.inf
    return utilization


def check_compliance(
    demand: DemandTrace,
    granted: np.ndarray,
    qos: ApplicationQoS,
) -> ComplianceReport:
    """Check one workload's measured grants against its QoS requirement."""
    granted = np.asarray(granted, dtype=float)
    utilization = utilization_series(demand.values, granted)
    calendar: TraceCalendar = demand.calendar
    n = len(demand)

    active = demand.values > 0
    degraded_mask = (utilization > qos.u_high) & active
    ceiling = qos.u_degr if qos.u_degr is not None else qos.u_high
    violation_mask = (utilization > ceiling + METRIC_ATOL) & active

    degraded_fraction = float(np.count_nonzero(degraded_mask)) / n if n else 0.0
    violation_fraction = float(np.count_nonzero(violation_mask)) / n if n else 0.0
    acceptable_fraction = 1.0 - degraded_fraction

    run_slots = longest_run_above(degraded_mask.astype(float), 0.5)
    run_minutes = run_slots * calendar.slot_minutes

    budget = qos.m_degr_fraction
    meets_band_budget = at_most(degraded_fraction, budget)
    meets_ceiling = is_zero(violation_fraction)
    if qos.t_degr_minutes is None:
        meets_time_limit = True
    else:
        meets_time_limit = at_most(run_minutes, qos.t_degr_minutes)

    return ComplianceReport(
        workload=demand.name,
        n_observations=n,
        acceptable_fraction=acceptable_fraction,
        degraded_fraction=degraded_fraction,
        violation_fraction=violation_fraction,
        longest_degraded_run_slots=run_slots,
        longest_degraded_run_minutes=run_minutes,
        meets_band_budget=meets_band_budget,
        meets_ceiling=meets_ceiling,
        meets_time_limit=meets_time_limit,
    )
