"""Slot-level two-priority capacity scheduler.

This is the reference model of how a server's workload manager divides
capacity among its containers each scheduling interval (Section II and
VI-A of the paper):

1. higher-priority (CoS1) allocation requests are granted first;
2. the remaining capacity is granted to lower-priority (CoS2) requests;
3. CoS2 demand that cannot be granted immediately is carried forward as a
   backlog and drained, oldest first, as capacity frees up — the CoS
   constraint requires the backlog to drain within the deadline ``s``.

Within a priority class, when requests exceed what can be granted, the
scheduler shares proportionally to each container's request (a fluid
approximation of a proportional-share scheduler running at sub-second
time slices).

The workload placement service uses a vectorised aggregate equivalent
(:mod:`repro.placement.simulator`) for speed; this model keeps per-
container detail for compliance analysis and is the oracle the simulator
is tested against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.traces.allocation import CoSAllocationPair

_EPSILON = 1e-9


@dataclass
class SchedulerResult:
    """Outcome of replaying workloads against one server's capacity.

    Arrays are shaped ``(n_workloads, n_slots)``; row order matches the
    input pairs.
    """

    workload_names: list[str]
    capacity: float
    cos1_requested: np.ndarray
    cos2_requested: np.ndarray
    cos1_granted: np.ndarray
    cos2_granted: np.ndarray
    max_backlog_age: np.ndarray
    overbooked_slots: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))

    @property
    def n_slots(self) -> int:
        return self.cos1_requested.shape[1]

    def granted_total(self) -> np.ndarray:
        """Per-workload total granted capacity per slot."""
        return self.cos1_granted + self.cos2_granted

    def cos2_satisfaction_ratio(self) -> float:
        """Fraction of aggregate CoS2 request volume granted on request."""
        requested = float(self.cos2_requested.sum())
        if requested == 0:
            return 1.0
        return float(self.cos2_granted_on_request().sum()) / requested

    def cos2_granted_on_request(self) -> np.ndarray:
        """CoS2 grants that served same-slot requests (not backlog drain)."""
        return np.minimum(self.cos2_granted, self.cos2_requested)

    def worst_backlog_age(self) -> int:
        """Largest number of slots any CoS2 demand waited before service."""
        if self.max_backlog_age.size == 0:
            return 0
        return int(self.max_backlog_age.max())

    def meets_deadline(self, deadline_slots: int) -> bool:
        """True when all deferred CoS2 demand drained within the deadline."""
        return self.worst_backlog_age() <= deadline_slots


class CapacityScheduler:
    """Replay per-CoS allocation requests against a fixed capacity."""

    def __init__(self, capacity: float):
        if capacity <= 0:
            raise SimulationError(f"capacity must be > 0, got {capacity}")
        self.capacity = float(capacity)

    def run(
        self,
        pairs: Sequence[CoSAllocationPair],
        *,
        carry_forward: bool = True,
    ) -> SchedulerResult:
        """Simulate every slot of the pairs' common calendar.

        With ``carry_forward=False`` unsatisfied CoS2 demand is dropped
        instead of backlogged (the pure loss model used when measuring the
        instantaneous resource access probability).
        """
        if not pairs:
            raise SimulationError("cannot schedule an empty set of workloads")
        calendar = pairs[0].calendar
        for pair in pairs:
            calendar.require_compatible(pair.calendar)

        n_workloads = len(pairs)
        n_slots = calendar.n_observations
        cos1_requested = np.vstack([pair.cos1.values for pair in pairs])
        cos2_requested = np.vstack([pair.cos2.values for pair in pairs])
        cos1_granted = np.zeros_like(cos1_requested)
        cos2_granted = np.zeros_like(cos2_requested)
        max_backlog_age = np.zeros(n_workloads, dtype=int)
        overbooked: list[int] = []

        # Per-workload FIFO of (slot_created, remaining_amount) for
        # deferred CoS2 demand.
        backlogs: list[deque[list[float]]] = [deque() for _ in range(n_workloads)]

        for slot in range(n_slots):
            cos1_slot = cos1_requested[:, slot]
            cos1_total = float(cos1_slot.sum())
            if cos1_total <= self.capacity + _EPSILON:
                cos1_granted[:, slot] = cos1_slot
            else:
                # Placement should prevent this; grant proportionally and
                # record the violation.
                overbooked.append(slot)
                cos1_granted[:, slot] = cos1_slot * (self.capacity / cos1_total)
            remaining = max(0.0, self.capacity - float(cos1_granted[:, slot].sum()))

            if carry_forward:
                demands = np.array(
                    [
                        cos2_requested[row, slot]
                        + sum(entry[1] for entry in backlogs[row])
                        for row in range(n_workloads)
                    ]
                )
            else:
                demands = cos2_requested[:, slot].copy()
            demand_total = float(demands.sum())
            if demand_total <= remaining + _EPSILON:
                grants = demands.copy()
            elif demand_total > 0:
                grants = demands * (remaining / demand_total)
            else:
                grants = np.zeros(n_workloads)
            cos2_granted[:, slot] = grants

            if carry_forward:
                self._drain_backlogs(
                    backlogs,
                    cos2_requested[:, slot],
                    grants,
                    slot,
                    max_backlog_age,
                )

        # Demand still backlogged at trace end waited at least until the
        # final slot.
        if carry_forward:
            final_slot = n_slots - 1
            for row, backlog in enumerate(backlogs):
                for created, remaining_amount in backlog:
                    if remaining_amount > _EPSILON:
                        age = final_slot - int(created) + 1
                        max_backlog_age[row] = max(max_backlog_age[row], age)

        return SchedulerResult(
            workload_names=[pair.name for pair in pairs],
            capacity=self.capacity,
            cos1_requested=cos1_requested,
            cos2_requested=cos2_requested,
            cos1_granted=cos1_granted,
            cos2_granted=cos2_granted,
            max_backlog_age=max_backlog_age,
            overbooked_slots=np.asarray(overbooked, dtype=int),
        )

    def _drain_backlogs(
        self,
        backlogs: list[deque[list[float]]],
        slot_requests: np.ndarray,
        grants: np.ndarray,
        slot: int,
        max_backlog_age: np.ndarray,
    ) -> None:
        """Apply grants oldest-demand-first and enqueue the shortfall."""
        for row, backlog in enumerate(backlogs):
            grant = float(grants[row])
            # Serve backlog first (oldest first).
            while backlog and grant > _EPSILON:
                created, amount = backlog[0]
                served = min(amount, grant)
                amount -= served
                grant -= served
                if amount <= _EPSILON:
                    backlog.popleft()
                    age = slot - int(created)
                    max_backlog_age[row] = max(max_backlog_age[row], age)
                else:
                    backlog[0][1] = amount
            # Then the current slot's request.
            unserved = float(slot_requests[row]) - grant
            if unserved > _EPSILON:
                backlog.append([slot, unserved])
