"""Resource containers: the unit of workload placement.

The paper assumes each resource container (virtual machine, workload
group) hosts exactly one application workload. A
:class:`ResourceContainer` therefore binds a workload name to its demand
trace and, once the QoS translation has run, to its per-CoS allocation
requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.traces.allocation import CoSAllocationPair
from repro.traces.trace import DemandTrace


@dataclass(frozen=True)
class ResourceContainer:
    """One application workload and its capacity requirements.

    Parameters
    ----------
    name:
        Container identifier; by convention equal to the workload name.
    demand:
        The workload's historical demand trace.
    allocation:
        The per-CoS allocation requirement produced by the QoS
        translation. ``None`` until the container has been translated.
    """

    name: str
    demand: DemandTrace
    allocation: Optional[CoSAllocationPair] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("container name must not be empty")
        if self.allocation is not None:
            self.demand.calendar.require_compatible(self.allocation.calendar)

    @property
    def is_translated(self) -> bool:
        """True once the QoS translation has attached allocation traces."""
        return self.allocation is not None

    def require_allocation(self) -> CoSAllocationPair:
        """The allocation pair, raising if translation has not run."""
        if self.allocation is None:
            raise ConfigurationError(
                f"container {self.name!r} has no allocation; run the QoS "
                "translation first"
            )
        return self.allocation

    def with_allocation(self, allocation: CoSAllocationPair) -> "ResourceContainer":
        """A copy of this container carrying the translated allocation."""
        return ResourceContainer(self.name, self.demand, allocation)

    def __repr__(self) -> str:
        state = "translated" if self.is_translated else "untranslated"
        return f"ResourceContainer(name={self.name!r}, {state})"
