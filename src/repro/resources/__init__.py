"""Resource-pool substrate: servers, containers, workload managers.

Models the execution environment R-Opus manages: a pool of multi-CPU
servers (:class:`ServerSpec`, :class:`ResourcePool`), resource containers
binding one application workload each (:class:`ResourceContainer`), the
burst-factor workload manager with two allocation priorities
(:class:`WorkloadManager`), and a slot-level capacity scheduler that
grants CoS1 before CoS2 (:class:`CapacityScheduler`).
"""

from repro.resources.container import ResourceContainer
from repro.resources.feedback import (
    ClosedLoopResult,
    calibrate_burst_factor,
    simulate_closed_loop,
)
from repro.resources.pool import ResourcePool
from repro.resources.scheduler import CapacityScheduler, SchedulerResult
from repro.resources.server import ServerSpec, homogeneous_servers
from repro.resources.workload_manager import WorkloadManager, WorkloadManagerConfig

__all__ = [
    "CapacityScheduler",
    "ClosedLoopResult",
    "ResourceContainer",
    "ResourcePool",
    "SchedulerResult",
    "ServerSpec",
    "WorkloadManager",
    "WorkloadManagerConfig",
    "calibrate_burst_factor",
    "homogeneous_servers",
    "simulate_closed_loop",
]
