"""The burst-factor workload manager (Section II of the paper).

A workload manager watches a workload's recent demand and periodically
sets its capacity allocation to ``burst_factor x recent demand``, steering
utilization-of-allocation toward ``1 / burst_factor``. It exposes two
allocation priorities that realise the pool's two classes of service:
higher-priority (CoS1) requests are granted capacity first, the remainder
goes to lower-priority (CoS2) requests.

This module provides both the trace-level transformation (turn a demand
trace into allocation requests) and a step-wise controller usable in
closed-loop simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.traces.allocation import AllocationTrace
from repro.traces.trace import DemandTrace


@dataclass(frozen=True)
class WorkloadManagerConfig:
    """Controller parameters.

    Parameters
    ----------
    burst_factor:
        Multiplier applied to measured demand when setting the next
        allocation; the paper's example uses 2 (demand of 2 CPUs at 66%
        utilization of 3 CPUs yields a 4-CPU allocation).
    smoothing_window:
        Number of past observations averaged to estimate "recent demand".
        1 reproduces the memoryless behaviour assumed by the QoS
        translation; larger windows model managers that smooth.
    allocation_ceiling:
        Optional hard cap on the allocation (e.g. container size limit).
    """

    burst_factor: float = 2.0
    smoothing_window: int = 1
    allocation_ceiling: float | None = None

    def __post_init__(self) -> None:
        if self.burst_factor <= 0:
            raise ConfigurationError(
                f"burst_factor must be > 0, got {self.burst_factor}"
            )
        if self.smoothing_window < 1:
            raise ConfigurationError(
                f"smoothing_window must be >= 1, got {self.smoothing_window}"
            )
        if self.allocation_ceiling is not None and self.allocation_ceiling <= 0:
            raise ConfigurationError(
                f"allocation_ceiling must be > 0, got {self.allocation_ceiling}"
            )


class WorkloadManager:
    """Burst-factor allocation controller for one workload.

    >>> from repro.traces.calendar import TraceCalendar
    >>> calendar = TraceCalendar(weeks=1)
    >>> demand = DemandTrace("w", [1.0] * calendar.n_observations, calendar)
    >>> manager = WorkloadManager(WorkloadManagerConfig(burst_factor=2.0))
    >>> manager.allocation_trace(demand).peak()
    2.0
    """

    def __init__(self, config: WorkloadManagerConfig | None = None):
        self.config = config or WorkloadManagerConfig()

    def allocation_trace(self, demand: DemandTrace) -> AllocationTrace:
        """Allocation requests for a whole demand trace.

        With ``smoothing_window == 1`` each slot's allocation is simply
        ``burst_factor x demand`` for that slot; with a larger window the
        demand estimate is a trailing moving average (the first
        observations use the shorter prefix available).
        """
        estimate = self._demand_estimate(demand.values)
        allocation = estimate * self.config.burst_factor
        if self.config.allocation_ceiling is not None:
            allocation = np.minimum(allocation, self.config.allocation_ceiling)
        return AllocationTrace(
            demand.name, allocation, demand.calendar, demand.attribute
        )

    def target_utilization(self) -> float:
        """The utilization-of-allocation the controller steers toward."""
        return 1.0 / self.config.burst_factor

    def _demand_estimate(self, values: np.ndarray) -> np.ndarray:
        window = self.config.smoothing_window
        if window == 1:
            return values.copy()
        cumulative = np.concatenate(([0.0], np.cumsum(values)))
        estimate = np.empty_like(values)
        for index in range(values.shape[0]):
            start = max(0, index - window + 1)
            estimate[index] = (cumulative[index + 1] - cumulative[start]) / (
                index + 1 - start
            )
        return estimate


def utilization_of_allocation(
    demand: DemandTrace, allocation: AllocationTrace
) -> np.ndarray:
    """Per-slot utilization of allocation ``U_alloc = demand / allocation``.

    Slots with zero allocation and zero demand report utilization 0; zero
    allocation with positive demand reports ``inf`` (the workload is
    starved), which compliance checks treat as a violation of any
    threshold.
    """
    demand.calendar.require_compatible(allocation.calendar)
    demand_values = demand.values
    allocation_values = allocation.values
    with np.errstate(divide="ignore", invalid="ignore"):
        utilization = np.where(
            allocation_values > 0,
            demand_values / np.where(allocation_values > 0, allocation_values, 1.0),
            np.where(demand_values > 0, np.inf, 0.0),
        )
    return utilization
