"""Closed-loop workload-manager simulation (Section II's control loop).

The trace-based analysis elsewhere in the library treats allocation as a
function of the *same interval's* demand — an oracle. A real workload
manager is reactive: it measures utilization over the previous interval
and sets the next interval's allocation to ``burst_factor x measured
demand``. The burst factor exists precisely because the measured mean
hides bursts: with headroom ``1/U_low`` the application absorbs the
demand it will see before the controller reacts.

This module simulates that loop so the burst-factor choice can be
validated empirically, as the paper's stress-testing methodology
(Section III) does in a controlled environment: run the workload
against a candidate burst factor, observe the utilization-of-allocation
distribution and the episodes where demand outran the lagging
allocation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.traces.ops import longest_run_above
from repro.traces.trace import DemandTrace


@dataclass(frozen=True)
class ClosedLoopResult:
    """Outcome of one closed-loop run.

    Attributes
    ----------
    allocations:
        The allocation the controller granted per interval.
    served:
        Demand actually served: ``min(demand, allocation)`` — with a
        reactive controller, demand above the lagging allocation is
        clipped (the application saturates and queues).
    utilization:
        Served demand over allocation per interval.
    saturated_fraction:
        Fraction of intervals where raw demand exceeded the allocation.
    longest_saturated_run:
        Longest stretch of consecutive saturated intervals.
    mean_utilization:
        Mean utilization of allocation over active intervals.
    """

    allocations: np.ndarray
    served: np.ndarray
    utilization: np.ndarray
    saturated_fraction: float
    longest_saturated_run: int
    mean_utilization: float


def simulate_closed_loop(
    demand: DemandTrace,
    burst_factor: float,
    *,
    initial_allocation: float | None = None,
    allocation_floor: float = 0.01,
    allocation_ceiling: float | None = None,
) -> ClosedLoopResult:
    """Run the reactive burst-factor controller against a demand trace.

    Each interval ``t`` the controller grants
    ``allocation[t] = burst_factor x served[t-1]`` (clamped to the floor
    and optional ceiling), where ``served[t-1]`` is what the workload
    could actually consume under the previous allocation — the
    controller only ever sees measured utilization, never true demand.
    """
    if burst_factor <= 0:
        raise SimulationError(f"burst_factor must be > 0, got {burst_factor}")
    if allocation_floor <= 0:
        raise SimulationError(
            f"allocation_floor must be > 0, got {allocation_floor}"
        )
    if allocation_ceiling is not None and allocation_ceiling < allocation_floor:
        raise SimulationError(
            "allocation_ceiling must be >= allocation_floor"
        )

    values = demand.values
    n = values.shape[0]
    allocations = np.empty(n)
    served = np.empty(n)

    if initial_allocation is None:
        initial_allocation = max(
            allocation_floor, float(values[0]) * burst_factor
        )
    current = max(allocation_floor, float(initial_allocation))
    if allocation_ceiling is not None:
        current = min(current, allocation_ceiling)

    for index in range(n):
        allocations[index] = current
        served[index] = min(values[index], current)
        target = max(allocation_floor, served[index] * burst_factor)
        if allocation_ceiling is not None:
            target = min(target, allocation_ceiling)
        current = target

    with np.errstate(invalid="ignore"):
        utilization = np.where(allocations > 0, served / allocations, 0.0)
    saturated = values > allocations + 1e-12
    active = values > 0
    mean_utilization = (
        float(utilization[active].mean()) if active.any() else 0.0
    )
    return ClosedLoopResult(
        allocations=allocations,
        served=served,
        utilization=utilization,
        saturated_fraction=float(np.count_nonzero(saturated)) / n if n else 0.0,
        longest_saturated_run=longest_run_above(saturated.astype(float), 0.5),
        mean_utilization=mean_utilization,
    )


def calibrate_burst_factor(
    demand: DemandTrace,
    *,
    max_saturated_fraction: float = 0.02,
    candidates: np.ndarray | None = None,
) -> float:
    """Find the smallest burst factor keeping saturation acceptably rare.

    This is the programmatic analogue of the paper's stress-testing
    exercise: sweep the burst factor and pick the smallest value whose
    closed-loop run saturates (demand outruns the lagging allocation) in
    at most ``max_saturated_fraction`` of intervals. Returns the largest
    candidate if none qualifies.
    """
    if not 0 <= max_saturated_fraction < 1:
        raise SimulationError(
            "max_saturated_fraction must be in [0, 1), got "
            f"{max_saturated_fraction}"
        )
    if candidates is None:
        candidates = np.arange(1.0, 4.01, 0.25)
    candidates = np.sort(np.asarray(candidates, dtype=float))
    if candidates.size == 0 or candidates[0] <= 0:
        raise SimulationError("candidates must be positive and non-empty")
    for candidate in candidates:
        result = simulate_closed_loop(demand, float(candidate))
        if result.saturated_fraction <= max_saturated_fraction:
            return float(candidate)
    return float(candidates[-1])
