"""Server model: capacity limits per attribute plus CPU count.

The placement objective (Section VI-B) needs the number of CPUs ``Z`` of a
server — ``f(U) = U^(2Z)`` lets servers with more CPUs run at higher
utilization — and the capacity limit ``L`` per capacity attribute for the
required-capacity search. The paper's case study uses homogeneous 16-way
servers, but the model is parametric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.exceptions import CapacityError

CPU_ATTRIBUTE = "cpu"


@dataclass(frozen=True)
class ServerSpec:
    """One server in the pool.

    Parameters
    ----------
    name:
        Unique server identifier within a pool.
    cpus:
        Number of CPUs (``Z``); drives the utilization term of the
        placement objective.
    attributes:
        Capacity limit per attribute. If the ``cpu`` attribute is omitted
        it defaults to ``cpus`` (each CPU contributes one unit of CPU
        capacity).
    rack / zone:
        Optional failure-domain labels (server → rack → zone). Servers
        sharing a label fail together in domain-scoped what-ifs; an
        unlabeled server is its own singleton domain, so flat pools
        behave exactly as before the topology existed.

    >>> ServerSpec("s0", cpus=16).capacity_of("cpu")
    16.0
    """

    name: str
    cpus: int
    attributes: Mapping[str, float] = field(default_factory=dict)
    rack: str | None = None
    zone: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise CapacityError("server name must not be empty")
        if self.cpus < 1:
            raise CapacityError(f"server {self.name!r}: cpus must be >= 1, got {self.cpus}")
        merged = dict(self.attributes)
        merged.setdefault(CPU_ATTRIBUTE, float(self.cpus))
        for attribute, limit in merged.items():
            if limit <= 0:
                raise CapacityError(
                    f"server {self.name!r}: capacity of {attribute!r} must be "
                    f"> 0, got {limit}"
                )
        for kind in ("rack", "zone"):
            label = getattr(self, kind)
            if label is not None and not label:
                raise CapacityError(
                    f"server {self.name!r}: {kind} label must be None or "
                    "non-empty"
                )
        object.__setattr__(self, "attributes", MappingProxyType(merged))

    def capacity_of(self, attribute: str) -> float:
        """Capacity limit ``L`` for one attribute."""
        try:
            return float(self.attributes[attribute])
        except KeyError:
            raise CapacityError(
                f"server {self.name!r} has no capacity attribute {attribute!r}"
            ) from None

    def has_attribute(self, attribute: str) -> bool:
        return attribute in self.attributes

    def scaled(self, factor: float) -> "ServerSpec":
        """A degraded copy: every capacity limit multiplied by ``factor``.

        Models a server that survives a fault in reduced condition (a
        failed DIMM bank, a throttled socket): same identity, same CPU
        count ``Z`` for the objective's utilization exponent, but every
        capacity limit scaled down. ``factor`` must be in ``(0, 1]``.
        """
        if not 0.0 < factor <= 1.0:
            raise CapacityError(
                f"server {self.name!r}: degraded capacity factor must be in "
                f"(0, 1], got {factor}"
            )
        return ServerSpec(
            self.name,
            self.cpus,
            {
                attribute: limit * factor
                for attribute, limit in self.attributes.items()
            },
            rack=self.rack,
            zone=self.zone,
        )

    def __reduce__(self):
        # The frozen attributes mapping is a MappingProxyType, which does
        # not pickle; rebuild from plain data so specs can cross process
        # boundaries (parallel failure what-ifs ship the pool to workers).
        return (
            ServerSpec,
            (self.name, self.cpus, dict(self.attributes), self.rack, self.zone),
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.name,
                self.cpus,
                tuple(sorted(self.attributes.items())),
                self.rack,
                self.zone,
            )
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServerSpec):
            return NotImplemented
        return (
            self.name == other.name
            and self.cpus == other.cpus
            and dict(self.attributes) == dict(other.attributes)
            and self.rack == other.rack
            and self.zone == other.zone
        )


def homogeneous_servers(
    count: int,
    cpus: int = 16,
    prefix: str = "server",
    racks: int | None = None,
    zones: int | None = None,
) -> list[ServerSpec]:
    """Build ``count`` identical servers, named ``prefix-00`` onward.

    ``racks``/``zones`` spread the servers over that many contiguous,
    balanced failure domains (``rack-00`` ..., ``zone-00`` ...); left as
    ``None`` the servers stay unlabeled — a flat pool, exactly as before
    topology existed.

    >>> [server.rack for server in homogeneous_servers(4, racks=2)]
    ['rack-00', 'rack-00', 'rack-01', 'rack-01']
    """
    if count < 0:
        raise CapacityError(f"count must be >= 0, got {count}")
    for kind, n_domains in (("racks", racks), ("zones", zones)):
        if n_domains is not None and not 1 <= n_domains <= max(count, 1):
            raise CapacityError(
                f"{kind} must be in [1, {max(count, 1)}], got {n_domains}"
            )
    servers = []
    for index in range(count):
        rack = None if racks is None else f"rack-{index * racks // count:02d}"
        zone = None if zones is None else f"zone-{index * zones // count:02d}"
        servers.append(
            ServerSpec(f"{prefix}-{index:02d}", cpus=cpus, rack=rack, zone=zone)
        )
    return servers
