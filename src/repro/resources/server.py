"""Server model: capacity limits per attribute plus CPU count.

The placement objective (Section VI-B) needs the number of CPUs ``Z`` of a
server — ``f(U) = U^(2Z)`` lets servers with more CPUs run at higher
utilization — and the capacity limit ``L`` per capacity attribute for the
required-capacity search. The paper's case study uses homogeneous 16-way
servers, but the model is parametric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.exceptions import CapacityError

CPU_ATTRIBUTE = "cpu"


@dataclass(frozen=True)
class ServerSpec:
    """One server in the pool.

    Parameters
    ----------
    name:
        Unique server identifier within a pool.
    cpus:
        Number of CPUs (``Z``); drives the utilization term of the
        placement objective.
    attributes:
        Capacity limit per attribute. If the ``cpu`` attribute is omitted
        it defaults to ``cpus`` (each CPU contributes one unit of CPU
        capacity).

    >>> ServerSpec("s0", cpus=16).capacity_of("cpu")
    16.0
    """

    name: str
    cpus: int
    attributes: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise CapacityError("server name must not be empty")
        if self.cpus < 1:
            raise CapacityError(f"server {self.name!r}: cpus must be >= 1, got {self.cpus}")
        merged = dict(self.attributes)
        merged.setdefault(CPU_ATTRIBUTE, float(self.cpus))
        for attribute, limit in merged.items():
            if limit <= 0:
                raise CapacityError(
                    f"server {self.name!r}: capacity of {attribute!r} must be "
                    f"> 0, got {limit}"
                )
        object.__setattr__(self, "attributes", MappingProxyType(merged))

    def capacity_of(self, attribute: str) -> float:
        """Capacity limit ``L`` for one attribute."""
        try:
            return float(self.attributes[attribute])
        except KeyError:
            raise CapacityError(
                f"server {self.name!r} has no capacity attribute {attribute!r}"
            ) from None

    def has_attribute(self, attribute: str) -> bool:
        return attribute in self.attributes

    def __reduce__(self):
        # The frozen attributes mapping is a MappingProxyType, which does
        # not pickle; rebuild from plain data so specs can cross process
        # boundaries (parallel failure what-ifs ship the pool to workers).
        return (ServerSpec, (self.name, self.cpus, dict(self.attributes)))

    def __hash__(self) -> int:
        return hash((self.name, self.cpus, tuple(sorted(self.attributes.items()))))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServerSpec):
            return NotImplemented
        return (
            self.name == other.name
            and self.cpus == other.cpus
            and dict(self.attributes) == dict(other.attributes)
        )


def homogeneous_servers(count: int, cpus: int = 16, prefix: str = "server") -> list[ServerSpec]:
    """Build ``count`` identical servers, named ``prefix-00`` onward."""
    if count < 0:
        raise CapacityError(f"count must be >= 0, got {count}")
    return [ServerSpec(f"{prefix}-{index:02d}", cpus=cpus) for index in range(count)]
