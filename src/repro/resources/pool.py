"""Resource pool: the server inventory a placement operates over."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.exceptions import CapacityError
from repro.resources.server import ServerSpec


class ResourcePool:
    """An ordered collection of uniquely named servers.

    The pool is the unit the workload placement service consolidates onto
    and the failure planner perturbs (removing one server at a time).

    >>> from repro.resources.server import homogeneous_servers
    >>> pool = ResourcePool(homogeneous_servers(3))
    >>> len(pool)
    3
    >>> len(pool.without("server-01"))
    2
    """

    def __init__(self, servers: Iterable[ServerSpec]):
        self._servers = list(servers)
        names = [server.name for server in self._servers]
        if len(set(names)) != len(names):
            duplicates = sorted(
                {name for name in names if names.count(name) > 1}
            )
            raise CapacityError(f"duplicate server names in pool: {duplicates}")

    @property
    def servers(self) -> tuple[ServerSpec, ...]:
        return tuple(self._servers)

    def __len__(self) -> int:
        return len(self._servers)

    def __iter__(self) -> Iterator[ServerSpec]:
        return iter(self._servers)

    def __contains__(self, name: object) -> bool:
        return any(server.name == name for server in self._servers)

    def __getitem__(self, name: str) -> ServerSpec:
        for server in self._servers:
            if server.name == name:
                return server
        raise KeyError(f"no server named {name!r} in pool")

    def __repr__(self) -> str:
        return f"ResourcePool({[server.name for server in self._servers]})"

    def names(self) -> list[str]:
        return [server.name for server in self._servers]

    def total_cpus(self) -> int:
        return sum(server.cpus for server in self._servers)

    def total_capacity(self, attribute: str = "cpu") -> float:
        """Summed capacity limit across all servers for one attribute."""
        return sum(server.capacity_of(attribute) for server in self._servers)

    def without(self, *names: str) -> "ResourcePool":
        """A new pool with the named servers removed (failure what-ifs)."""
        missing = [name for name in names if name not in self]
        if missing:
            raise CapacityError(f"cannot remove unknown servers: {missing}")
        removed = set(names)
        return ResourcePool(
            server for server in self._servers if server.name not in removed
        )

    def with_added(self, *servers: ServerSpec) -> "ResourcePool":
        """A new pool with extra servers appended (spare-server what-ifs)."""
        return ResourcePool(list(self._servers) + list(servers))
