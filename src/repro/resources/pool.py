"""Resource pool: the server inventory a placement operates over."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.exceptions import CapacityError
from repro.resources.server import ServerSpec

#: Failure-domain granularities, narrowest first. ``server`` is always
#: available; ``rack``/``zone`` use the :class:`ServerSpec` labels.
DOMAIN_KINDS = ("server", "rack", "zone")


class ResourcePool:
    """An ordered collection of uniquely named servers.

    The pool is the unit the workload placement service consolidates onto
    and the failure planner perturbs (removing one server at a time).

    >>> from repro.resources.server import homogeneous_servers
    >>> pool = ResourcePool(homogeneous_servers(3))
    >>> len(pool)
    3
    >>> len(pool.without("server-01"))
    2
    """

    def __init__(self, servers: Iterable[ServerSpec]):
        self._servers = list(servers)
        names = [server.name for server in self._servers]
        if len(set(names)) != len(names):
            duplicates = sorted(
                {name for name in names if names.count(name) > 1}
            )
            raise CapacityError(f"duplicate server names in pool: {duplicates}")

    @property
    def servers(self) -> tuple[ServerSpec, ...]:
        return tuple(self._servers)

    def __len__(self) -> int:
        return len(self._servers)

    def __iter__(self) -> Iterator[ServerSpec]:
        return iter(self._servers)

    def __contains__(self, name: object) -> bool:
        return any(server.name == name for server in self._servers)

    def __getitem__(self, name: str) -> ServerSpec:
        for server in self._servers:
            if server.name == name:
                return server
        raise KeyError(f"no server named {name!r} in pool")

    def __repr__(self) -> str:
        return f"ResourcePool({[server.name for server in self._servers]})"

    def names(self) -> list[str]:
        return [server.name for server in self._servers]

    def total_cpus(self) -> int:
        return sum(server.cpus for server in self._servers)

    def total_capacity(self, attribute: str = "cpu") -> float:
        """Summed capacity limit across all servers for one attribute."""
        return sum(server.capacity_of(attribute) for server in self._servers)

    def without(self, *names: str) -> "ResourcePool":
        """A new pool with the named servers removed (failure what-ifs)."""
        missing = [name for name in names if name not in self]
        if missing:
            raise CapacityError(f"cannot remove unknown servers: {missing}")
        removed = set(names)
        return ResourcePool(
            server for server in self._servers if server.name not in removed
        )

    def with_added(self, *servers: ServerSpec) -> "ResourcePool":
        """A new pool with extra servers appended (spare-server what-ifs)."""
        return ResourcePool(list(self._servers) + list(servers))

    def with_degraded(self, factors: Mapping[str, float]) -> "ResourcePool":
        """A new pool where named servers survive with scaled capacity.

        The degraded-server what-if: unlike :meth:`without`, the server
        stays in the pool (and keeps hosting candidates), but every
        capacity limit is multiplied by its factor in ``(0, 1]`` (see
        :meth:`~repro.resources.server.ServerSpec.scaled`).
        """
        missing = [name for name in factors if name not in self]
        if missing:
            raise CapacityError(
                f"cannot degrade unknown servers: {sorted(missing)}"
            )
        return ResourcePool(
            server.scaled(factors[server.name])
            if server.name in factors
            else server
            for server in self._servers
        )

    def has_topology(self, kind: str = "rack") -> bool:
        """True when at least one server carries the ``kind`` label."""
        if kind not in ("rack", "zone"):
            raise CapacityError(
                f"topology kind must be 'rack' or 'zone', got {kind!r}"
            )
        return any(
            getattr(server, kind) is not None for server in self._servers
        )

    def domains(self, kind: str = "rack") -> dict[str, tuple[str, ...]]:
        """Failure domains at one granularity: label → member servers.

        ``kind="server"`` returns one singleton domain per server;
        ``"rack"``/``"zone"`` group servers by their topology label.
        Unlabeled servers form singleton domains under their own name,
        so a flat pool degenerates to the single-server sweep at every
        granularity. Domains keep pool order (first appearance), and
        members keep pool order within each domain.
        """
        if kind not in DOMAIN_KINDS:
            raise CapacityError(
                f"domain kind must be one of {DOMAIN_KINDS}, got {kind!r}"
            )
        grouped: dict[str, list[str]] = {}
        for server in self._servers:
            if kind == "server":
                label = server.name
            else:
                label = getattr(server, kind) or server.name
            grouped.setdefault(label, []).append(server.name)
        return {label: tuple(names) for label, names in grouped.items()}
