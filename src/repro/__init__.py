"""R-Opus: application performability and QoS in shared resource pools.

A reproduction of *R-Opus: A Composite Framework for Application
Performability and QoS in Shared Resource Pools* (Cherkasova & Rolia,
DSN 2006). The library provides:

* per-application QoS requirements for normal and failure modes
  (:class:`QoSRange`, :class:`DegradedSpec`, :class:`ApplicationQoS`,
  :class:`QoSPolicy`);
* resource-pool class-of-service commitments (:class:`CoSCommitment`,
  :class:`PoolCommitments`);
* the QoS translation onto two classes of service
  (:class:`QoSTranslator`);
* a trace-driven workload placement service with a genetic optimizing
  search (:class:`Consolidator`, :class:`FailurePlanner`);
* the :class:`ROpus` facade wiring it all together;
* an execution engine routing the fan-out stages onto serial or
  process-pool backends with per-stage instrumentation
  (:class:`ExecutionEngine`, :class:`Instrumentation`);
* trace and synthetic-workload substrates (:class:`DemandTrace`,
  :class:`TraceCalendar`, :func:`case_study_ensemble`).

Quickstart::

    from repro import (
        PoolCommitments, QoSPolicy, ROpus, ResourcePool,
        case_study_ensemble, case_study_qos, homogeneous_servers,
    )

    demands = case_study_ensemble(seed=2006)
    framework = ROpus(
        PoolCommitments.of(theta=0.95),
        ResourcePool(homogeneous_servers(12, cpus=16)),
    )
    policy = QoSPolicy(
        normal=case_study_qos(m_degr_percent=0),
        failure=case_study_qos(m_degr_percent=3, t_degr_minutes=30),
    )
    plan = framework.plan(demands, policy)
    print(plan.summary())
"""

from repro.core.cos import CoSCommitment, PoolCommitments
from repro.core.degradation import (
    max_cap_reduction_bound,
    new_max_demand,
    realized_cap_reduction,
)
from repro.core.framework import CapacityPlan, ROpus
from repro.core.manager import CapacityManager, CapacityOutlook, RollingPlanReport
from repro.core.partition import breakpoint_fraction, partition_demand
from repro.core.qos import (
    ApplicationQoS,
    DegradedSpec,
    QoSPolicy,
    QoSRange,
    case_study_qos,
)
from repro.core.translation import QoSTranslator, TranslationResult
from repro.engine import (
    ExecutionEngine,
    Instrumentation,
    ParallelExecutor,
    SerialExecutor,
)
from repro.exceptions import (
    CapacityError,
    CommitmentError,
    ConfigurationError,
    InfeasiblePlacementError,
    PartitionError,
    PlacementError,
    QoSSpecificationError,
    ROpusError,
    SimulationError,
    TraceError,
    TranslationError,
)
from repro.metrics.access import measure_theta
from repro.metrics.compliance import ComplianceReport, check_compliance
from repro.placement.affinity import PlacementConstraints
from repro.placement.consolidation import ConsolidationResult, Consolidator
from repro.placement.failure import (
    FailurePlanner,
    FailureReport,
    FailureSweepPolicy,
    SpareSizingCurve,
)
from repro.placement.genetic import GeneticSearchConfig
from repro.placement.multi_attribute import (
    MultiAttributeConsolidator,
    MultiAttributeEvaluator,
)
from repro.resources.container import ResourceContainer
from repro.resources.pool import ResourcePool
from repro.resources.server import ServerSpec, homogeneous_servers
from repro.traces.allocation import AllocationTrace, CoSAllocationPair
from repro.traces.calendar import TraceCalendar
from repro.traces.trace import DemandTrace
from repro.traces.validation import TraceQualityReport, validate_trace
from repro.workloads.ensemble import case_study_ensemble
from repro.workloads.forecast import estimate_weekly_growth, extrapolate_demand
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "AllocationTrace",
    "ApplicationQoS",
    "CapacityError",
    "CapacityManager",
    "CapacityOutlook",
    "CapacityPlan",
    "CoSAllocationPair",
    "CoSCommitment",
    "CommitmentError",
    "ComplianceReport",
    "ConfigurationError",
    "ConsolidationResult",
    "Consolidator",
    "DegradedSpec",
    "DemandTrace",
    "ExecutionEngine",
    "FailurePlanner",
    "FailureReport",
    "FailureSweepPolicy",
    "GeneticSearchConfig",
    "InfeasiblePlacementError",
    "Instrumentation",
    "MultiAttributeConsolidator",
    "MultiAttributeEvaluator",
    "ParallelExecutor",
    "PartitionError",
    "PlacementConstraints",
    "PlacementError",
    "PoolCommitments",
    "QoSPolicy",
    "QoSRange",
    "QoSSpecificationError",
    "QoSTranslator",
    "ROpus",
    "ROpusError",
    "ResourceContainer",
    "ResourcePool",
    "RollingPlanReport",
    "SerialExecutor",
    "ServerSpec",
    "SimulationError",
    "SpareSizingCurve",
    "TraceCalendar",
    "TraceError",
    "TraceQualityReport",
    "TranslationError",
    "TranslationResult",
    "WorkloadGenerator",
    "WorkloadSpec",
    "breakpoint_fraction",
    "case_study_ensemble",
    "case_study_qos",
    "check_compliance",
    "estimate_weekly_growth",
    "extrapolate_demand",
    "homogeneous_servers",
    "max_cap_reduction_bound",
    "measure_theta",
    "new_max_demand",
    "partition_demand",
    "realized_cap_reduction",
    "validate_trace",
]
